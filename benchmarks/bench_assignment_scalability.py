"""E6 — "our task assignment algorithm is scalable" (§2.1/§2.2).

Runtime of each practical algorithm as the candidate pool grows.  The
paper's claim: approximations stay real-time where the exact (NP-complete)
search cannot; expect near-quadratic growth for greedy, super-exponential
for exact (which is therefore only run on the small sizes).
"""

import time

from repro.core.affinity import AffinityMatrix
from repro.core.assignment import (
    AssignmentProblem,
    ExactAssigner,
    GraspAssigner,
    GreedyAssigner,
    LocalSearchAssigner,
)
from repro.core.constraints import TeamConstraints
from repro.metrics import format_table
from repro.sim import generate_factors
from repro.core.workers import Worker
from repro.util.rng import make_rng

from fastmode import pick

SIZES = pick((50, 100, 200, 400, 800), (20, 40))
EXACT_LIMIT = 18


def _workers(n: int, seed: int = 0):
    return tuple(
        Worker(id=f"w{i:04d}", name=f"w{i}", factors=generate_factors(seed, i))
        for i in range(n)
    )


def _affinity(workers, seed: int = 0) -> AffinityMatrix:
    rng = make_rng(seed, "bench-affinity")
    matrix = AffinityMatrix()
    ids = [w.id for w in workers]
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            matrix.set(a, b, rng.random())
    return matrix


def _problem(n: int) -> AssignmentProblem:
    workers = _workers(n)
    return AssignmentProblem(
        workers=workers,
        affinity=_affinity(workers),
        constraints=TeamConstraints(min_size=2, critical_mass=4),
    )


def test_e6_assignment_scalability(benchmark, emit):
    algorithms = [
        ("greedy", GreedyAssigner()),
        ("local_search", LocalSearchAssigner(max_rounds=8)),
        ("grasp", GraspAssigner(seed=1, iterations=4)),
    ]
    rows = []
    problems = {n: _problem(n) for n in SIZES}
    for n in SIZES:
        problem = problems[n]
        cells = [n]
        for _, assigner in algorithms:
            start = time.perf_counter()
            result = assigner.assign(problem)
            cells.append(round((time.perf_counter() - start) * 1000, 1))
            assert result.feasible
        cells.append("-")
        rows.append(cells)
    exact_problem = _problem(EXACT_LIMIT)
    start = time.perf_counter()
    ExactAssigner().assign(exact_problem)
    exact_ms = round((time.perf_counter() - start) * 1000, 1)
    rows.insert(0, [EXACT_LIMIT, "-", "-", "-", exact_ms])

    benchmark(GreedyAssigner().assign, problems[SIZES[-1]])

    emit(format_table(
        ("workers", "greedy (ms)", "local (ms)", "grasp (ms)", "exact (ms)"),
        rows,
        title="E6 — team-formation runtime vs candidate-pool size",
    ))
