"""E10 — the CyLog processor's evaluation engine (§2.1).

Semi-naive vs naive bottom-up evaluation on recursive programs, plus the
cost of incremental re-evaluation when new (human-produced) facts arrive —
the operation the platform performs after every completed task.
Expected shape: semi-naive wins super-linearly with recursion depth, and
the monotone continuation is far cheaper than recomputation.
"""

import time

from repro.cylog import SemiNaiveEngine, naive_evaluate, parse_program
from repro.metrics import format_table

CHAIN_SIZES = (50, 100, 200, 400)


def _chain_program(n: int):
    facts = "\n".join(f"edge({i}, {i + 1})." for i in range(n))
    return parse_program(
        facts + "\npath(X, Y) :- edge(X, Y)."
        "\npath(X, Y) :- path(X, Z), edge(Z, Y)."
    )


def test_e10_semi_naive_vs_naive(benchmark, emit):
    rows = []
    for n in CHAIN_SIZES:
        program = _chain_program(n)
        start = time.perf_counter()
        semi_result = SemiNaiveEngine(program).run()
        semi_s = time.perf_counter() - start
        if n <= 100:  # naive is quadratic-in-iterations; cap its sizes
            start = time.perf_counter()
            naive_result = naive_evaluate(program)
            naive_s = time.perf_counter() - start
            assert naive_result.facts("path") == semi_result.facts("path")
            naive_cell = round(naive_s * 1000, 1)
            speedup = round(naive_s / semi_s, 1)
        else:
            naive_cell = "-"
            speedup = "-"
        rows.append((
            n,
            len(semi_result.facts("path")),
            round(semi_s * 1000, 1),
            naive_cell,
            speedup,
        ))

    # Incremental continuation vs full recompute at the largest size.
    program = _chain_program(CHAIN_SIZES[-1])
    engine = SemiNaiveEngine(program)
    engine.run()
    start = time.perf_counter()
    engine.add_facts("edge", [(CHAIN_SIZES[-1] + 1, CHAIN_SIZES[-1] + 2)])
    engine.run()
    incremental_s = time.perf_counter() - start
    start = time.perf_counter()
    SemiNaiveEngine(program).run()
    recompute_s = time.perf_counter() - start

    benchmark(lambda: SemiNaiveEngine(_chain_program(100)).run())

    emit(format_table(
        ("chain length", "path facts", "semi-naive (ms)", "naive (ms)",
         "speedup"),
        rows,
        title="E10 — CyLog engine: semi-naive vs naive on recursive closure",
    ) + "\n" + format_table(
        ("operation", "time (ms)"),
        [
            ("incremental re-eval after 1 new fact",
             round(incremental_s * 1000, 2)),
            ("full recompute", round(recompute_s * 1000, 2)),
        ],
        title="E10b — incremental fact arrival (the per-task-completion path)",
    ))
    assert incremental_s < recompute_s
