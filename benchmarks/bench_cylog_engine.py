"""E10 — the CyLog processor's evaluation engine (§2.1).

Semi-naive vs naive bottom-up evaluation on recursive programs, plus the
cost of incremental re-evaluation when new (human-produced) facts arrive —
the operation the platform performs after every completed task.
Expected shape: semi-naive wins super-linearly with recursion depth, and
the monotone continuation is far cheaper than recomputation.
"""

import time

from repro.cylog import SemiNaiveEngine, naive_evaluate, parse_program
from repro.metrics import Collector, format_stats_table, format_table

from fastmode import pick

CHAIN_SIZES = pick((50, 100, 200, 400), (20, 40))

# E10c — cost-based planner vs the legacy (seed) planner at scale.
SCALE_CHAINS = pick(100, 10)
SCALE_DEPTH = pick(100, 10)
SCALE_WORKERS = pick(10_000, 500)
SCALE_REGIONS = pick(200, 20)
SCALE_BURST = pick(500, 50)

SCALE_RULES = """
    reach(S, Y) :- link(X, Y), reach(S, X).
    reach(S, Y) :- source(S), link(S, Y).
    mentor_pair(A, B) :- worker(A, R), senior(B, R).
    region_size(R, count<W>) :- worker(W, R).
"""


def _scale_engine(planner: str) -> SemiNaiveEngine:
    """10k+ base facts: recursive reachability over many chains, a
    small-x-large join and an aggregate — the planner-sensitive shapes."""
    engine = SemiNaiveEngine(parse_program(SCALE_RULES), planner=planner)
    engine.add_facts("link", [
        (c * 1000 + i, c * 1000 + i + 1)
        for c in range(SCALE_CHAINS)
        for i in range(SCALE_DEPTH)
    ])
    engine.add_facts("source", [(c * 1000,) for c in range(SCALE_CHAINS)])
    engine.add_facts("worker", [
        (f"w{i}", i % SCALE_REGIONS) for i in range(SCALE_WORKERS)
    ])
    engine.add_facts("senior", [(f"s{i}", i) for i in range(20)])
    return engine


def test_e10c_cost_planner_vs_legacy_at_scale(emit, emit_bench_json):
    engines, times, results = {}, {}, {}
    for planner in ("cost", "legacy"):
        engine = _scale_engine(planner)
        start = time.perf_counter()
        result = engine.run()
        times[planner] = time.perf_counter() - start
        engines[planner], results[planner] = engine, result
    for predicate in ("reach", "mentor_pair", "region_size"):
        assert results["cost"].facts(predicate) == results["legacy"].facts(predicate)

    # Burst arrival: extend every chain by one link, folded in as ONE
    # incremental continuation (the batched per-task-completion path).
    # Aggregates are non-monotone, so the burst runs on the reach-only
    # fragment where the continuation applies.
    monotone = SemiNaiveEngine(parse_program(
        "reach(S, Y) :- link(X, Y), reach(S, X)."
        "reach(S, Y) :- source(S), link(S, Y)."
    ))
    monotone.add_facts("link", [
        (c * 1000 + i, c * 1000 + i + 1)
        for c in range(SCALE_CHAINS)
        for i in range(SCALE_DEPTH)
    ])
    monotone.add_facts("source", [(c * 1000,) for c in range(SCALE_CHAINS)])
    monotone.run()
    burst = [
        (c * 1000 + SCALE_DEPTH, c * 1000 + SCALE_DEPTH + 1)
        for c in range(min(SCALE_BURST, SCALE_CHAINS))
    ]
    start = time.perf_counter()
    monotone.add_facts("link", burst)
    monotone.run()
    burst_s = time.perf_counter() - start
    assert monotone.runs == 1  # one continuation, not a recomputation
    assert monotone.stats.incremental_runs == 1

    speedup = times["legacy"] / times["cost"]
    stats_rows = []
    for planner in ("cost", "legacy"):
        stats = engines[planner].stats.as_dict()
        stats_rows.append((
            planner,
            round(times[planner] * 1000, 1),
            stats["rounds"],
            stats["rules_fired"],
            stats["tuples_joined"],
            stats["index_hits"],
            stats["full_scans"],
        ))
    collector = Collector()
    engines["cost"].stats.to_collector(collector)
    emit_bench_json(
        "E10c",
        {
            "base_facts": SCALE_CHAINS * SCALE_DEPTH + SCALE_WORKERS + 20,
            "configs": [
                {
                    "planner": planner,
                    "run_ms": round(times[planner] * 1000, 2),
                    "ops_per_s": round(
                        (SCALE_CHAINS * SCALE_DEPTH + SCALE_WORKERS + 20)
                        / times[planner],
                        1,
                    ),
                }
                for planner in ("cost", "legacy")
            ],
            "speedup_cost_vs_legacy": round(speedup, 2),
            "burst_continuation_ms": round(burst_s * 1000, 3),
        },
    )
    emit(format_table(
        ("planner", "run (ms)", "rounds", "rules fired", "tuples joined",
         "index hits", "full scans"),
        stats_rows,
        title=(
            "E10c — cost-based join planning at scale "
            f"({SCALE_CHAINS * SCALE_DEPTH + SCALE_WORKERS + 20} base facts): "
            f"{speedup:.1f}x speedup, burst continuation "
            f"{round(burst_s * 1000, 2)} ms "
            f"(collector: {len(collector.counters)} engine counters)"
        ),
    ))
    if not pick(False, True):  # full-size runs must show the headline win
        assert speedup >= 3.0, f"expected >= 3x speedup, got {speedup:.2f}x"


# E10d — cross-run incremental evaluation: repeated small add/retract
# deltas against a retained 10k+ fact materialisation vs run(full=True).
DELTA_ROUNDS = pick(12, 3)
DELTA_SIZE = pick(8, 2)

DELTA_RULES = """
    reach(S, Y) :- link(X, Y), reach(S, X).
    reach(S, Y) :- source(S), link(S, Y).
    frontier(S, Y) :- reach(S, Y), not banned(Y).
    exposure(S, count<Y>) :- frontier(S, Y).
"""


def test_e10d_cross_run_incremental_deltas(emit, emit_bench_json):
    """The per-platform-round operation after this PR: facts arrive *and*
    get revoked between runs, and the engine propagates only the deltas —
    support counting plus DRed retraction — instead of re-deriving every
    stratum from base facts."""
    engine = SemiNaiveEngine(parse_program(DELTA_RULES))
    engine.add_facts("link", [
        (c * 1000 + i, c * 1000 + i + 1)
        for c in range(SCALE_CHAINS)
        for i in range(SCALE_DEPTH)
    ])
    engine.add_facts("source", [(c * 1000,) for c in range(SCALE_CHAINS)])
    engine.add_facts("banned", [(c * 1000 + 3,) for c in range(0, SCALE_CHAINS, 7)])
    engine.run()

    incr_times = []
    tail = SCALE_DEPTH
    added_last: list[tuple[int, int]] = []
    for round_index in range(DELTA_ROUNDS):
        # Small churn with real retraction work: extend a few chains,
        # retract half of the previous round's extensions, sever (or
        # restore) one mid-chain link — DRed over-deletes and re-derives
        # the chain suffix — and flip one banned node under the negation.
        extend = [
            (c * 1000 + tail + round_index, c * 1000 + tail + round_index + 1)
            for c in range(DELTA_SIZE)
        ]
        retract = added_last[: DELTA_SIZE // 2]
        chain = round_index % SCALE_CHAINS
        mid_link = (chain * 1000 + tail // 2, chain * 1000 + tail // 2 + 1)
        banned_flip = (chain * 1000 + 3,)
        start = time.perf_counter()
        engine.add_facts("link", extend)
        if retract:
            engine.retract_facts("link", retract)
        if round_index % 2:
            engine.add_facts("link", [mid_link])
            engine.add_facts("banned", [banned_flip])
        else:
            engine.retract_facts("link", [mid_link])
            engine.retract_facts("banned", [banned_flip])
        result = engine.run()
        incr_times.append(time.perf_counter() - start)
        assert result.has_changes()
        added_last = extend
    assert engine.runs == 1  # every delta round stayed incremental
    assert engine.stats.incremental_runs == DELTA_ROUNDS

    incremental_s = sum(incr_times) / len(incr_times)
    start = time.perf_counter()
    full_result = engine.run(full=True)
    full_s = time.perf_counter() - start
    # The retained materialisation must match the from-scratch recompute.
    fresh = SemiNaiveEngine(parse_program(DELTA_RULES))
    for predicate, rows in engine._base_facts.items():
        fresh.add_facts(predicate, rows)
    assert fresh.run().relations == full_result.relations

    speedup = full_s / incremental_s if incremental_s else float("inf")
    ops_per_round = 2 * DELTA_SIZE + 1
    emit_bench_json(
        "E10d",
        {
            "base_facts": SCALE_CHAINS * SCALE_DEPTH + SCALE_CHAINS,
            "delta_rounds": DELTA_ROUNDS,
            "adds_retracts_per_round": ops_per_round,
            "mean_incremental_run_ms": round(incremental_s * 1000, 3),
            "full_recompute_ms": round(full_s * 1000, 2),
            "ops_per_s": round(ops_per_round / incremental_s, 1)
            if incremental_s
            else None,
            "speedup_vs_full": round(speedup, 1),
        },
    )
    emit(format_table(
        ("measure", "value"),
        [
            ("base facts", SCALE_CHAINS * SCALE_DEPTH + SCALE_CHAINS),
            ("delta rounds", DELTA_ROUNDS),
            ("adds+retracts per round", 2 * DELTA_SIZE + 1),
            ("mean incremental run (ms)", round(incremental_s * 1000, 2)),
            ("full recompute (ms)", round(full_s * 1000, 2)),
            ("per-run speedup", round(speedup, 1)),
        ],
        title="E10d — cross-run incremental deltas vs full recompute",
    ) + "\n" + format_stats_table(
        {"cylog_engine": engine.stats.as_dict()},
        title="E10d — unified engine counters (incl. delta/retraction)",
        skip_zero=True,
    ))
    if not pick(False, True):  # full-size runs must show the headline win
        assert speedup >= 5.0, f"expected >= 5x speedup, got {speedup:.1f}x"


def _chain_program(n: int):
    facts = "\n".join(f"edge({i}, {i + 1})." for i in range(n))
    return parse_program(
        facts + "\npath(X, Y) :- edge(X, Y)."
        "\npath(X, Y) :- path(X, Z), edge(Z, Y)."
    )


def test_e10_semi_naive_vs_naive(benchmark, emit):
    rows = []
    for n in CHAIN_SIZES:
        program = _chain_program(n)
        start = time.perf_counter()
        semi_result = SemiNaiveEngine(program).run()
        semi_s = time.perf_counter() - start
        if n <= 100:  # naive is quadratic-in-iterations; cap its sizes
            start = time.perf_counter()
            naive_result = naive_evaluate(program)
            naive_s = time.perf_counter() - start
            assert naive_result.facts("path") == semi_result.facts("path")
            naive_cell = round(naive_s * 1000, 1)
            speedup = round(naive_s / semi_s, 1)
        else:
            naive_cell = "-"
            speedup = "-"
        rows.append((
            n,
            len(semi_result.facts("path")),
            round(semi_s * 1000, 1),
            naive_cell,
            speedup,
        ))

    # Incremental continuation vs full recompute at the largest size.
    program = _chain_program(CHAIN_SIZES[-1])
    engine = SemiNaiveEngine(program)
    engine.run()
    start = time.perf_counter()
    engine.add_facts("edge", [(CHAIN_SIZES[-1] + 1, CHAIN_SIZES[-1] + 2)])
    engine.run()
    incremental_s = time.perf_counter() - start
    start = time.perf_counter()
    SemiNaiveEngine(program).run()
    recompute_s = time.perf_counter() - start

    benchmark(lambda: SemiNaiveEngine(_chain_program(100)).run())

    emit(format_table(
        ("chain length", "path facts", "semi-naive (ms)", "naive (ms)",
         "speedup"),
        rows,
        title="E10 — CyLog engine: semi-naive vs naive on recursive closure",
    ) + "\n" + format_table(
        ("operation", "time (ms)"),
        [
            ("incremental re-eval after 1 new fact",
             round(incremental_s * 1000, 2)),
            ("full recompute", round(recompute_s * 1000, 2)),
        ],
        title="E10b — incremental fact arrival (the per-task-completion path)",
    ))
    assert incremental_s < recompute_s
