"""E10f — exchange-operator join repartitioning + process executors (PR 5).

Skew-keyed multi-atom joins whose probe key misses the shard key prefix,
at 20k+ base facts.  Two headline comparisons, one workload:

* **Chained vs repartitioned probes** (churn phase).  ``right`` is probed
  on its *second* position; at 8 shards a chained lookup pays 8 bucket
  probes plus a chained-view allocation per binding tuple, while the
  exchange repartition routes to exactly one.  Each churn row joins a
  wide ``fan`` bucket whose targets miss ``right`` — ~2000 cold probes
  per row — so per-probe overhead *is* the round, and the repartitioned
  configuration must beat the chained one >1.5x at a single worker.

* **Process vs thread executors on CPU-bound rounds** (bulk phase).
  Large delta batches drive the per-(rule, target-shard) task fan-out
  through real skew-keyed probe/bind work (hot keys fan out ~10x wider
  than cold ones), with band filters keeping the derived sets — and
  therefore the serial merge and the replica sync traffic — small.
  Worker threads serialise on the GIL; worker processes hold synced
  replica stores and genuinely parallelise, paying only delta-sized IPC.
  ``min_parallel_rows`` keeps the small churn rounds inline on the
  pooled configurations, exactly as in production steady state.
  The process-beats-thread assertion needs parallel hardware, so it is
  gated on the cores actually available to this process; the recorded
  trajectory carries ``effective_cores`` so a single-core container's
  numbers are read for what they are.

Every configuration must land on the byte-identical store (the
repartition-diff oracle gates the same property in CI; the bench
re-checks the fingerprints).
"""

import os
import time

from repro.cylog import SemiNaiveEngine, ShardConfig, parse_program
from repro.metrics import format_table

from fastmode import pick

N_LEFT = pick(12000, 300)
N_RIGHT = pick(14000, 300)
NUM_KEYS = pick(1500, 40)
HOT_KEYS = pick(37, 5)
#: Cold keys carrying the churn fan: each holds FAN_WIDTH targets that
#: all miss `right`, so one churn row costs ~FAN_WIDTH non-prefix probes.
FAN_KEYS = pick(4, 2)
FAN_WIDTH = pick(2000, 25)
CHURN_ROUNDS = pick(20, 3)
CHURN_BATCH = pick(8, 4)
BULK_ROUNDS = pick(5, 2)
BULK_BATCH = pick(4000, 40)
#: Pooled configs dispatch only the bulk-sized rounds; churn stays inline.
MIN_PARALLEL = pick(2500, 20)
EFFECTIVE_CORES = len(os.sched_getaffinity(0))

RULES = """
    match(L, R) :- left(L, K), right(R, K), R > L, R < L + 50.
    pair(L, M) :- left(L, K), bridge(K, J), right(M, J), M > L, M < L + 20.
    hop2(L, M) :- left(L, K), bridge(K, J), bridge(J, J2), right(M, J2),
                  M > L, M < L + 10.
    fanout(L, M) :- left(L, K), fan(K, F), right(M, F), M > L, M < L + 10.
"""

#: (label, config) — every configuration runs the same phases.
CONFIGS = (
    ("single-store", ShardConfig()),
    ("sharded x8 chained", ShardConfig(shards=8, exchange=False)),
    ("sharded x8 exchange", ShardConfig(shards=8)),
    (
        "exchange + thread x8",
        ShardConfig(
            shards=8,
            executor="thread",
            max_workers=8,
            min_parallel_rows=MIN_PARALLEL,
        ),
    ),
    (
        "exchange + process x8",
        ShardConfig(
            shards=8,
            executor="process",
            max_workers=8,
            min_parallel_rows=MIN_PARALLEL,
        ),
    ),
)


def _key(i: int) -> int:
    """Skewed join-key distribution: every 5th row lands on a hot key."""
    if i % 5 == 0:
        return i % HOT_KEYS
    return i % NUM_KEYS


def _build_engine(config: ShardConfig) -> SemiNaiveEngine:
    engine = SemiNaiveEngine(parse_program(RULES), shard_config=config)
    engine.add_facts("left", [(i, _key(i)) for i in range(N_LEFT)])
    engine.add_facts("right", [(i, _key(i * 3 + 1)) for i in range(N_RIGHT)])
    # bridge covers the live key space *and* the cold one; a cold key hops
    # to another cold key, so churn probes miss `right` on both hops.
    engine.add_facts(
        "bridge",
        [(k, (k * 13 + 7) % NUM_KEYS) for k in range(NUM_KEYS)]
        + [
            (k, NUM_KEYS + (k * 13 + 7) % NUM_KEYS)
            for k in range(NUM_KEYS, 2 * NUM_KEYS)
        ],
    )
    # The churn fan: FAN_KEYS cold keys x FAN_WIDTH cold targets.  Live
    # keys miss `fan` entirely, so the initial and bulk phases never pay
    # for it.
    engine.add_facts(
        "fan",
        [
            (NUM_KEYS + k, 10 * NUM_KEYS + k * FAN_WIDTH + f)
            for k in range(FAN_KEYS)
            for f in range(FAN_WIDTH)
        ],
    )
    return engine


def _churn_rows(round_index: int) -> list[tuple[int, int]]:
    """Left rows keyed on the fan's cold keys: each probes one wide fan
    bucket and then `right` once per fan target — all misses, so the
    per-probe overhead (chained vs routed) *is* the round."""
    base = 1_000_000 + round_index * CHURN_BATCH
    return [
        (base + j, NUM_KEYS + (base + j) % FAN_KEYS) for j in range(CHURN_BATCH)
    ]


def _bulk_rows(round_index: int) -> list[tuple[int, int]]:
    """Skew-keyed left rows: real probe/bind fan-out (hot keys ~10x the
    cold ones); the ids sit above every right id, so the band filters keep
    the derived sets empty and the rounds purely CPU-bound."""
    base = 2_000_000 + round_index * BULK_BATCH
    return [(base + j, _key(base + j)) for j in range(BULK_BATCH)]


def _run_config(config: ShardConfig) -> dict:
    engine = _build_engine(config)
    try:
        start = time.perf_counter()
        engine.run()
        initial_s = time.perf_counter() - start

        churn_ops = 0
        start = time.perf_counter()
        for round_index in range(CHURN_ROUNDS):
            rows = _churn_rows(round_index)
            engine.add_facts("left", rows)
            engine.run()
            engine.retract_facts("left", rows)
            engine.run()
            churn_ops += 2 * len(rows)
        churn_s = time.perf_counter() - start

        bulk_ops = 0
        start = time.perf_counter()
        for round_index in range(BULK_ROUNDS):
            rows = _bulk_rows(round_index)
            engine.add_facts("left", rows)
            engine.run()
            bulk_ops += len(rows)
        bulk_s = time.perf_counter() - start

        assert engine.runs == 1  # every phase stayed incremental
        return {
            "initial_run_ms": round(initial_s * 1000, 2),
            "churn_ops": churn_ops,
            "churn_ops_per_s": round(churn_ops / churn_s, 1) if churn_s else 0.0,
            "bulk_ops": bulk_ops,
            "bulk_round_ms": round(bulk_s * 1000 / BULK_ROUNDS, 2),
            "bulk_ops_per_s": round(bulk_ops / bulk_s, 1) if bulk_s else 0.0,
            "derived_match": len(engine.facts("match")),
            "derived_pair": len(engine.facts("pair")),
            "derived_hop2": len(engine.facts("hop2")),
            "derived_fanout": len(engine.facts("fanout")),
            "exchange_hits": engine.stats.exchange_hits,
            "chained_lookups": engine.stats.chained_lookups,
            "fingerprint": engine.store.fingerprint(),
        }
    finally:
        engine.close()


def test_e10f_exchange_and_process_parallelism(emit, emit_bench_json):
    base_facts = N_LEFT + N_RIGHT + 2 * NUM_KEYS + FAN_KEYS * FAN_WIDTH
    records = []
    for label, config in CONFIGS:
        result = _run_config(config)
        result.update(
            {
                "label": label,
                "shards": config.shards,
                "executor": config.executor,
                "workers": config.max_workers or 1,
                "exchange": config.exchange,
            }
        )
        records.append(result)

    # Byte-identity across every configuration, exchange or not.
    assert len({r.pop("fingerprint") for r in records}) == 1

    by_label = {r["label"]: r for r in records}
    exchange_serial = by_label["sharded x8 exchange"]
    chained_serial = by_label["sharded x8 chained"]
    # The exchange configs actually exercised repartitioned probes, the
    # chained baseline (plan parity with the single store) none.
    assert exchange_serial["exchange_hits"] > 0
    assert chained_serial["exchange_hits"] == 0

    speedup_exchange = (
        exchange_serial["churn_ops_per_s"] / chained_serial["churn_ops_per_s"]
    )
    thread = by_label["exchange + thread x8"]
    process = by_label["exchange + process x8"]
    speedup_process = process["bulk_ops_per_s"] / thread["bulk_ops_per_s"]

    emit_bench_json(
        "E10f",
        {
            "workload": {
                "base_facts": base_facts,
                "keys": NUM_KEYS,
                "hot_keys": HOT_KEYS,
                "fan_keys": FAN_KEYS,
                "fan_width": FAN_WIDTH,
                "churn_rounds": CHURN_ROUNDS,
                "churn_batch": CHURN_BATCH,
                "bulk_rounds": BULK_ROUNDS,
                "bulk_batch": BULK_BATCH,
            },
            "effective_cores": EFFECTIVE_CORES,
            "speedup_exchange_vs_chained": round(speedup_exchange, 2),
            "speedup_process_vs_thread": round(speedup_process, 2),
            "configs": records,
        },
    )
    emit(format_table(
        ("config", "workers", "initial (ms)", "churn ops/s", "bulk round (ms)",
         "bulk ops/s"),
        [
            (r["label"], r["workers"], r["initial_run_ms"], r["churn_ops_per_s"],
             r["bulk_round_ms"], r["bulk_ops_per_s"])
            for r in records
        ],
        title=(
            f"E10f — exchange repartitioning + process executors "
            f"({base_facts} base facts, churn {CHURN_ROUNDS}x{2 * CHURN_BATCH} "
            f"ops, bulk {BULK_ROUNDS}x{BULK_BATCH} rows)"
        ),
    ))
    if not pick(False, True):  # full-size runs must show the headline shape
        # Repartitioned probes beat chained ones >1.5x at a single worker.
        assert speedup_exchange > 1.5, records
        # The process pool beats the GIL-bound thread pool on CPU rounds —
        # demonstrable only where parallel hardware exists; a single-core
        # container records the (honest) overhead instead.
        if EFFECTIVE_CORES >= 2:
            assert speedup_process > 1.0, records
