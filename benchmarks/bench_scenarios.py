"""E11–E13 — the three §2.5 demonstration scenarios, end to end.

Each bench runs the full platform loop (CyLog demand → eligibility →
interest → team formation → collaboration scheme → result coordination)
on a simulated crowd and prints the scenario's coverage row.
"""

from repro.apps import (
    run_journalism_demo,
    run_surveillance_demo,
    run_translation_demo,
)
from repro.metrics import format_table


def test_e11_scenario_translation(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_translation_demo(n_workers=30, n_clips=4, seed=3,
                                     max_steps=300),
        rounds=2, iterations=1,
    )
    summary = result.summary()
    rows = sorted(summary.items())
    emit(format_table(
        ("measure", "value"), rows,
        title="E11 — scenario 1: video subtitle translation (sequential)",
    ))
    assert summary["quiescent"]
    assert summary["translated"] == summary["clips"] == 4


def test_e12_scenario_journalism(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_journalism_demo(n_workers=30, seed=3, max_steps=300),
        rounds=2, iterations=1,
    )
    summary = {**result.summary(), **result.extras}
    emit(format_table(
        ("measure", "value"), sorted(summary.items()),
        title="E12 — scenario 2: citizen journalism (simultaneous)",
    ))
    assert summary["quiescent"]
    assert summary["published"] == summary["topics"]
    assert summary["contributions"] > summary["topics"]  # real parallelism


def test_e13_scenario_surveillance(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_surveillance_demo(n_workers=50, seed=3, max_steps=400),
        rounds=2, iterations=1,
    )
    summary = {**result.summary(), **result.extras}
    emit(format_table(
        ("measure", "value"), sorted(summary.items()),
        title="E13 — scenario 3: surveillance grid (hybrid)",
    ))
    assert summary["quiescent"]
    assert summary["dossiers"] == summary["cells"]
    assert summary["region_cohesion"] >= 0.5  # geo affinity localises teams
