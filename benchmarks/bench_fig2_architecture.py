"""E2 / Figure 2 — architecture workflow steps (1)–(5).

Times each numbered interaction of the collaborative-assignment workflow:
(1) project registration generates the admin page data, (2) desired
factors reach the controller, (3) workers declare interest on user pages,
(4) the worker manager supplies factors + affinity, (5) the controller
proposes a team.  Also reports CyLog → task-pool generation throughput.
"""

import time

from repro.apps.common import build_crowd
from repro.core import TeamConstraints, SkillRequirement
from repro.core.assignment import AssignmentProblem
from repro.core.projects import SchemeKind
from repro.forms import render_admin_page
from repro.metrics import format_table

SOURCE = """
    open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
    %SEGS%
    eligible(W) :- worker_language(W, "en", P), P >= 0.1.
    eligible(W) :- worker_native(W, "en").
    translated(S, T) :- segment(S), translate(S, T).
"""


def _source(n_segments: int) -> str:
    segments = "\n".join(f'segment("s{i:04d}").' for i in range(n_segments))
    return SOURCE.replace("%SEGS%", segments)


def _workflow(platform):
    timings = {}
    start = time.perf_counter()
    project = platform.register_project(
        "subs", "req", _source(50),
        scheme=SchemeKind.SEQUENTIAL,
        constraints=TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("translation", 0.3),),
        ),
    )
    timings["(1) register project + admin page"] = time.perf_counter() - start

    start = time.perf_counter()
    render_admin_page(platform, project.id)
    platform.step()  # factors reach the controller; tasks materialise
    timings["(2) factors -> assignment controller"] = time.perf_counter() - start

    tasks = platform.pool.pending_root_tasks(project.id)
    start = time.perf_counter()
    for task in tasks[:10]:
        for worker_id in platform.ledger.eligible_workers(task.id)[:6]:
            platform.declare_interest(worker_id, task.id)
    timings["(3) user pages: interest declared"] = time.perf_counter() - start

    start = time.perf_counter()
    interested = platform.ledger.interested_workers(tasks[0].id)
    candidates = tuple(platform.workers.get(w) for w in interested)
    problem = AssignmentProblem(
        workers=candidates,
        affinity=platform.affinity,
        constraints=project.constraints,
    )
    timings["(4) worker manager supplies factors"] = time.perf_counter() - start

    start = time.perf_counter()
    platform.step()  # (5) controller proposes teams
    timings["(5) controller suggests teams"] = time.perf_counter() - start
    return project, tasks, timings, problem


def test_fig2_workflow_steps(benchmark, emit):
    def run():
        platform = build_crowd(60, seed=3)
        return _workflow(platform)

    project, tasks, timings, _ = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [(step, f"{seconds * 1000:.2f}") for step, seconds in timings.items()]
    rows.append(("CyLog tasks generated", str(len(tasks))))
    emit(format_table(
        ("workflow step", "time (ms)"), rows,
        title="E2 / Figure 2 — collaborative task-assignment workflow",
    ))
    assert len(tasks) == 50
