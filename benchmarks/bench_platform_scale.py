"""E9 — platform scale: "more than 600,000 tasks have been performed" (§2).

The live platform's historical volume is simulated by pushing a large
micro-task stream through the task pool and relationship ledger; the
bench reports sustained throughput and extrapolates to the paper's 600k.

E9b adds the *steady-state serving* scenario: a large registered worker
pool, a project whose open tasks stay pending (recruiting), and a small
amount of per-round churn.  The dirty-tracked incremental round only
re-derives eligibility for the changed (task, worker) pairs, while the
full recompute walks the whole tasks × workers product every round; the
bench reports the per-round speedup and the storage query-cache hit rate
for repeated worker-page reads.
"""

import time
from dataclasses import replace

from repro.core import Crowd4U, HumanFactors, TeamConstraints
from repro.core.relationships import RelationshipLedger
from repro.core.tasks import TaskKind, TaskPool, TaskStatus
from repro.forms.worker_page import render_worker_page
from repro.metrics import format_stats_table, format_table
from repro.storage import Database

from fastmode import FAST, pick

N_TASKS = pick(60_000, 2_000)
N_WORKERS = 200

# E9b sizes: ≥5k workers in full mode per the acceptance target.
N_POOL = pick(5_000, 250)
N_SEGMENTS = 24
N_ROUNDS = pick(10, 3)
PAGE_READS_PER_ROUND = 5


def _run_stream(n_tasks: int):
    db = Database()
    pool = TaskPool(db)
    ledger = RelationshipLedger(db)
    worker_ids = [f"w{i:04d}" for i in range(N_WORKERS)]
    start = time.perf_counter()
    for index in range(n_tasks):
        task = pool.create(
            "history", TaskKind.CUSTOM, f"micro-task #{index}",
            assignee=worker_ids[index % N_WORKERS],
        )
        pool.complete(task.id, {"v": index})
    create_complete_s = time.perf_counter() - start
    start = time.perf_counter()
    for index in range(0, n_tasks, 10):
        worker = worker_ids[index % N_WORKERS]
        task_id = f"task{index:06d}"
        ledger.mark_eligible(worker, task_id)
        ledger.declare_interest(worker, task_id)
        ledger.undertake(worker, task_id)
        ledger.complete(worker, task_id)
    ledger_s = time.perf_counter() - start
    return pool, ledger, create_complete_s, ledger_s


def test_e9_platform_task_volume(benchmark, emit):
    pool, ledger, create_s, ledger_s = benchmark.pedantic(
        _run_stream, args=(N_TASKS,), rounds=1, iterations=1
    )
    throughput = N_TASKS / create_s
    rows = [
        ("micro-tasks created+completed", N_TASKS),
        ("throughput (tasks/s)", int(throughput)),
        ("time to 600k at this rate (s)", round(600_000 / throughput, 1)),
        ("relationship transitions", len(ledger) * 4),
        ("ledger transition rate (1/s)", int(len(ledger) * 4 / ledger_s)),
        ("completed tasks in pool", len(pool.by_status(TaskStatus.COMPLETED))),
    ]
    emit(format_table(
        ("measure", "value"), rows,
        title="E9 — task-pool and ledger throughput (600k-task platform claim)",
    ))
    assert len(pool) == N_TASKS


def _steady_state_platform(incremental: bool) -> Crowd4U:
    """A recruiting-phase deployment: N_POOL workers, N_SEGMENTS pending
    CyLog tasks whose teams never fill (nobody declares interest)."""
    platform = Crowd4U(seed=3, incremental=incremental)
    # Register straight through the worker manager: the platform-level
    # affinity extension is O(existing workers) per registration and is not
    # what this scenario measures.  Facts reach the processor in one batch
    # when the project registers below.
    for index in range(N_POOL):
        platform.workers.register(
            f"w{index}",
            HumanFactors(
                languages={"fr": 0.9 if index % 2 == 0 else 0.1},
                region="tsukuba",
                skills={"translation": 0.6},
            ),
        )
    segments = " ".join(f'segment("s{i:03d}").' for i in range(N_SEGMENTS))
    source = (
        'open translate(seg: text, out: text) key (seg) asking "Translate {seg}".\n'
        f"{segments}\n"
        'eligible(W) :- worker_language(W, "fr", P), P >= 0.5.\n'
        "translated(S, T) :- segment(S), translate(S, T).\n"
    )
    platform.register_project(
        "subs", "req", source, constraints=TeamConstraints(min_size=3),
    )
    platform.step()  # generate the tasks + derive initial eligibility
    return platform


def _run_steady_rounds(platform: Crowd4U) -> float:
    """Advance N_ROUNDS with one worker profile edit per round (churn that
    does not change the eligible set) and repeated reads of a hot set of
    worker pages; returns the elapsed wall-clock seconds."""
    worker_ids = platform.workers.ids()
    hot_pages = worker_ids[:PAGE_READS_PER_ROUND]
    for worker_id in hot_pages:  # warm the serving cache outside the timer
        render_worker_page(platform, worker_id)
    start = time.perf_counter()
    for round_index in range(N_ROUNDS):
        editor = worker_ids[(round_index * 7) % len(worker_ids)]
        factors = platform.workers.get(editor).factors
        platform.update_worker_factors(
            editor, replace(factors, region=f"round-{round_index}")
        )
        platform.step()
        for worker_id in hot_pages:
            render_worker_page(platform, worker_id)
    return time.perf_counter() - start


def test_e9b_incremental_steady_state(benchmark, emit):
    incremental = _steady_state_platform(incremental=True)
    full = _steady_state_platform(incremental=False)
    inc_s = benchmark.pedantic(
        _run_steady_rounds, args=(incremental,), rounds=1, iterations=1
    )
    full_s = _run_steady_rounds(full)
    speedup = full_s / inc_s if inc_s else float("inf")
    stats = incremental.stats
    cache = incremental.db.query_cache.stats
    pairs_total = stats.eligibility_pairs_checked + stats.eligibility_pairs_skipped
    rows = [
        ("workers", N_POOL),
        ("pending tasks", N_SEGMENTS),
        ("steady rounds", N_ROUNDS),
        ("full recompute (s)", round(full_s, 4)),
        ("incremental (s)", round(inc_s, 4)),
        ("per-round speedup", round(speedup, 1)),
        ("eligibility pairs skipped", stats.eligibility_pairs_skipped),
        ("eligibility pairs checked", stats.eligibility_pairs_checked),
        ("pairs skipped (%)",
         round(100 * stats.eligibility_pairs_skipped / pairs_total, 1)
         if pairs_total else 0.0),
        ("assignment attempts skipped", stats.assignments_skipped),
        ("query-cache hits", cache.hits),
        ("query-cache misses+stale", cache.misses + cache.invalidations),
    ]
    engine_stats = {}
    for project_id, processor in incremental._processors.items():
        engine_stats[f"cylog_engine[{project_id}]"] = processor.stats.as_dict()
    emit(format_table(
        ("measure", "value"), rows,
        title="E9b — steady-state platform round: incremental vs full recompute",
    ) + "\n" + format_stats_table(
        {
            "platform": stats.as_dict(),
            "query_cache": cache.as_dict(),
            **engine_stats,
        },
        title="E9b — unified serving-path counters (platform / cache / engine)",
        skip_zero=True,
    ))
    # Both modes must agree on the persistent relationship state.
    assert sorted(
        (r["worker_id"], r["task_id"], r["status"])
        for r in incremental.db.table("relationship").rows()
    ) == sorted(
        (r["worker_id"], r["task_id"], r["status"])
        for r in full.db.table("relationship").rows()
    )
    assert stats.eligibility_pairs_skipped > 0
    assert cache.hits > 0
    if not FAST:
        assert speedup >= 5.0, f"expected ≥5x per-round speedup, got {speedup:.1f}x"
