"""E9 — platform scale: "more than 600,000 tasks have been performed" (§2).

The live platform's historical volume is simulated by pushing a large
micro-task stream through the task pool and relationship ledger; the
bench reports sustained throughput and extrapolates to the paper's 600k.
"""

import time

from repro.core.relationships import RelationshipLedger
from repro.core.tasks import TaskKind, TaskPool, TaskStatus
from repro.metrics import format_table
from repro.storage import Database

from fastmode import pick

N_TASKS = pick(60_000, 2_000)
N_WORKERS = 200


def _run_stream(n_tasks: int):
    db = Database()
    pool = TaskPool(db)
    ledger = RelationshipLedger(db)
    worker_ids = [f"w{i:04d}" for i in range(N_WORKERS)]
    start = time.perf_counter()
    for index in range(n_tasks):
        task = pool.create(
            "history", TaskKind.CUSTOM, f"micro-task #{index}",
            assignee=worker_ids[index % N_WORKERS],
        )
        pool.complete(task.id, {"v": index})
    create_complete_s = time.perf_counter() - start
    start = time.perf_counter()
    for index in range(0, n_tasks, 10):
        worker = worker_ids[index % N_WORKERS]
        task_id = f"task{index:06d}"
        ledger.mark_eligible(worker, task_id)
        ledger.declare_interest(worker, task_id)
        ledger.undertake(worker, task_id)
        ledger.complete(worker, task_id)
    ledger_s = time.perf_counter() - start
    return pool, ledger, create_complete_s, ledger_s


def test_e9_platform_task_volume(benchmark, emit):
    pool, ledger, create_s, ledger_s = benchmark.pedantic(
        _run_stream, args=(N_TASKS,), rounds=1, iterations=1
    )
    throughput = N_TASKS / create_s
    rows = [
        ("micro-tasks created+completed", N_TASKS),
        ("throughput (tasks/s)", int(throughput)),
        ("time to 600k at this rate (s)", round(600_000 / throughput, 1)),
        ("relationship transitions", len(ledger) * 4),
        ("ledger transition rate (1/s)", int(len(ledger) * 4 / ledger_s)),
        ("completed tasks in pool", len(pool.by_status(TaskStatus.COMPLETED))),
    ]
    emit(format_table(
        ("measure", "value"), rows,
        title="E9 — task-pool and ledger throughput (600k-task platform claim)",
    ))
    assert len(pool) == N_TASKS
