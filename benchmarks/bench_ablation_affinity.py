"""E14 — ablations of the design choices behind team formation.

Two sweeps that justify the paper's modelling decisions:

* **upper critical mass** — outcome quality as the team grows past the
  task's critical mass (expected: a peak at/near the UCM, degradation
  beyond — the reason UCM is a constraint at all, §1);
* **affinity components** — drop each ingredient of the factor-based
  affinity (language / region / skill complementarity) and measure the
  intra-affinity of the teams greedy then forms.
"""

import statistics

from repro.core.affinity import AffinityWeights, affinity_from_factors
from repro.core.assignment import AssignmentProblem, GreedyAssigner
from repro.core.constraints import TeamConstraints
from repro.core.workers import Worker
from repro.metrics import format_table
from repro.sim import OutcomeModel, generate_factors

POOL_SIZE = 18
CRITICAL_MASS = 4


def _workers(seed: int):
    return tuple(
        Worker(id=f"w{seed}{i:02d}", name=f"w{i}",
               factors=generate_factors(seed, i))
        for i in range(POOL_SIZE)
    )


def test_e14_critical_mass_sweep(benchmark, emit):
    outcome_model = OutcomeModel(seed=1)
    rows = []
    for team_size in range(2, 9):
        qualities = []
        for seed in range(8):
            workers = _workers(seed)
            affinity = affinity_from_factors(workers)
            team = sorted(
                workers,
                key=lambda w: -w.factors.skill_level("translation"),
            )[:team_size]
            qualities.append(outcome_model.quality(
                workers=team,
                affinity=affinity,
                skills=("translation",),
                critical_mass=CRITICAL_MASS,
                scheme="sequential",
            ))
        rows.append((
            team_size,
            "at UCM" if team_size == CRITICAL_MASS else
            ("beyond" if team_size > CRITICAL_MASS else "below"),
            round(statistics.mean(qualities), 3),
        ))
    benchmark(lambda: outcome_model.quality(
        list(_workers(0))[:4], affinity_from_factors(_workers(0)),
        ("translation",), CRITICAL_MASS,
    ))
    emit(format_table(
        ("team size", f"vs critical mass ({CRITICAL_MASS})", "mean quality"),
        rows,
        title="E14a — outcome quality across the upper critical mass",
    ))
    by_size = {row[0]: row[2] for row in rows}
    assert by_size[8] < by_size[CRITICAL_MASS]  # degradation beyond UCM


def test_e14_affinity_component_ablation(emit, benchmark):
    variants = [
        ("full (lang+region+skill)", AffinityWeights()),
        ("no language", AffinityWeights(language=0)),
        ("no region", AffinityWeights(region=0)),
        ("no skill complement", AffinityWeights(skill_complementarity=0)),
    ]
    rows = []
    full_matrices = {
        seed: affinity_from_factors(_workers(seed)) for seed in range(6)
    }
    for name, weights in variants:
        scores = []
        for seed in range(6):
            workers = _workers(seed)
            ablated = affinity_from_factors(workers, weights)
            problem = AssignmentProblem(
                workers=workers,
                affinity=ablated,
                constraints=TeamConstraints(min_size=3, critical_mass=4),
            )
            result = GreedyAssigner().assign(problem)
            # Teams are *chosen* with the ablated affinity but *scored*
            # with the full one: how much does each signal matter?
            scores.append(full_matrices[seed].intra_affinity(result.team))
        rows.append((name, round(statistics.mean(scores), 3)))
    benchmark(lambda: affinity_from_factors(_workers(0)))
    emit(format_table(
        ("affinity variant", "team true-affinity"), rows,
        title="E14b — affinity-component ablation (teams scored on full affinity)",
    ))
    full_score = rows[0][1]
    assert all(full_score >= score - 0.05 for _, score in rows[1:])
