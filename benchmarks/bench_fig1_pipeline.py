"""E1 / Figure 1 — the deployment pipeline.

Task decomposition → task assignment → task completion, end to end on a
simulated crowd.  The bench times one full pipeline execution and prints
per-stage counts matching the three boxes of Figure 1.
"""

from repro.apps.common import build_crowd
from repro.apps.translation import (
    build_translation_project,
    translation_answer_fn,
)
from repro.core.assignment import SegmentDecomposer
from repro.metrics import format_table
from repro.sim import SimulationDriver


def run_pipeline(n_workers: int = 30, n_clips: int = 3, seed: int = 2):
    platform = build_crowd(n_workers, seed)
    clips = [f"clip{i}" for i in range(n_clips)]
    project = build_translation_project(platform, clips)
    driver = SimulationDriver(
        platform, answer_fn=translation_answer_fn, seed=seed
    )
    report = driver.run(max_steps=250)
    return platform, project, report


def test_fig1_deployment_pipeline(benchmark, emit):
    platform, project, report = benchmark.pedantic(
        run_pipeline, rounds=3, iterations=1
    )
    # Decomposition is also exercised stand-alone (any decomposition
    # algorithm is pluggable — here, text segmentation).
    specs = SegmentDecomposer(segment_words=4).decompose(
        {"text": "the quick brown fox jumps over the lazy dog again and again"}
    )
    rows = [
        ("1. task decomposition", "micro-task specs from one complex text",
         len(specs)),
        ("   (CyLog demand)", "tasks dynamically generated",
         platform.events.count("task.generated")),
        ("2. task assignment", "teams proposed",
         platform.events.count("team.proposed")),
        ("   ", "teams dissolved / re-executed",
         platform.events.count("team.dissolved")),
        ("3. task completion", "collaborative tasks completed",
         report.team_results),
        ("   ", "micro-tasks performed", report.micro_completed),
        ("result coordination", "mean outcome quality",
         round(report.mean_quality, 3)),
    ]
    emit(format_table(
        ("pipeline stage", "measure", "value"), rows,
        title="E1 / Figure 1 — deployment pipeline for complex collaborative tasks",
    ))
    assert report.quiescent
    assert report.team_results >= n_expected_roots()


def n_expected_roots() -> int:
    return 3  # three clips transcribe; translations follow dynamically
