"""E12 — shard-pruned and shared-memory worker replicas (PR 7).

The process pool's full-replica protocol broadcasts every engine mutation
to every worker and rebuilds complete replica stores on each full run.
This bench measures what the shard-pruned layouts save, on a skew-free
two-relation join churned from the ``left`` side:

* **Sync bytes per round, per replica mode.**  ``joined`` deltas dominate
  the engine's change sets; no rule probes ``joined``, so the pruned
  modes never ship it at all, and the base-relation slices go only to the
  workers whose task classes probe those partitions.  The headline gate
  — ``speedup_pruned_vs_full_sync`` — is the ratio of bytes actually
  written to worker pipes for syncs (full / pruned): a pure byte count,
  independent of the hardware the bench runs on.  The acceptance target
  at 8 shards x 8 workers is >= 5x.

* **Per-worker replica residency.**  Full replicas hold every base row on
  every worker; pruned replicas hold only the subscribed partitions
  (reported as the max resident rows across workers, from the executor's
  exact ledger-derived counts).

* **Churn throughput per mode.**  Same adds/retracts, same fixpoints —
  the shard-diff oracle gates bit-identity in CI, and the bench
  re-checks the store fingerprints across all modes plus a serial
  reference.

``shared`` mode additionally publishes the baseline base-fact partitions
as sealed shared-memory row blocks: its backfills map segments instead of
copying rows through pipes, which the trajectory records as
``shared_mem_remaps`` and reduced backfill pipe traffic.
"""

import time

from repro.cylog import SemiNaiveEngine, ShardConfig, parse_program
from repro.metrics import format_table

from fastmode import pick

N_KEYS = pick(2000, 60)
RIGHT_FANOUT = pick(6, 3)
N_LEFT = pick(8000, 150)
CHURN_ROUNDS = pick(30, 4)
CHURN_BATCH = pick(400, 30)
SHARDS = 8
WORKERS = 8

RULES = """
    joined(L, R) :- left(L, K), right(K, R).
    heavy(L) :- joined(L, R), R >= 0.
"""

#: (label, replica_mode) — identical engine layout, only the replica
#: protocol differs.
MODES = ("full", "pruned", "shared")


def _config(replica_mode: str) -> ShardConfig:
    return ShardConfig(
        shards=SHARDS,
        executor="process",
        max_workers=WORKERS,
        min_parallel_rows=0,  # every round dispatches: sync traffic is the point
        replica_mode=replica_mode,
    )


def _build_engine(config: ShardConfig | None) -> SemiNaiveEngine:
    engine = SemiNaiveEngine(
        parse_program(RULES),
        shard_config=config or ShardConfig(),
    )
    engine.add_facts("left", [(i, i % N_KEYS) for i in range(N_LEFT)])
    engine.add_facts(
        "right",
        [(k, k * RIGHT_FANOUT + f) for k in range(N_KEYS) for f in range(RIGHT_FANOUT)],
    )
    return engine


def _churn_rows(round_index: int) -> list[tuple[int, int]]:
    base = 1_000_000 + round_index * CHURN_BATCH
    return [(base + j, (base + j) % N_KEYS) for j in range(CHURN_BATCH)]


def _run_mode(replica_mode: str) -> dict:
    engine = _build_engine(_config(replica_mode))
    try:
        start = time.perf_counter()
        engine.run()
        initial_s = time.perf_counter() - start

        churn_ops = 0
        start = time.perf_counter()
        for round_index in range(CHURN_ROUNDS):
            rows = _churn_rows(round_index)
            engine.add_facts("left", rows)
            engine.run()
            engine.retract_facts("left", rows)
            engine.run()
            churn_ops += 2 * len(rows)
        churn_s = time.perf_counter() - start

        assert engine.runs == 1  # every churn round stayed incremental
        telemetry = engine._executor.telemetry()
        rounds = 2 * CHURN_ROUNDS
        return {
            "mode": replica_mode,
            "initial_run_ms": round(initial_s * 1000, 2),
            "churn_ops_per_s": round(churn_ops / churn_s, 1) if churn_s else 0.0,
            # Engine-side canonical change-set volume: identical across
            # modes (what the engine mutated, not what was shipped).
            "sync_rows_canonical": engine.stats.sync_rows,
            "sync_bytes_canonical": engine.stats.sync_bytes,
            # Executor-side shipped volume: what actually crossed pipes.
            "sync_bytes_shipped": telemetry["sync_bytes_shipped"],
            "sync_rows_shipped": telemetry["sync_rows_shipped"],
            "sync_bytes_per_round": round(telemetry["sync_bytes_shipped"] / rounds, 1),
            "replica_backfills": telemetry["replica_backfills"],
            "backfill_rows": telemetry["backfill_rows"],
            "shared_mem_remaps": telemetry["shared_mem_remaps"],
            "bytes_to_workers": telemetry["bytes_to_workers"],
            "max_replica_rows": max(telemetry["replica_rows"]),
            "derived_joined": len(engine.facts("joined")),
            "fingerprint": engine.store.fingerprint(),
        }
    finally:
        engine.close()


def test_e12_replica_modes(emit, emit_bench_json):
    serial = _build_engine(None)
    try:
        serial.run()
        for round_index in range(CHURN_ROUNDS):
            rows = _churn_rows(round_index)
            serial.add_facts("left", rows)
            serial.run()
            serial.retract_facts("left", rows)
            serial.run()
        reference_fp = serial.store.fingerprint()
    finally:
        serial.close()

    records = [_run_mode(mode) for mode in MODES]
    by_mode = {r["mode"]: r for r in records}

    # Bit-identity: every replica mode lands on the serial fixpoint.
    for record in records:
        assert record.pop("fingerprint") == reference_fp, record["mode"]
    # The canonical change sets are mode-independent by construction.
    assert len({r["sync_rows_canonical"] for r in records}) == 1
    assert len({r["sync_bytes_canonical"] for r in records}) == 1

    full, pruned, shared = (by_mode[m] for m in MODES)
    speedup_pruned = (
        full["sync_bytes_shipped"] / pruned["sync_bytes_shipped"]
        if pruned["sync_bytes_shipped"]
        else float("inf")
    )
    speedup_shared = (
        full["sync_bytes_shipped"] / shared["sync_bytes_shipped"]
        if shared["sync_bytes_shipped"]
        else float("inf")
    )

    # Pruned workers hold strictly less than full replicas; shared mode
    # actually mapped baseline segments.
    assert pruned["max_replica_rows"] < full["max_replica_rows"]
    assert shared["shared_mem_remaps"] > 0
    assert full["replica_backfills"] == 0
    assert pruned["replica_backfills"] > 0

    emit_bench_json(
        "E12",
        {
            "workload": {
                "keys": N_KEYS,
                "right_fanout": RIGHT_FANOUT,
                "left_rows": N_LEFT,
                "churn_rounds": CHURN_ROUNDS,
                "churn_batch": CHURN_BATCH,
                "shards": SHARDS,
                "workers": WORKERS,
            },
            "speedup_pruned_vs_full_sync": round(speedup_pruned, 2),
            "speedup_shared_vs_full_sync": round(speedup_shared, 2),
            "modes": records,
        },
    )
    emit(format_table(
        ("mode", "churn ops/s", "sync B/round", "shipped sync B",
         "backfills", "shm remaps", "max replica rows"),
        [
            (r["mode"], r["churn_ops_per_s"], r["sync_bytes_per_round"],
             r["sync_bytes_shipped"], r["replica_backfills"],
             r["shared_mem_remaps"], r["max_replica_rows"])
            for r in records
        ],
        title=(
            f"E12 — replica modes at {SHARDS} shards x {WORKERS} workers "
            f"(churn {CHURN_ROUNDS}x{2 * CHURN_BATCH} ops)"
        ),
    ))
    # The headline gate: pruned sync traffic is a byte count, so the
    # >=5x reduction holds on any hardware, smoke mode included.
    assert speedup_pruned >= 5.0, (full, pruned)
    assert speedup_shared >= 5.0, (full, shared)
