"""CI bench-regression gate: fail the job when a smoke speedup collapses.

The bench-smoke job runs every benchmark in fast mode, producing
``BENCH_<scenario>.smoke.json`` records at the repo root.  This script
then compares the *speedup ratios* in those fresh records against the
committed smoke baselines and fails (exit 1) when any gated metric fell
by more than ``BENCH_REGRESSION_TOLERANCE`` (default 0.30, i.e. >30%).

Two kinds of committed reference exist, used for different things:

* ``BENCH_<scenario>.json`` — the full-size perf trajectory, recorded on
  developer hardware and committed per PR.  Full-size ratios are *not*
  comparable to smoke-size ones (e.g. E10d's incremental-vs-full speedup
  is ~65x full-size but ~6x at smoke sizes), so the gate only checks
  that the trajectory record still exists for every gated scenario and
  prints its headline ratios for context.
* ``benchmarks/baselines/smoke_speedups.json`` — the gate's yardstick:
  per-scenario speedup floors measured at *smoke* size (the minimum of
  several local fast-mode runs, so ordinary noise sits above it).
  Regenerate with ``python benchmarks/check_regression.py --update``
  after an intentional perf change (it keeps the min of old and fresh
  unless ``--reset`` is also given).

Gated metrics are an explicit catalog, not a wildcard: hardware-coupled
ratios (``speedup_process_vs_thread`` needs multiple cores to mean
anything) are reported for context but never gated.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "smoke_speedups.json"

#: scenario -> gated metric keys.  The metric value is the *maximum*
#: occurrence of the key anywhere in the record (per-config lists report
#: one value per configuration; the headline is the best one).
GATED_METRICS: dict[str, tuple[str, ...]] = {
    "E10c": ("speedup_cost_vs_legacy",),
    "E10d": ("speedup_vs_full",),
    "E10e": ("speedup_vs_single",),
    "E10f": ("speedup_exchange_vs_chained",),
    "E11": ("speedup_snapshot_vs_replay",),
    # Sync-byte ratio, not a timing: deterministic on any hardware.
    "E12": ("speedup_pruned_vs_full_sync",),
    "E13": ("speedup_interval_vs_fixpoint",),
    # Absolute throughput, not a ratio: the committed smoke floor is set
    # conservatively low so only a serving-path collapse trips it.
    "E14": ("sustained_rps",),
    # Delta-stream scenario packs: steady-state tick cost, delta vs the
    # snapshot-scan oracle on the same traffic.
    "E15a": ("speedup_delta_vs_snapshot",),
    "E15b": ("speedup_delta_vs_snapshot",),
    "E15c": ("speedup_delta_vs_snapshot",),
}

#: Reported next to the gated metrics but never gated (hardware-coupled).
CONTEXT_METRICS: dict[str, tuple[str, ...]] = {
    "E10f": ("speedup_process_vs_thread",),
    "E11": ("mutation_ops_per_s", "listing_query_ops_per_s"),
    "E12": ("speedup_shared_vs_full_sync",),
    "E13": ("speedup_build_interval_vs_fixpoint",),
    "E14": ("p99_ms", "coalescing_x"),
    "E15a": ("ticks_per_s", "p99_tick_ms"),
    "E15b": ("ticks_per_s", "p99_tick_ms"),
    "E15c": ("ticks_per_s", "p99_tick_ms"),
}


def _collect(record, key: str) -> list[float]:
    """Every numeric value stored under ``key`` anywhere in ``record``."""
    values: list[float] = []
    if isinstance(record, dict):
        for k, v in record.items():
            if k == key and isinstance(v, (int, float)) and not isinstance(v, bool):
                values.append(float(v))
            else:
                values.extend(_collect(v, key))
    elif isinstance(record, list):
        for item in record:
            values.extend(_collect(item, key))
    return values


def _metric(record, key: str) -> float | None:
    values = _collect(record, key)
    return max(values) if values else None


def _load(path: Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def _update_baselines(reset: bool) -> int:
    existing = (_load(BASELINE_PATH) or {}) if not reset else {}
    for scenario, keys in GATED_METRICS.items():
        fresh = _load(REPO_ROOT / f"BENCH_{scenario}.smoke.json")
        if fresh is None:
            print(f"[update] no fresh smoke record for {scenario}, skipping")
            continue
        slot = existing.setdefault(scenario, {})
        for key in keys:
            value = _metric(fresh, key)
            if value is None:
                continue
            old = slot.get(key)
            slot[key] = round(min(old, value) if old is not None else value, 3)
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[update] wrote {BASELINE_PATH.relative_to(REPO_ROOT)}")
    return 0


def main(argv: list[str]) -> int:
    if "--update" in argv:
        return _update_baselines(reset="--reset" in argv)

    tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.30"))
    baselines = _load(BASELINE_PATH)
    if baselines is None:
        print(f"error: missing committed baselines at {BASELINE_PATH}")
        return 1

    failures: list[str] = []
    for scenario, keys in GATED_METRICS.items():
        trajectory = _load(REPO_ROOT / f"BENCH_{scenario}.json")
        if trajectory is None:
            failures.append(
                f"{scenario}: committed trajectory BENCH_{scenario}.json is missing"
            )
            continue
        fresh = _load(REPO_ROOT / f"BENCH_{scenario}.smoke.json")
        if fresh is None:
            failures.append(
                f"{scenario}: bench-smoke produced no BENCH_{scenario}.smoke.json"
            )
            continue
        if not fresh.get("fast_mode"):
            failures.append(f"{scenario}: smoke record was not a fast-mode run")
            continue
        for key in keys:
            value = _metric(fresh, key)
            floor_base = baselines.get(scenario, {}).get(key)
            committed = _metric(trajectory, key)
            if value is None:
                failures.append(f"{scenario}.{key}: missing from the smoke record")
                continue
            if floor_base is None:
                print(
                    f"[warn] {scenario}.{key}: no smoke baseline "
                    f"(smoke={value:.2f}, full-size trajectory="
                    f"{committed if committed is not None else 'n/a'}) — not gated"
                )
                continue
            floor = floor_base * (1.0 - tolerance)
            status = "ok" if value >= floor else "REGRESSION"
            print(
                f"[{status}] {scenario}.{key}: smoke={value:.2f} "
                f"floor={floor:.2f} (baseline={floor_base:.2f}, "
                f"tolerance={tolerance:.0%}, full-size trajectory="
                f"{committed if committed is not None else 'n/a'})"
            )
            if value < floor:
                failures.append(
                    f"{scenario}.{key}: {value:.2f} fell below {floor:.2f} "
                    f"(baseline {floor_base:.2f} - {tolerance:.0%})"
                )
        for key in CONTEXT_METRICS.get(scenario, ()):
            value = _metric(fresh, key)
            if value is not None:
                print(f"[info] {scenario}.{key}: smoke={value:.2f} (not gated)")

    # Orphaned baselines fail loudly: a baseline entry whose scenario or
    # key is no longer in the gated catalog would otherwise never be
    # visited — a renamed scenario could silently lose its gate.
    for scenario, slot in sorted(baselines.items()):
        gated_keys = GATED_METRICS.get(scenario)
        if gated_keys is None:
            failures.append(
                f"{scenario}: baseline entry in {BASELINE_PATH.name} matches no "
                "gated scenario — remove it or restore the GATED_METRICS entry"
            )
            continue
        for key in sorted(set(slot) - set(gated_keys)):
            failures.append(
                f"{scenario}.{key}: baseline key in {BASELINE_PATH.name} is not "
                "a gated metric — remove it or add it to GATED_METRICS"
            )

    if failures:
        print("\nbench-regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
