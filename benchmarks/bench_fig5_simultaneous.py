"""E5 / Figure 5 — conducting a simultaneous collaboration task.

Times the full Figure-5 flow through the public API: SNS-id solicitation,
joint-task generation with the collected id list, parallel contributions
to the shared document, single team-credited submission — plus rendering
of the joint-task screen itself.
"""

from repro.apps.common import build_crowd
from repro.core import TeamConstraints
from repro.core.projects import SchemeKind
from repro.core.tasks import TaskKind
from repro.forms import render_task_ui
from repro.metrics import format_table

SOURCE = """
    open report(topic: text, article: text) key (topic).
    topic("city festival").
    published(T, A) :- topic(T), report(T, A).
"""


def run_simultaneous(seed: int = 6):
    platform = build_crowd(12, seed=seed)
    project = platform.register_project(
        "news", "req", SOURCE,
        scheme=SchemeKind.SIMULTANEOUS,
        constraints=TeamConstraints(min_size=3, critical_mass=3),
    )
    platform.step()
    task = platform.pool.pending_root_tasks(project.id)[0]
    for worker_id in platform.ledger.eligible_workers(task.id)[:4]:
        platform.declare_interest(worker_id, task.id)
    platform.step()
    team = platform.teams.get(platform.pool.get(task.id).team_id)
    for member in team.members:
        platform.confirm_membership(member, task.id)
    for member in team.members:
        for micro in platform.tasks_for_worker(member):
            platform.submit_micro_result(
                micro.id, member, {"sns_id": f"{member}@google"}
            )
    joint = [
        t for t in platform.tasks_for_worker(team.members[0])
        if t.kind is TaskKind.JOINT
    ][0]
    for member in team.members:
        platform.contribute(task.id, member, f"paragraph by {member}")
    page = render_task_ui(platform, joint.id, team.members[0])
    platform.submit_micro_result(joint.id, team.members[0], {"quality": 0.9})
    return platform, project, team, joint, page


def test_fig5_simultaneous_collaboration(benchmark, emit):
    platform, project, team, joint, page = benchmark.pedantic(
        run_simultaneous, rounds=3, iterations=1
    )
    processor = platform.processor(project.id)
    article = processor.sorted_facts("published")[0][1]
    result = platform.results_for(project.id)[0]
    rows = [
        ("team size", len(team.members)),
        ("SNS ids collected", len(joint.payload["sns_ids"])),
        ("contributions merged", sum(
            1 for m in team.members if f"paragraph by {m}" in article)),
        ("submitted by one member", result["submitted_by"]),
        ("credited to team", result["team_id"]),
        ("joint screen size (bytes)", len(page)),
    ]
    emit(format_table(
        ("measure", "value"), rows,
        title="E5 / Figure 5 — simultaneous collaboration flow",
    ))
    assert all(f"paragraph by {m}" in article for m in team.members)
    assert "Submit for the team" in page
