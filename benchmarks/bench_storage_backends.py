"""E11 — durable storage backends: throughput and crash recovery (PR 6).

One churn-heavy mutation stream (bulk load, then repeated update /
delete / reinsert passes) is applied to all three backends — in-memory,
WAL and SQLite — and every backend must land on the byte-identical
canonical dump.  The record then captures:

* **Mutation throughput** per backend: what durability costs on the
  write path (the WAL appends one JSONL record per mutation; SQLite runs
  one ``BEGIN IMMEDIATE`` transaction per mutation).
* **Query throughput** per backend: point lookups served by the
  authoritative in-memory table, demonstrating the read path is
  backend-independent; plus the SQLite materialized-listing lookup rate
  for the worker-page-style keyed query.
* **Recovery**: reopening each durable database after the churn history.
  The headline — and the gated metric — is
  ``speedup_snapshot_vs_replay``: recovering a *compacted* WAL (snapshot
  + empty tail) versus replaying the full mutation history.  The churn
  stream writes ~20 log records per surviving row, so compaction must
  win by roughly that factor; the ratio is intra-backend and
  hardware-insensitive, unlike cross-backend time ratios.
"""

from __future__ import annotations

import time

from repro.metrics import format_table
from repro.storage import (
    Column,
    ColumnType,
    Database,
    TableSchema,
    dump_canonical,
    open_database,
)
from repro.storage.backends import ListingSpec

from fastmode import pick

LIVE_ROWS = pick(1500, 80)
CHURN_PASSES = pick(12, 3)
N_QUERIES = pick(30000, 1500)
N_LISTING_QUERIES = pick(4000, 200)
N_KINDS = 7

#: Large enough that the replay-side WAL never auto-compacts: its whole
#: history stays in the log, which is the point of the comparison.
NO_COMPACT = 10**9

EVENTS = TableSchema(
    "events",
    [
        Column("id", ColumnType.INT),
        Column("kind", ColumnType.TEXT),
        Column("n", ColumnType.INT),
    ],
    primary_key=("id",),
)

#: Worker-page-shaped keyed lookup over the churn table.
LISTING = ListingSpec(
    name="events_by_kind",
    source="events",
    key="kind",
    columns=("kind", "id", "n"),
)


def _apply_stream(db) -> int:
    """The shared churn-heavy history; returns the mutation count."""
    ops = 0
    db.create_table(EVENTS)
    ops += 1
    for i in range(LIVE_ROWS):
        db.insert("events", {"id": i, "kind": f"e{i % N_KINDS}", "n": 0})
        ops += 1
    for round_index in range(CHURN_PASSES):
        for i in range(LIVE_ROWS):
            db.update("events", (i,), {"n": round_index * LIVE_ROWS + i})
            ops += 1
        for i in range(round_index % 3, LIVE_ROWS, 3):
            db.delete("events", (i,))
            db.insert(
                "events", {"id": i, "kind": f"e{i % N_KINDS}", "n": -round_index}
            )
            ops += 2
    return ops


def _bench_queries(db) -> float:
    table = db.table("events")
    start = time.perf_counter()
    for i in range(N_QUERIES):
        table.get((i % LIVE_ROWS,))
    return N_QUERIES / (time.perf_counter() - start)


def _timed_open(target, backend, **options):
    start = time.perf_counter()
    db = open_database(target, backend=backend, **options)
    return db, time.perf_counter() - start


def test_e11_storage_backends(tmp_path_factory, emit, emit_bench_json):
    tmp = tmp_path_factory.mktemp("e11")
    targets = {
        "memory": None,
        "wal": tmp / "wal-replay",
        "sqlite": tmp / "db.sqlite",
    }
    records = []
    dumps = {}
    for name, target in targets.items():
        if name == "memory":
            db = Database()
        elif name == "sqlite":
            db = open_database(target, backend=name, listings=(LISTING,))
        else:
            db = open_database(target, backend=name, compact_every=NO_COMPACT)
        start = time.perf_counter()
        ops = _apply_stream(db)
        mutate_s = time.perf_counter() - start
        query_ops_per_s = _bench_queries(db)
        dumps[name] = dump_canonical(db)
        record = {
            "backend": name,
            "mutations": ops,
            "mutation_ops_per_s": round(ops / mutate_s, 1),
            "query_ops_per_s": round(query_ops_per_s, 1),
        }
        if name == "sqlite":
            start = time.perf_counter()
            for i in range(N_LISTING_QUERIES):
                db.backend.query_listing("events_by_kind", f"e{i % N_KINDS}")
            listing_s = time.perf_counter() - start
            record["listing_query_ops_per_s"] = round(
                N_LISTING_QUERIES / listing_s, 1
            )
        db.close()
        records.append(record)

    # Every backend must have observed the identical state.
    assert dumps["wal"] == dumps["memory"]
    assert dumps["sqlite"] == dumps["memory"]

    # Recovery: replaying the full churn history ...
    db, replay_s = _timed_open(
        targets["wal"], "wal", compact_every=NO_COMPACT
    )
    assert dump_canonical(db) == dumps["memory"]
    # ... versus recovering from a compacted snapshot of the same state.
    db.backend.compact()
    db.close()
    db, snapshot_s = _timed_open(
        targets["wal"], "wal", compact_every=NO_COMPACT
    )
    assert dump_canonical(db) == dumps["memory"]
    db.close()
    db, sqlite_recover_s = _timed_open(
        targets["sqlite"], "sqlite", listings=(LISTING,)
    )
    assert dump_canonical(db) == dumps["memory"]
    db.close()

    speedup = replay_s / snapshot_s if snapshot_s else 0.0
    by_backend = {r["backend"]: r for r in records}
    emit_bench_json(
        "E11",
        {
            "workload": {
                "live_rows": LIVE_ROWS,
                "churn_passes": CHURN_PASSES,
                "mutations": by_backend["memory"]["mutations"],
                "queries": N_QUERIES,
                "listing_queries": N_LISTING_QUERIES,
            },
            "recovery": {
                "wal_replay_s": round(replay_s, 4),
                "wal_snapshot_s": round(snapshot_s, 4),
                "sqlite_s": round(sqlite_recover_s, 4),
            },
            "speedup_snapshot_vs_replay": round(speedup, 2),
            "backends": records,
        },
    )
    rows = [
        (
            r["backend"],
            r["mutations"],
            r["mutation_ops_per_s"],
            r["query_ops_per_s"],
            r.get("listing_query_ops_per_s", "-"),
        )
        for r in records
    ]
    emit(format_table(
        ("backend", "mutations", "mutate ops/s", "query ops/s", "listing ops/s"),
        rows,
        title=(
            f"E11 — storage backends ({LIVE_ROWS} live rows, "
            f"{CHURN_PASSES} churn passes; recovery: replay "
            f"{replay_s * 1000:.0f} ms vs snapshot {snapshot_s * 1000:.0f} ms "
            f"= {speedup:.1f}x, sqlite {sqlite_recover_s * 1000:.0f} ms)"
        ),
    ))
    if not pick(False, True):  # full-size runs must show the headline shape
        # ~20 log records per surviving row: compaction must clearly win.
        assert speedup > 2.0
