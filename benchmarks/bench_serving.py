"""E14 — the serving front-end under concurrent load (PR 9).

One :class:`~repro.serving.server.PlatformServer` over one platform, hit
by ``N_CLIENTS`` simulated volunteers on persistent keep-alive
connections.  Two phases:

* **write saturation** — every client concurrently POSTs answers and
  ad-hoc task posts.  The admission queue coalesces the flood into
  drainer ticks, so the engine runs one continuation per project per
  tick instead of one per request; ``coalescing_x`` (admitted writes per
  tick) is the headline and must be >= 10x at full size.
* **cache-fed reads** — every client GETs worker pages and health
  probes.  Between mutations the renders hit the version-keyed query
  cache, measured by the server's attributed ``read_cache`` block.

``sustained_rps`` (all requests over total wall) and ``p99_ms`` are the
trajectory record; the CI smoke gate holds ``sustained_rps`` above a
conservative committed floor.
"""

import asyncio
import time

from repro.config import RuntimeConfig
from repro.core import HumanFactors
from repro.metrics import format_table
from repro.serving import ServingConfig
from repro.serving.http import HttpClient

from fastmode import FAST, pick

N_CLIENTS = pick(1000, 50)
WRITES_PER_CLIENT = pick(4, 3)
READS_PER_CLIENT = pick(4, 3)
SEED_WORKERS = pick(50, 8)
CONNECT_CHUNK = 100  # stagger connects to stay under the accept backlog

CYLOG_SOURCE = """
    open rate(item: text, verdict: text) key (item) asking "Rate {item}".
    item("i1"). item("i2"). item("i3").
    rated(I, V) :- item(I), rate(I, V).
"""


def _factors(i: int) -> HumanFactors:
    return HumanFactors(
        native_languages=frozenset({"en"}),
        languages={"fr": 0.5 + (i % 5) / 10},
        region=("tsukuba", "paris")[i % 2],
        skills={"translation": 0.5},
        reliability=0.9,
    )


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


async def _write_phase(
    client: HttpClient, index: int, project_id: str, latencies: list[float]
) -> None:
    for n in range(WRITES_PER_CLIENT):
        if n % 2 == 0:
            path = f"/projects/{project_id}/answers"
            body = {
                "predicate": "rate",
                "key_values": {"item": f"c{index}-{n}"},
                "fill_values": {"verdict": "good"},
            }
        else:
            path = f"/projects/{project_id}/tasks"
            body = {"instruction": f"adhoc-{index}-{n}"}
        start = time.perf_counter()
        response = await client.request("POST", path, json_body=body)
        latencies.append(time.perf_counter() - start)
        assert response.status == 200, response.body


async def _read_phase(
    client: HttpClient, index: int, worker_ids: list[str], latencies: list[float]
) -> None:
    for n in range(READS_PER_CLIENT):
        worker_id = worker_ids[(index + n) % len(worker_ids)]
        path = f"/workers/{worker_id}/page" if n % 2 == 0 else "/healthz"
        start = time.perf_counter()
        response = await client.request("GET", path)
        latencies.append(time.perf_counter() - start)
        assert response.status == 200, response.body


async def _run() -> dict:
    config = RuntimeConfig(
        serving=ServingConfig(
            batch_window=0.005,
            max_batch=512,
            queue_depth=max(1024, N_CLIENTS * WRITES_PER_CLIENT),
            max_round_lag=30.0,
        )
    )
    server = config.build_server()
    platform = server.platform
    project_id = platform.register_project("survey", "req", CYLOG_SOURCE).id
    worker_ids = [
        platform.register_worker(f"w{i}", _factors(i)).id
        for i in range(SEED_WORKERS)
    ]
    platform.step()

    write_lat: list[float] = []
    read_lat: list[float] = []
    async with server:
        clients = [HttpClient(*server.address) for _ in range(N_CLIENTS)]
        try:
            for base in range(0, N_CLIENTS, CONNECT_CHUNK):
                await asyncio.gather(
                    *(c.connect() for c in clients[base:base + CONNECT_CHUNK])
                )

            start = time.perf_counter()
            await asyncio.gather(
                *(
                    _write_phase(client, i, project_id, write_lat)
                    for i, client in enumerate(clients)
                )
            )
            write_wall = time.perf_counter() - start

            start = time.perf_counter()
            await asyncio.gather(
                *(
                    _read_phase(client, i, worker_ids, read_lat)
                    for i, client in enumerate(clients)
                )
            )
            read_wall = time.perf_counter() - start
        finally:
            await asyncio.gather(*(c.close() for c in clients))

    stats = server.stats
    assert stats.applied == stats.admitted == len(write_lat)
    assert stats.rejected == 0, stats.as_dict()
    cache = stats.read_cache
    requests = len(write_lat) + len(read_lat)
    total_wall = write_wall + read_wall
    record = {
        "clients": N_CLIENTS,
        "requests": requests,
        "sustained_rps": round(requests / total_wall, 1),
        "p99_ms": round(_percentile(write_lat + read_lat, 0.99) * 1000, 2),
        "write": {
            "requests": len(write_lat),
            "rps": round(len(write_lat) / write_wall, 1),
            "p50_ms": round(_percentile(write_lat, 0.50) * 1000, 2),
            "p99_ms": round(_percentile(write_lat, 0.99) * 1000, 2),
            "ticks": stats.ticks,
            "coalescing_x": round(stats.coalescing, 2),
            "max_queue_depth": stats.max_queue_depth,
            "tick_latency_max_ms": round(stats.tick_latency_max_s * 1000, 2),
        },
        "read": {
            "requests": len(read_lat),
            "rps": round(len(read_lat) / read_wall, 1),
            "p50_ms": round(_percentile(read_lat, 0.50) * 1000, 2),
            "p99_ms": round(_percentile(read_lat, 0.99) * 1000, 2),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": round(
                cache.hits / cache.fetches if cache.fetches else 0.0, 3
            ),
        },
        "platform_tasks": platform.pool.counts(),
    }
    platform.close()
    return record


def test_e14_serving_front_end(emit, emit_bench_json):
    record = asyncio.run(_run())

    emit_bench_json("E14", record)
    write, read = record["write"], record["read"]
    emit(format_table(
        ("phase", "requests", "rps", "p50 ms", "p99 ms", "detail"),
        [
            (
                "write", write["requests"], write["rps"], write["p50_ms"],
                write["p99_ms"],
                f"{write['ticks']} ticks, {write['coalescing_x']}x coalesced",
            ),
            (
                "read", read["requests"], read["rps"], read["p50_ms"],
                read["p99_ms"],
                f"cache hit rate {read['cache_hit_rate']:.0%}",
            ),
        ],
        title=(
            f"E14 — {N_CLIENTS} concurrent clients over HTTP: "
            f"{record['sustained_rps']} req/s sustained, "
            f"p99 {record['p99_ms']} ms"
        ),
    ))

    # The cache-fed read path must actually be cache-fed.
    assert read["cache_hits"] > 0
    if not FAST:
        # The batching win at saturation: >= 10 admitted writes per
        # engine continuation (acceptance criterion).
        assert write["coalescing_x"] >= 10.0, record
