"""E15 — the delta-stream scenario packs at large populations (PR 10).

Three packs exercise the delta-mode :class:`SimulationDriver` against
live traffic: (a) streaming content moderation with revocation storms,
(b) disaster-mapping surges under serving backpressure, (c) multilingual
pipelines with worker churn and demand resurrection.

Each pack runs twice on identical seeded traffic — once riding the
platform's round-delta feed, once in snapshot mode (full scans every
tick, the lockstep oracle).  The headline ``speedup_delta_vs_snapshot``
is the ratio of the two modes' mean *steady-state* tick cost over a
common prefix: revisit-boundary ticks are excluded (the once-per-window
full interest scan is identical work in both modes), and the snapshot
run only needs enough ticks to measure its per-tick floor — its cost is
population-proportional, so full-length snapshot runs at 10^5 workers
would be pure waste.

Full-size runs use a raised eligibility ``skill_floor``: with 10^5
workers a permissive rule makes everyone eligible for everything, which
floods the relationship ledger identically in both modes and measures
ledger churn rather than scan avoidance.  Real deployments scope tasks
to qualified audiences; the floor models that.
"""

from __future__ import annotations

from repro.apps import (
    run_disaster_pack,
    run_moderation_pack,
    run_multilingual_pack,
)
from repro.metrics import format_table

from fastmode import FAST, pick

N_WORKERS = pick(100_000, 250)
TICKS = pick(40, 14)
#: Snapshot-oracle prefix: enough steady ticks to measure the per-tick
#: floor; must stay below the first revisit boundary (revisit_period=25).
SNAP_TICKS = pick(10, 14)
SKILL_FLOOR = pick(0.93, 0.05)
SEED = 7


def _steady_mean_ms(driver, upto: int) -> float:
    boundaries = set(driver.boundary_ticks)
    samples = [
        s
        for i, s in enumerate(driver.tick_seconds[:upto])
        if i not in boundaries
    ]
    return 1000.0 * sum(samples) / len(samples) if samples else 0.0


def _run_pair(run_pack, scenario: str, title: str, emit, emit_bench_json, **kwargs):
    delta = run_pack(
        n_workers=N_WORKERS, ticks=TICKS, seed=SEED, delta=True, **kwargs
    )
    snapshot = run_pack(
        n_workers=N_WORKERS, ticks=SNAP_TICKS, seed=SEED, delta=False, **kwargs
    )
    if TICKS == SNAP_TICKS:
        # Equal-length runs must agree exactly (the sim-diff invariant).
        assert delta.facts == snapshot.facts
        assert delta.report == snapshot.report

    delta_steady = _steady_mean_ms(delta.extras["driver"], SNAP_TICKS)
    snap_steady = _steady_mean_ms(snapshot.extras["driver"], SNAP_TICKS)
    speedup = snap_steady / delta_steady if delta_steady > 0 else float("inf")
    timing = delta.extras["timing"]

    rows = [
        ("workers", f"{N_WORKERS:,}"),
        ("ticks (delta/snapshot)", f"{TICKS}/{SNAP_TICKS}"),
        ("delta steady tick", f"{delta_steady:.2f} ms"),
        ("snapshot steady tick", f"{snap_steady:.2f} ms"),
        ("delta vs snapshot", f"{speedup:.1f}x"),
        ("delta ticks/s", f"{timing['ticks_per_s']:.1f}"),
        ("delta p99 tick", f"{timing['p99_tick_ms']:.2f} ms"),
    ] + [(key, str(value)) for key, value in sorted(delta.facts.items())]
    emit(format_table(("metric", "value"), rows, title=f"{scenario}: {title}"))

    emit_bench_json(
        scenario,
        {
            "n_workers": N_WORKERS,
            "ticks": TICKS,
            "snapshot_ticks": SNAP_TICKS,
            "seed": SEED,
            "skill_floor": kwargs.get("skill_floor"),
            "speedup_delta_vs_snapshot": round(speedup, 3),
            "delta_steady_tick_ms": round(delta_steady, 4),
            "snapshot_steady_tick_ms": round(snap_steady, 4),
            "timing": timing,
            "facts": delta.facts,
        },
    )
    if not FAST:
        # Acceptance floor: >= 5x at 10^5+ workers.
        assert speedup >= 5.0, f"{scenario}: only {speedup:.1f}x at {N_WORKERS:,}"
    return speedup


def test_e15a_moderation_revocation_storms(emit, emit_bench_json):
    _run_pair(
        run_moderation_pack,
        "E15a",
        "streaming moderation with revocation storms",
        emit,
        emit_bench_json,
        skill_floor=SKILL_FLOOR,
    )


def test_e15b_disaster_traffic_surges(emit, emit_bench_json):
    _run_pair(
        run_disaster_pack,
        "E15b",
        "disaster-mapping surges under backpressure",
        emit,
        emit_bench_json,
        skill_floor=SKILL_FLOOR,
    )


def test_e15c_multilingual_attrition(emit, emit_bench_json):
    _run_pair(
        run_multilingual_pack,
        "E15c",
        "multilingual pipelines with worker attrition",
        emit,
        emit_bench_json,
        skill_floor=SKILL_FLOOR,
    )
