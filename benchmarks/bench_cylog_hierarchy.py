"""E13 — interval-encoded hierarchy index vs fixpoint joins (PR 8).

Deep task-decomposition trees are the workload the interval access path
exists for: a transitive closure ``tc`` over a tree-shaped ``edge``
relation, churned by subtree moves (a decomposed task re-parented under a
different parent) and leaf churn, probed by descendant queries.

Two engines run the identical scenario on the identical store layout;
the only difference is the access path:

* **interval** (the default): the planner detects the linear closure,
  the engine answers the stratum from
  :class:`~repro.cylog.indexes.IntervalHierarchyIndex` range scans, and
  every edge delta becomes the exact added/removed closure pairs.
* **fixpoint** (``ShardConfig(interval=False)``): classic semi-naive
  rounds with support counting and DRed over-delete / re-derive.

The headline gate — ``speedup_interval_vs_fixpoint`` — is the churn-phase
wall-clock ratio (fixpoint / interval) at tree depth >= 8; the acceptance
target is >= 10x.  The initial-build ratio is reported as context.  Store
fingerprints are cross-checked after the build and after every churn
round, so the speedup is measured on bit-identical results.
"""

import time

from repro.cylog import SemiNaiveEngine, ShardConfig, parse_program
from repro.metrics import format_table

from fastmode import pick

N_NODES = pick(20_000, 900)
BRANCH = pick(3, 2)
CHURN_ROUNDS = pick(10, 6)
LEAF_BATCH = pick(200, 10)
QUERY_PROBES = pick(400, 40)
#: Subtree-move victims live at this depth: deep enough that the moved
#: subtree is a real decomposition (hundreds of nodes full-size), shallow
#: enough that the fixpoint leg finishes in CI-able time.
VICTIM_DEPTH = pick(4, 3)

RULES = """
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
"""

#: (label, interval enabled)
MODES = (("interval", True), ("fixpoint", False))


def _edges() -> list[tuple[int, int]]:
    """A complete ``BRANCH``-ary tree: parent(i) = (i - 1) // BRANCH."""
    return [((i - 1) // BRANCH, i) for i in range(1, N_NODES)]


def _depth(node: int) -> int:
    depth = 0
    while node:
        node = (node - 1) // BRANCH
        depth += 1
    return depth


def _movable_subtrees() -> list[int]:
    """Nodes at ``VICTIM_DEPTH`` — subtrees big enough that a move is real work."""
    lo = sum(BRANCH**d for d in range(VICTIM_DEPTH))
    hi = sum(BRANCH**d for d in range(VICTIM_DEPTH + 1))
    return list(range(lo, min(hi, N_NODES)))


def _subtree_leaf(root: int) -> int:
    """Deepest first child under ``root`` (stays inside the subtree)."""
    node = root
    while node * BRANCH + 1 < N_NODES:
        node = node * BRANCH + 1
    return node


def _build_engine(interval: bool) -> SemiNaiveEngine:
    engine = SemiNaiveEngine(
        parse_program(RULES), shard_config=ShardConfig(interval=interval)
    )
    engine.add_facts("edge", _edges())
    return engine


def _run_mode(interval: bool) -> dict:
    engine = _build_engine(interval)
    try:
        start = time.perf_counter()
        engine.run()
        build_s = time.perf_counter() - start
        build_fp = engine.store.fingerprint()

        victims = _movable_subtrees()
        fingerprints = []
        start = time.perf_counter()
        for round_index in range(CHURN_ROUNDS):
            # Subtree move: re-parent a mid-depth task under a leaf of the
            # *previous* victim's subtree, then move it back — the tree
            # shape is restored so every round does the same work.
            victim = victims[round_index % len(victims)]
            old_parent = (victim - 1) // BRANCH
            new_parent = _subtree_leaf(victims[(round_index + 1) % len(victims)])
            engine.retract_facts("edge", [(old_parent, victim)])
            engine.add_facts("edge", [(new_parent, victim)])
            engine.run()
            engine.retract_facts("edge", [(new_parent, victim)])
            engine.add_facts("edge", [(old_parent, victim)])
            engine.run()
            # Leaf churn: a fresh batch of subtasks appears and resolves.
            base = 10_000_000 + round_index * LEAF_BATCH
            rows = [(victim, base + j) for j in range(LEAF_BATCH)]
            engine.add_facts("edge", rows)
            engine.run()
            engine.retract_facts("edge", rows)
            engine.run()
            fingerprints.append(engine.store.fingerprint())
        churn_s = time.perf_counter() - start

        # Descendant queries: single indexed range/bucket probes over the
        # materialised closure — identical on both legs by construction.
        tc = engine.store.maybe("tc")
        start = time.perf_counter()
        probed = 0
        step = max(1, N_NODES // QUERY_PROBES)
        for node in range(0, N_NODES, step):
            probed += len(tc.lookup((0,), (node,)))
        query_s = time.perf_counter() - start

        assert engine.runs == 1  # every churn round stayed incremental
        return {
            "mode": "interval" if interval else "fixpoint",
            "build_ms": round(build_s * 1000, 1),
            "churn_s": round(churn_s, 3),
            "churn_rounds_per_s": round(
                CHURN_ROUNDS / churn_s if churn_s else 0.0, 2
            ),
            "query_ms": round(query_s * 1000, 1),
            "descendant_rows_probed": probed,
            "tc_rows": len(engine.facts("tc")),
            "interval_scans": engine.stats.interval_scans,
            "interval_renumbers": engine.stats.interval_renumbers,
            "build_fingerprint": build_fp,
            "churn_fingerprints": fingerprints,
            "_build_s": build_s,
            "_churn_s": churn_s,
        }
    finally:
        engine.close()


def test_e13_interval_hierarchy(emit, emit_bench_json):
    depth = max(_depth(node) for node in range(N_NODES))
    assert depth >= 8, depth

    records = {label: _run_mode(interval) for label, interval in MODES}
    interval, fixpoint = records["interval"], records["fixpoint"]

    # Bit-identity: both access paths land on the same store after the
    # build and after every single churn round.
    assert interval.pop("build_fingerprint") == fixpoint.pop("build_fingerprint")
    assert interval.pop("churn_fingerprints") == fixpoint.pop("churn_fingerprints")
    # The interval path actually served the closure (and only it).
    assert interval["interval_scans"] > 0
    assert fixpoint["interval_scans"] == 0

    speedup_churn = fixpoint.pop("_churn_s") / interval.pop("_churn_s")
    speedup_build = fixpoint.pop("_build_s") / interval.pop("_build_s")

    emit_bench_json(
        "E13",
        {
            "workload": {
                "nodes": N_NODES,
                "branch": BRANCH,
                "depth": depth,
                "churn_rounds": CHURN_ROUNDS,
                "leaf_batch": LEAF_BATCH,
                "query_probes": QUERY_PROBES,
            },
            "speedup_interval_vs_fixpoint": round(speedup_churn, 2),
            "speedup_build_interval_vs_fixpoint": round(speedup_build, 2),
            "modes": list(records.values()),
        },
    )
    emit(format_table(
        ("mode", "build ms", "churn s", "rounds/s", "query ms",
         "tc rows", "ivl scans", "ivl renumbers"),
        [
            (r["mode"], r["build_ms"], r["churn_s"], r["churn_rounds_per_s"],
             r["query_ms"], r["tc_rows"], r["interval_scans"],
             r["interval_renumbers"])
            for r in records.values()
        ],
        title=(
            f"E13 — interval vs fixpoint on a {N_NODES}-node depth-{depth} "
            f"tree ({CHURN_ROUNDS} churn rounds: subtree moves + "
            f"{LEAF_BATCH}-leaf batches)"
        ),
    ))
    # The headline gate: incremental maintenance under churn.
    assert speedup_churn >= 10.0, (speedup_churn, records)
