"""E3 / Figure 3 — the constraint entry form on the admin page.

Benchmarks form generation, submission parsing and full page rendering,
and verifies the round trip requester ⇄ constraints is lossless.
"""

from repro.apps.common import build_crowd
from repro.core import SkillRequirement, TeamConstraints
from repro.forms import (
    build_constraint_form,
    parse_constraint_form,
    render_admin_page,
)
from repro.metrics import format_table

CONSTRAINTS = TeamConstraints(
    min_size=3,
    critical_mass=5,
    skills=(
        SkillRequirement("translation", 0.6),
        SkillRequirement("reporting", 0.4, aggregator="noisy_or"),
    ),
    required_languages=frozenset({"en", "fr"}),
    quality_threshold=0.5,
    cost_budget=10.0,
    region="tsukuba",
    recruitment_deadline=120.0,
)


def test_fig3_constraint_form_round_trip(benchmark, emit):
    def round_trip():
        form = build_constraint_form(CONSTRAINTS)
        submission = {k: v for k, v in form.defaults().items() if v is not None}
        return parse_constraint_form(submission)

    parsed = benchmark(round_trip)
    assert parsed == CONSTRAINTS

    platform = build_crowd(12, seed=1)
    project = platform.register_project(
        "p", "req", 'open f(k: text, v: text) key (k).\nseed("x").\n'
        "out(K, V) :- seed(K), f(K, V).",
        constraints=CONSTRAINTS,
    )
    platform.step()
    page = render_admin_page(platform, project.id)
    form = build_constraint_form(CONSTRAINTS)
    rows = [
        ("form fields", len(form.fields)),
        ("constraints carried", 7),
        ("page size (bytes)", len(page)),
        ("round trip lossless", parsed == CONSTRAINTS),
    ]
    emit(format_table(
        ("measure", "value"), rows,
        title="E3 / Figure 3 — constraint entry form (project admin page)",
    ))
    assert "Desired human factors" in page
