"""E7 — approximations "provide high quality groups of workers" ([9]).

On instances small enough for the exact branch-and-bound optimum, measure
each approximation's affinity ratio to that optimum.  Expected shape:
GRASP ≥ local search ≥ greedy ≫ random, with the top algorithms within
~90% of optimal on average.
"""

import statistics

from repro.core.affinity import AffinityMatrix
from repro.core.assignment import (
    AssignmentProblem,
    ExactAssigner,
    GraspAssigner,
    GreedyAssigner,
    LocalSearchAssigner,
    RandomAssigner,
    SkillOnlyAssigner,
)
from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.core.workers import Worker
from repro.metrics import format_table
from repro.sim import generate_factors
from repro.util.rng import make_rng

N_INSTANCES = 12
N_WORKERS = 14


def _instance(seed: int) -> AssignmentProblem:
    workers = tuple(
        Worker(id=f"w{i:02d}", name=f"w{i}",
               factors=generate_factors(seed, i))
        for i in range(N_WORKERS)
    )
    rng = make_rng(seed, "quality-bench")
    matrix = AffinityMatrix()
    ids = [w.id for w in workers]
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            matrix.set(a, b, rng.random())
    return AssignmentProblem(
        workers=workers,
        affinity=matrix,
        constraints=TeamConstraints(
            min_size=2, critical_mass=4,
            skills=(SkillRequirement("translation", 0.3),),
            quality_threshold=0.2,
        ),
    )


def test_e7_approximation_quality(benchmark, emit):
    instances = [_instance(seed) for seed in range(N_INSTANCES)]
    exact = ExactAssigner()
    optima = [exact.assign(p) for p in instances]
    assert all(r.feasible for r in optima)

    algorithms = [
        ("greedy", GreedyAssigner()),
        ("local_search", LocalSearchAssigner()),
        ("grasp", GraspAssigner(seed=2)),
        ("skill_only", SkillOnlyAssigner()),
        ("random", RandomAssigner(seed=2)),
    ]
    rows = []
    ratios_by_name = {}
    for name, assigner in algorithms:
        ratios = []
        for problem, optimum in zip(instances, optima):
            result = assigner.assign(problem)
            if result.feasible and optimum.affinity_score > 0:
                ratios.append(result.affinity_score / optimum.affinity_score)
            else:
                ratios.append(0.0)
        ratios_by_name[name] = ratios
        rows.append((
            name,
            round(statistics.mean(ratios), 3),
            round(min(ratios), 3),
            round(max(ratios), 3),
        ))
    benchmark(GraspAssigner(seed=2).assign, instances[0])

    emit(format_table(
        ("algorithm", "mean ratio to optimal", "worst", "best"), rows,
        title=(
            "E7 — affinity ratio to the exact optimum "
            f"({N_INSTANCES} instances, {N_WORKERS} candidates)"
        ),
    ))
    # Shape assertions from the paper's claim:
    assert statistics.mean(ratios_by_name["grasp"]) >= 0.9
    assert statistics.mean(ratios_by_name["local_search"]) >= \
        statistics.mean(ratios_by_name["greedy"]) - 1e-9
    assert statistics.mean(ratios_by_name["greedy"]) > \
        statistics.mean(ratios_by_name["random"])
