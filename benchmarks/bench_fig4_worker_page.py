"""E4 / Figure 4 — worker pages at population scale.

2,000 registered workers; renders human-factor pages and computes the
eligible-task list that the page shows, reporting the per-page cost.
"""

from repro.apps.common import build_crowd
from repro.core import TeamConstraints
from repro.forms import render_worker_page
from repro.metrics import format_table

from fastmode import pick

N_WORKERS = pick(2000, 100)

SOURCE = """
    open rate(item: text, score: int) key (item) asking "Rate {item}".
    item("i1"). item("i2"). item("i3"). item("i4"). item("i5").
    eligible(W) :- worker_native(W, "en").
    rated(I, S) :- item(I), rate(I, S).
"""


def _platform():
    platform = build_crowd(N_WORKERS, seed=5)
    platform.register_project(
        "rating", "req", SOURCE,
        constraints=TeamConstraints(min_size=2, critical_mass=3),
    )
    platform.step()
    return platform


def test_fig4_worker_pages_at_scale(benchmark, emit):
    platform = _platform()
    sample = platform.workers.ids()[:25]

    def render_sample():
        return [render_worker_page(platform, worker_id) for worker_id in sample]

    pages = benchmark(render_sample)
    eligible_counts = [
        len(platform.eligible_tasks(worker_id)) for worker_id in sample
    ]
    natives = sum(
        1 for w in platform.workers.all() if w.factors.is_native("en")
    )
    rows = [
        ("registered workers", N_WORKERS),
        ("native-en workers (CyLog-eligible)", natives),
        ("pages rendered per call", len(pages)),
        ("mean page size (bytes)", sum(len(p) for p in pages) // len(pages)),
        ("mean eligible tasks shown", round(
            sum(eligible_counts) / len(eligible_counts), 2)),
        ("relationship rows", len(platform.ledger)),
    ]
    emit(format_table(
        ("measure", "value"), rows,
        title="E4 / Figure 4 — worker human-factor pages at 2,000 workers",
    ))
    assert all("Worker page" in p for p in pages)
