"""E10e — sharded relation store + parallel stratum evaluation (PR 4).

Single-store vs hash-sharded engines on a 10k+ fact add/retract churn
workload — the steady-state shape of a busy platform round.  The sharded
configurations are run at worker counts 1 (serial executor), 2 and 8
(thread pool); results must be byte-identical across every configuration
(the shard-diff oracle gates this in CI, the bench re-checks it on the
fingerprints).

Where the win comes from: the churn is retraction-heavy, and the single
store's deletion cascade scans *every* anonymous-variable support pattern
of a predicate per retracted row; the sharded support index partitions
those patterns by key-prefix shard, so the scan touches ~1/N of them.
Thread fan-out adds headroom on big rounds (the initial materialisation)
and is kept off the tiny steady-state rounds by
``ShardConfig.min_parallel_rows``; on a GIL build its benefit is bounded
by the interpreter, which is exactly what the recorded trajectory shows.
"""

import time

from repro.cylog import SemiNaiveEngine, ShardConfig, parse_program
from repro.metrics import format_table

from fastmode import pick

CHURN_CHAINS = pick(2000, 40)
CHURN_DEPTH = pick(10, 5)
CHURN_ROUNDS = pick(10, 3)
CHURN_SIZE = pick(8, 2)

RULES = """
    reach(S, Y) :- link(X, Y), reach(S, X).
    reach(S, Y) :- source(S), link(S, Y).
    touched(X) :- link(X, _).
    frontier(S, Y) :- reach(S, Y), not banned(Y).
"""

#: (label, workers, config) — the benchmarked configurations.
CONFIGS = (
    ("single-store", 1, ShardConfig()),
    ("sharded x8 / 1 worker", 1, ShardConfig(shards=8)),
    (
        "sharded x8 / 2 workers",
        2,
        ShardConfig(shards=8, executor="thread", max_workers=2),
    ),
    (
        "sharded x8 / 8 workers",
        8,
        ShardConfig(shards=8, executor="thread", max_workers=8),
    ),
)


def _base_links() -> list[tuple[int, int]]:
    return [
        (c * 1000 + i, c * 1000 + i + 1)
        for c in range(CHURN_CHAINS)
        for i in range(CHURN_DEPTH)
    ]


def _build_engine(config: ShardConfig) -> SemiNaiveEngine:
    engine = SemiNaiveEngine(parse_program(RULES), shard_config=config)
    engine.add_facts("link", _base_links())
    engine.add_facts("source", [(c * 1000,) for c in range(0, CHURN_CHAINS, 4)])
    engine.add_facts("banned", [(c * 1000 + 2,) for c in range(0, CHURN_CHAINS, 9)])
    return engine


def _victims(round_index: int) -> list[tuple[int, int]]:
    """The mid-chain links round ``round_index`` cuts (even rounds)."""
    step = max(1, CHURN_CHAINS // CHURN_SIZE)
    offset = round_index % (CHURN_DEPTH - 1)
    return [
        (c * 1000 + offset, c * 1000 + offset + 1)
        for c in range(0, CHURN_CHAINS, step)
    ][:CHURN_SIZE]


def _churn_round(engine: SemiNaiveEngine, round_index: int) -> int:
    """One platform-round-sized batch of adds + retracts; returns #ops."""
    step = max(1, CHURN_CHAINS // CHURN_SIZE)
    extensions = [
        (c * 1000 + CHURN_DEPTH + round_index,
         c * 1000 + CHURN_DEPTH + round_index + 1)
        for c in range(0, CHURN_CHAINS, step)
    ][:CHURN_SIZE]
    if round_index % 2:
        # Restore the links the *previous* round cut: real re-insertions
        # that re-derive the severed chain suffixes.
        victims = _victims(round_index - 1)
        engine.add_facts("link", victims)
    else:
        victims = _victims(round_index)
        engine.retract_facts("link", victims)
    engine.add_facts("link", extensions)
    engine.run()
    return len(victims) + len(extensions)


def test_e10e_sharded_vs_single_store_churn(emit, emit_bench_json):
    base_facts = CHURN_CHAINS * CHURN_DEPTH
    records = []
    fingerprints = set()
    single_ops_per_s = None
    for label, workers, config in CONFIGS:
        engine = _build_engine(config)
        try:
            start = time.perf_counter()
            engine.run()
            full_s = time.perf_counter() - start
            ops = 0
            start = time.perf_counter()
            for round_index in range(CHURN_ROUNDS):
                ops += _churn_round(engine, round_index)
            churn_s = time.perf_counter() - start
            assert engine.runs == 1  # every churn round stayed incremental
            assert engine.stats.incremental_runs == CHURN_ROUNDS
            fingerprints.add(engine.store.fingerprint())
            ops_per_s = ops / churn_s if churn_s else float("inf")
            if single_ops_per_s is None:
                single_ops_per_s = ops_per_s
            records.append(
                {
                    "label": label,
                    "shards": config.shards,
                    "executor": config.executor,
                    "workers": workers,
                    "initial_run_ms": round(full_s * 1000, 2),
                    "churn_rounds": CHURN_ROUNDS,
                    "churn_ops": ops,
                    "mean_round_ms": round(churn_s * 1000 / CHURN_ROUNDS, 3),
                    "ops_per_s": round(ops_per_s, 1),
                    "speedup_vs_single": round(ops_per_s / single_ops_per_s, 2),
                }
            )
        finally:
            engine.close()
    # Every configuration must land on the byte-identical store.
    assert len(fingerprints) == 1

    emit_bench_json(
        "E10e",
        {
            "workload": {
                "base_facts": base_facts,
                "chains": CHURN_CHAINS,
                "depth": CHURN_DEPTH,
                "rounds": CHURN_ROUNDS,
                "adds_retracts_per_round": 2 * CHURN_SIZE,
            },
            "configs": records,
        },
    )
    emit(format_table(
        ("config", "shards", "workers", "initial (ms)", "round (ms)",
         "ops/s", "speedup"),
        [
            (r["label"], r["shards"], r["workers"], r["initial_run_ms"],
             r["mean_round_ms"], r["ops_per_s"], r["speedup_vs_single"])
            for r in records
        ],
        title=(
            f"E10e — sharded vs single-store churn ({base_facts} base facts, "
            f"{CHURN_ROUNDS} rounds x {2 * CHURN_SIZE} add/retract ops)"
        ),
    ))
    if not pick(False, True):  # full-size runs must show the headline shape
        by_workers = {r["workers"]: r for r in records if r["shards"] > 1}
        # Sharded at 1 worker must not lose to the single store...
        assert by_workers[1]["ops_per_s"] >= 0.9 * single_ops_per_s, records
        # ...and the 8-worker sharded path must beat it on churn.
        assert by_workers[8]["ops_per_s"] > single_ops_per_s, records
