"""Fast-mode switch for the CI bench-smoke job.

Set ``BENCH_FAST=1`` to shrink the heavy benchmark sizes so every bench
runs in a few seconds; the goal of the smoke run is catching import and
runtime rot, not producing meaningful numbers.  Perf assertions that need
full-size data are skipped in fast mode.
"""

import os

FAST = os.environ.get("BENCH_FAST", "") not in ("", "0")


def pick(full, fast):
    """``full`` normally, ``fast`` under ``BENCH_FAST=1``."""
    return fast if FAST else full
