"""Shared benchmark plumbing.

Every bench prints its paper-style result table straight to the terminal
(bypassing capture) and appends it to ``benchmarks/results.txt`` so the
full experiment record survives a ``--benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Print a results block unconditionally and persist it."""

    def _emit(block: str) -> None:
        with capsys.disabled():
            print("\n" + block + "\n")
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(block + "\n\n")

    return _emit
