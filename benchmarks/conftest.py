"""Shared benchmark plumbing.

Every bench prints its paper-style result table straight to the terminal
(bypassing capture) and appends it to ``benchmarks/results.txt`` so the
full experiment record survives a ``--benchmark-only`` run.

Benches additionally record a machine-readable trajectory: the
``emit_bench_json`` fixture writes ``BENCH_<scenario>.json`` at the repo
root (ops/s, speedups, configuration, fast-mode flag), and the CI
``bench-smoke`` job uploads those files as artifacts so the perf
trajectory is tracked per PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from fastmode import FAST

RESULTS_PATH = Path(__file__).parent / "results.txt"
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Print a results block unconditionally and persist it."""

    def _emit(block: str) -> None:
        with capsys.disabled():
            print("\n" + block + "\n")
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(block + "\n\n")

    return _emit


@pytest.fixture
def emit_bench_json():
    """Write one scenario's machine-readable record to the repo root.

    The payload is stamped with the fast-mode flag so a consumer can
    separate smoke numbers from full-size measurements.
    """

    def _write(scenario: str, payload: dict) -> Path:
        record = {"scenario": scenario, "fast_mode": FAST, **payload}
        # Fast-mode (smoke) numbers go to a separate, gitignored file so a
        # local BENCH_FAST run can never clobber the committed full-size
        # trajectory records; CI uploads both spellings as artifacts.
        suffix = ".smoke.json" if FAST else ".json"
        path = REPO_ROOT / f"BENCH_{scenario}{suffix}"
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _write
