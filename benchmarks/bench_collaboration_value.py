"""E8 — collaboration-aware assignment beats collaboration-unaware (§1).

The paper's motivating claim: affinity-aware team formation yields better
collaborative outcomes than what existing platforms do (skill-ranked or
random micro-task routing, or individual workers with no teams at all).

For each collaboration scheme, teams are formed by each policy over the
same candidate pools and scored with the outcome model (affinity synergy
+ critical-mass degradation).  Expected dominance:
affinity-aware (greedy/local) > skill-only > random > individual.
"""

import statistics

from repro.core.affinity import affinity_from_factors
from repro.core.assignment import (
    AssignmentProblem,
    GreedyAssigner,
    IndividualAssigner,
    LocalSearchAssigner,
    RandomAssigner,
    SkillOnlyAssigner,
)
from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.core.workers import Worker
from repro.metrics import format_table
from repro.sim import OutcomeModel, generate_factors

SCHEMES = ("sequential", "simultaneous", "hybrid")
N_POOLS = 10
POOL_SIZE = 16

CONSTRAINTS = TeamConstraints(
    min_size=2, critical_mass=4,
    skills=(SkillRequirement("translation", 0.3),),
)


def _pool(seed: int):
    workers = tuple(
        Worker(id=f"w{seed:02d}{i:02d}", name=f"w{i}",
               factors=generate_factors(seed, i))
        for i in range(POOL_SIZE)
    )
    return workers, affinity_from_factors(workers)


def test_e8_collaboration_aware_vs_baselines(benchmark, emit):
    policies = [
        ("affinity (local)", LocalSearchAssigner()),
        ("affinity (greedy)", GreedyAssigner()),
        ("skill_only", SkillOnlyAssigner()),
        ("random", RandomAssigner(seed=4)),
        ("individual", IndividualAssigner()),
    ]
    outcome_model = OutcomeModel(seed=0)
    pools = [_pool(seed) for seed in range(N_POOLS)]

    table_rows = []
    means: dict[tuple[str, str], float] = {}
    for name, assigner in policies:
        row = [name]
        for scheme in SCHEMES:
            qualities = []
            for workers, affinity in pools:
                problem = AssignmentProblem(
                    workers=workers, affinity=affinity, constraints=CONSTRAINTS
                )
                result = assigner.assign(problem)
                if not result.feasible:
                    qualities.append(0.0)
                    continue
                members = [problem.worker_by_id(w) for w in result.team]
                qualities.append(outcome_model.quality(
                    workers=members,
                    affinity=affinity,
                    skills=("translation",),
                    critical_mass=CONSTRAINTS.critical_mass,
                    scheme=scheme,
                ))
            mean = statistics.mean(qualities)
            means[(name, scheme)] = mean
            row.append(round(mean, 3))
        table_rows.append(row)

    workers, affinity = pools[0]
    benchmark(
        GreedyAssigner().assign,
        AssignmentProblem(workers=workers, affinity=affinity,
                          constraints=CONSTRAINTS),
    )

    emit(format_table(
        ("assignment policy",) + tuple(SCHEMES), table_rows,
        title="E8 — mean collaborative outcome quality by assignment policy",
    ))
    for scheme in SCHEMES:
        affinity_aware = means[("affinity (local)", scheme)]
        assert affinity_aware >= means[("skill_only", scheme)] - 0.02, scheme
        assert means[("skill_only", scheme)] > means[("individual", scheme)], scheme
        assert affinity_aware > means[("random", scheme)], scheme
        assert affinity_aware > means[("individual", scheme)], scheme
