"""Top-level exception hierarchy for the Crowd4U reproduction.

Every package raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class StorageError(ReproError):
    """Raised by the embedded relational engine (``repro.storage``)."""


class CyLogError(ReproError):
    """Raised by the CyLog language processor (``repro.cylog``)."""


class PlatformError(ReproError):
    """Raised by the Crowd4U platform core (``repro.core``)."""


class AssignmentError(PlatformError):
    """Raised when team formation fails or is misconfigured."""


class CollaborationError(PlatformError):
    """Raised by the worker-collaboration schemes."""


class RelationshipError(PlatformError):
    """Raised on illegal Eligible/InterestedIn/Undertakes transitions."""


class FormError(ReproError):
    """Raised by the form-based UI layer (``repro.forms``)."""


class SimulationError(ReproError):
    """Raised by the simulated-crowd substrate (``repro.sim``)."""
