"""Lightweight instrumentation used by the benches and examples."""

from repro.metrics.collector import Collector
from repro.metrics.report import format_row, format_stats_table, format_table

__all__ = ["Collector", "format_row", "format_stats_table", "format_table"]
