"""Plain-text tables: the benches print paper-style result rows."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _format_cell(value: Any, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int], float_digits: int = 3) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = _format_cell(cell, float_digits)
        parts.append(text.rjust(width) if _is_numeric(cell) else text.ljust(width))
    return "  ".join(parts).rstrip()


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_digits: int = 3,
    title: str | None = None,
) -> str:
    """Align ``rows`` under ``headers``; returns a printable block."""
    materialised = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(_format_cell(cell, float_digits)))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(headers, widths, float_digits))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(format_row(row, widths, float_digits) for row in materialised)
    return "\n".join(lines)
