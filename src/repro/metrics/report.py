"""Plain-text tables: the benches print paper-style result rows."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def _format_cell(value: Any, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int], float_digits: int = 3) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = _format_cell(cell, float_digits)
        parts.append(text.rjust(width) if _is_numeric(cell) else text.ljust(width))
    return "  ".join(parts).rstrip()


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_digits: int = 3,
    title: str | None = None,
) -> str:
    """Align ``rows`` under ``headers``; returns a printable block."""
    materialised = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(_format_cell(cell, float_digits)))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(headers, widths, float_digits))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(format_row(row, widths, float_digits) for row in materialised)
    return "\n".join(lines)


def format_stats_table(
    sections: Mapping[str, Mapping[str, Any]],
    title: str | None = None,
    skip_zero: bool = False,
) -> str:
    """One unified counters table across stats sources.

    ``sections`` maps a section label (``"cylog_engine"``,
    ``"query_cache"``, ``"platform"``, ...) to its ``as_dict()`` counters;
    the benches feed ``EngineStats`` / ``CacheStats`` / ``PlatformStats``
    through this so every report prints the same three-column shape.
    ``skip_zero`` drops zero-valued counters for compact output.
    """
    rows = []
    for section, counters in sections.items():
        for name, value in counters.items():
            if skip_zero and not value:
                continue
            rows.append((section, name, value))
    return format_table(("section", "counter", "value"), rows, title=title)
