"""Counters, timers and series with a dict-like summary."""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Collector:
    """Aggregates counters, wall-clock timers and value series."""

    counters: dict[str, float] = field(default_factory=dict)
    timers: dict[str, list[float]] = field(default_factory=dict)
    series: dict[str, list[Any]] = field(default_factory=dict)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timers.setdefault(name, []).append(time.perf_counter() - start)

    def record(self, name: str, value: Any) -> None:
        self.series.setdefault(name, []).append(value)

    def absorb(self, stats: Any, prefix: str | None = None) -> None:
        """Fold a stats object (``EngineStats``, ``PlatformStats``,
        ``CacheStats`` — anything with ``to_collector``) into the counters.

        The counters are cumulative, so absorb a given stats object into a
        collector at most once.
        """
        if prefix is None:
            stats.to_collector(self)
        else:
            stats.to_collector(self, prefix)

    def timer_total(self, name: str) -> float:
        return sum(self.timers.get(name, ()))

    def timer_mean(self, name: str) -> float:
        samples = self.timers.get(name, ())
        return sum(samples) / len(samples) if samples else 0.0

    def series_mean(self, name: str) -> float:
        values = [v for v in self.series.get(name, ()) if isinstance(v, (int, float))]
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = dict(self.counters)
        for name in self.timers:
            out[f"{name}_total_s"] = round(self.timer_total(name), 6)
            out[f"{name}_mean_s"] = round(self.timer_mean(name), 6)
        for name, values in self.series.items():
            out[f"{name}_n"] = len(values)
            mean = self.series_mean(name)
            if mean:
                out[f"{name}_mean"] = round(mean, 6)
        return out
