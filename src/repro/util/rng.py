"""Deterministic random-number helpers.

All stochastic behaviour in the library (simulated workers, randomized
assignment algorithms) flows through explicitly seeded generators so that
every experiment is exactly reproducible.  We standardise on
:class:`random.Random` for control flow and provide stable derived seeds so
that independent subsystems do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Return a stable 63-bit seed derived from ``base_seed`` and labels.

    The derivation uses SHA-256 over the repr of the inputs, so adding a new
    consumer with a fresh label never changes the streams of existing ones.

    >>> derive_seed(7, "population") == derive_seed(7, "population")
    True
    >>> derive_seed(7, "population") != derive_seed(7, "behavior")
    True
    """
    payload = repr((base_seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *labels))
