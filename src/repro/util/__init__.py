"""Small shared utilities: seeded RNG helpers, identifiers, text tools."""

from repro.util.ids import IdFactory
from repro.util.rng import derive_seed, make_rng
from repro.util.text import clamp, slugify, word_wrap

__all__ = [
    "IdFactory",
    "clamp",
    "derive_seed",
    "make_rng",
    "slugify",
    "word_wrap",
]
