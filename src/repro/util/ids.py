"""Monotonic, prefixed identifier generation.

Entities across the platform (workers, tasks, teams, projects, documents)
carry short human-readable ids such as ``w0042`` or ``task00107``.  Using a
factory per entity type keeps ids dense and deterministic, which matters for
reproducible experiment output.
"""

from __future__ import annotations

import itertools


class IdFactory:
    """Produce ids ``<prefix><counter>`` with zero-padded counters.

    >>> f = IdFactory("w", width=4)
    >>> f.next(), f.next()
    ('w0000', 'w0001')
    """

    def __init__(self, prefix: str, width: int = 5, start: int = 0) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.prefix = prefix
        self.width = width
        self._counter = itertools.count(start)

    def next(self) -> str:
        """Return the next identifier in the sequence."""
        return f"{self.prefix}{next(self._counter):0{self.width}d}"

    def peek_count(self) -> int:
        """Return how many ids have been handed out so far.

        Implemented by copying the underlying counter; the factory itself is
        not advanced.
        """
        self._counter, probe = itertools.tee(self._counter)
        return next(probe)
