"""Text helpers used by the form renderers and demo applications."""

from __future__ import annotations

import re

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Lower-case ``text`` and collapse non-alphanumerics to single dashes.

    >>> slugify("Citizen Journalism: Report #3")
    'citizen-journalism-report-3'
    """
    collapsed = _SLUG_RE.sub("-", text.lower())
    return collapsed.strip("-")


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    >>> clamp(1.4, 0.0, 1.0)
    1.0
    """
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def word_wrap(text: str, width: int = 72) -> list[str]:
    """Greedy word wrap returning the list of lines.

    Unlike :mod:`textwrap` this never splits words longer than ``width``;
    such words get a line of their own, which is the behaviour the plain-text
    page renderers want.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    lines: list[str] = []
    current: list[str] = []
    used = 0
    for word in text.split():
        needed = len(word) if not current else used + 1 + len(word)
        if current and needed > width:
            lines.append(" ".join(current))
            current, used = [word], len(word)
        else:
            current.append(word)
            used = needed
    if current:
        lines.append(" ".join(current))
    return lines
