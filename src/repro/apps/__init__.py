"""The three demonstration scenarios of §2.5, as library applications.

* :mod:`translation` — video subtitle generation and translation
  (sequential collaboration; workers improve each other's contributions),
* :mod:`journalism` — citizen journalism (simultaneous collaboration;
  workers write report sections in parallel),
* :mod:`surveillance` — surveillance tasks (hybrid collaboration;
  sequential fact collection with corrections + simultaneous
  testimonials).

Each module exposes ``build_*_project`` (wire the scenario into an
existing platform) and ``run_*_demo`` (a full seeded run on a simulated
crowd returning a metrics dict), which the examples and benches share.

Alongside the demos live the E15 *scenario packs* — delta-stream runs
that scale toward million-worker crowds on the explicit tick loop:

* :mod:`moderation` — streaming content moderation with revocation
  storms (bulk ``retract_facts`` cancelling in-flight tasks),
* :mod:`disaster` — disaster-mapping traffic surges replayed through
  the serving admission gate (counted backpressure),
* :mod:`multilingual` — per-language pipelines under worker churn, with
  ``revoke_answer`` demand resurrection.

Each exposes ``run_*_pack(n_workers, ticks, seed, delta=...)``; running
with ``delta=False`` replays the same traffic in snapshot mode, the
lockstep oracle the sim-diff CI job compares against.
"""

from repro.apps.disaster import build_disaster_project, run_disaster_pack
from repro.apps.journalism import build_journalism_project, run_journalism_demo
from repro.apps.moderation import build_moderation_project, run_moderation_pack
from repro.apps.multilingual import (
    build_multilingual_project,
    run_multilingual_pack,
)
from repro.apps.surveillance import (
    build_surveillance_project,
    run_surveillance_demo,
)
from repro.apps.translation import (
    build_translation_project,
    run_translation_demo,
)

__all__ = [
    "build_disaster_project",
    "build_journalism_project",
    "build_moderation_project",
    "build_multilingual_project",
    "build_surveillance_project",
    "build_translation_project",
    "run_disaster_pack",
    "run_journalism_demo",
    "run_moderation_pack",
    "run_multilingual_pack",
    "run_surveillance_demo",
    "run_translation_demo",
]
