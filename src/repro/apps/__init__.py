"""The three demonstration scenarios of §2.5, as library applications.

* :mod:`translation` — video subtitle generation and translation
  (sequential collaboration; workers improve each other's contributions),
* :mod:`journalism` — citizen journalism (simultaneous collaboration;
  workers write report sections in parallel),
* :mod:`surveillance` — surveillance tasks (hybrid collaboration;
  sequential fact collection with corrections + simultaneous
  testimonials).

Each module exposes ``build_*_project`` (wire the scenario into an
existing platform) and ``run_*_demo`` (a full seeded run on a simulated
crowd returning a metrics dict), which the examples and benches share.
"""

from repro.apps.journalism import build_journalism_project, run_journalism_demo
from repro.apps.surveillance import (
    build_surveillance_project,
    run_surveillance_demo,
)
from repro.apps.translation import (
    build_translation_project,
    run_translation_demo,
)

__all__ = [
    "build_journalism_project",
    "build_surveillance_project",
    "build_translation_project",
    "run_journalism_demo",
    "run_surveillance_demo",
    "run_translation_demo",
]
