"""Scenario pack E15a: streaming content moderation with revocation storms.

A stream of reported items flows into an ``incoming`` relation; every
item demands a ``moderate`` verdict (a true/false choice task).  The
adversarial part is the *revocation storm*: uploaders periodically delete
recent items in bulk (``retract_facts``), which kills the demand — the
platform's revocation listeners cancel the now-pointless pending tasks,
and the delta-stream driver must drop its wake state for them without a
full rescan.

The pack runs on the explicit :func:`~repro.apps.common.run_ticks` loop:
injection happens *between* platform rounds, exactly like live traffic
arriving between scheduler passes.
"""

from __future__ import annotations

import json

from repro.apps.common import (
    ScenarioResult,
    pack_behavior,
    pack_platform,
    run_ticks,
    timing_metrics,
)
from repro.core import Crowd4U, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.sim import SimulationDriver
from repro.util.rng import make_rng


def moderation_cylog(seed_items: list[str], skill_floor: float = 0.05) -> str:
    """``skill_floor`` bounds the per-task audience: at 10^5+ workers a
    permissive floor would make everyone eligible for everything, which
    floods the ledger identically in both driver modes — large-scale runs
    raise it so each task draws a few hundred qualified moderators."""
    lines = [
        "% streaming content moderation",
        "open moderate(item: text, verdict: bool) key (item) "
        'asking "Review reported item {item}" choices (true, false).',
    ]
    lines.extend(f"incoming({json.dumps(item)})." for item in seed_items)
    lines.extend(
        [
            "verdicts(I, V) :- incoming(I), moderate(I, V).",
            f'eligible(W) :- worker_skill(W, "observation", L), L >= {skill_floor}.',
            "n_reviewed(count<I>) :- verdicts(I, V).",
        ]
    )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    """Moderation is lightweight: one reviewer suffices, two at most."""
    return TeamConstraints(
        min_size=1,
        critical_mass=2,
        quality_threshold=0.0,
        confirmation_window=10.0,
    )


def build_moderation_project(
    platform: Crowd4U,
    seed_items: list[str],
    constraints: TeamConstraints | None = None,
    skill_floor: float = 0.05,
) -> Project:
    return platform.register_project(
        name="content-moderation",
        requester="trust-and-safety",
        cylog_source=moderation_cylog(seed_items, skill_floor),
        scheme=SchemeKind.SEQUENTIAL,
        constraints=constraints or default_constraints(),
    )


def run_moderation_pack(
    n_workers: int = 300,
    ticks: int = 60,
    seed: int = 0,
    delta: bool = True,
    items_per_tick: int = 4,
    storm_every: int = 12,
    storm_span: int = 6,
    revisit_period: float = 25.0,
    skill_floor: float = 0.05,
) -> ScenarioResult:
    """One seeded moderation run.

    Every ``storm_every`` ticks the items injected over the last
    ``storm_span`` ticks are retracted in one storm.  Injection draws
    only from ``(seed, tick)``-keyed rngs, so a delta and a snapshot run
    see byte-identical traffic.
    """
    platform = pack_platform(n_workers, seed)
    seed_items = [f"item-seed-{i:02d}" for i in range(items_per_tick)]
    project = build_moderation_project(platform, seed_items, skill_floor=skill_floor)
    processor = platform.processor(project.id)

    cancelled = [0]
    platform.events.subscribe(
        "task.cancelled", lambda event: cancelled.__setitem__(0, cancelled[0] + 1)
    )

    injected: list[list[str]] = []  # per-tick item batches, for storms
    retracted = [0]

    def inject(platform: Crowd4U, tick: int) -> None:
        rng = make_rng(seed, "moderation", tick)
        batch = [
            f"item-{tick:04d}-{i:02d}"
            for i in range(max(0, items_per_tick + rng.randint(-1, 1)))
        ]
        injected.append(batch)
        if batch:
            processor.add_facts("incoming", [(item,) for item in batch])
        if tick and tick % storm_every == 0:
            storm = [
                item
                for batch in injected[-storm_span:]
                for item in batch
            ]
            retracted[0] += processor.retract_facts(
                "incoming", [(item,) for item in storm]
            )

    driver = SimulationDriver(
        platform,
        behavior=pack_behavior(n_workers, seed),
        seed=seed,
        delta=delta,
        revisit_period=revisit_period,
    )
    run_ticks(driver, ticks, inject=inject)

    facts = {
        "items_injected": len(seed_items) + sum(len(b) for b in injected),
        "items_retracted": retracted[0],
        "reviewed": len(processor.facts("verdicts")),
        "tasks_cancelled": cancelled[0],
    }
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={"driver": driver, "timing": timing_metrics(driver)},
    )
