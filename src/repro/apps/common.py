"""Shared scenario plumbing.

Two tiers live here:

* the original demo helpers (:func:`build_crowd`, :func:`drive`) used by
  the §2.5 scenarios, and
* the *scenario-pack* helpers used by the E15 delta-stream packs, which
  scale toward 10^5–10^6 workers: population-independent behaviour knobs
  (:func:`pack_behavior`), bounded affinity (:func:`pack_platform`), an
  explicit tick loop with per-tick injection (:func:`run_ticks`) and
  wall-clock trajectory metrics (:func:`timing_metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import AffinityWeights, Crowd4U
from repro.sim import (
    BehaviorConfig,
    BehaviorModel,
    OutcomeModel,
    PopulationConfig,
    SimulationDriver,
    SimulationReport,
    TickTimer,
    populate,
)


@dataclass
class ScenarioResult:
    """Uniform result envelope every demo run returns."""

    platform: Crowd4U
    project_id: str
    report: SimulationReport
    facts: dict[str, int] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """Flat summary for tables/benches."""
        return {
            "steps": self.report.steps,
            "team_results": self.report.team_results,
            "micro_completed": self.report.micro_completed,
            "mean_quality": round(self.report.mean_quality, 4),
            "quiescent": self.report.quiescent,
            **self.facts,
        }


def build_crowd(
    n_workers: int,
    seed: int,
    config: PopulationConfig | None = None,
    affinity_weights: AffinityWeights | None = None,
) -> Crowd4U:
    """A fresh platform with a generated worker population."""
    platform = Crowd4U(seed=seed, affinity_weights=affinity_weights)
    populate(platform, n_workers, seed=seed, config=config)
    return platform


def drive(
    platform: Crowd4U,
    seed: int,
    answer_fn=None,
    max_steps: int = 300,
    delta: bool = True,
    behavior: BehaviorModel | None = None,
    revisit_period: float | None = None,
) -> SimulationDriver:
    """Run a standard simulation driver to quiescence.

    ``delta=False`` selects snapshot mode — the lockstep oracle the
    sim-diff CI job compares against.
    """
    driver = SimulationDriver(
        platform,
        behavior=behavior or BehaviorModel(seed=seed),
        outcome_model=OutcomeModel(seed=seed),
        answer_fn=answer_fn,
        seed=seed,
        delta=delta,
        revisit_period=revisit_period,
    )
    driver.run(max_steps=max_steps)
    return driver


# ---------------------------------------------------------------------------
# Scenario-pack plumbing (E15: delta-stream packs at large populations)
# ---------------------------------------------------------------------------

def pack_platform(
    n_workers: int,
    seed: int,
    config: PopulationConfig | None = None,
    max_neighbors: int | None = 8,
) -> Crowd4U:
    """A platform sized for large populations.

    Exact affinity registration is O(n²); the packs bound it to the most
    recent ``max_neighbors`` registrations (0 disables affinity edges
    entirely), which keeps registration linear at 10^5+ workers.
    """
    return build_crowd(
        n_workers,
        seed,
        config=config,
        affinity_weights=AffinityWeights(max_neighbors=max_neighbors),
    )


def pack_behavior(
    n_workers: int,
    seed: int,
    interested_per_task: float = 50.0,
    latency_skew: float = 1.3,
) -> BehaviorModel:
    """Behaviour knobs that scale with the crowd size.

    A constant *per-task audience* (not a constant per-worker rate) keeps
    team formation cost flat as the population grows: with 10^5 workers
    and ``interested_per_task=50`` each task still draws ~50 interested
    workers.  ``latency_skew`` gives the heavy-tailed responder mix real
    crowds show.
    """
    base = min(0.5, interested_per_task / max(n_workers, 1))
    return BehaviorModel(
        BehaviorConfig(
            base_interest=base,
            skill_interest_boost=base * 0.5,
            latency_skew=latency_skew,
        ),
        seed=seed,
    )


def run_ticks(
    driver: SimulationDriver,
    ticks: int,
    inject: Callable[[Crowd4U, int], None] | None = None,
    dt: float = 1.0,
) -> TickTimer:
    """Advance ``ticks`` rounds, calling ``inject(platform, tick)`` first.

    The injection hook is where packs stream facts, churn workers and
    replay serving traffic *between* rounds — the driver then reacts to
    whatever demand the platform derives.  Returns a timer over the
    driver's per-tick wall clock.
    """
    for tick in range(ticks):
        if inject is not None:
            inject(driver.platform, tick)
        driver.tick(dt)
    return TickTimer(driver.tick_seconds)


def timing_metrics(driver: SimulationDriver) -> dict[str, float]:
    """Trajectory metrics for one pack run.

    ``steady_tick_ms`` excludes revisit-boundary ticks (full interest
    scans, identical work in delta and snapshot modes); the headline
    delta-vs-snapshot speedup is the ratio of the two modes'
    ``steady_tick_ms``.
    """
    timer = TickTimer(driver.tick_seconds)
    boundaries = set(driver.boundary_ticks)
    steady = [
        s for i, s in enumerate(driver.tick_seconds) if i not in boundaries
    ]
    steady_ms = 1000.0 * sum(steady) / len(steady) if steady else 0.0
    return {
        "ticks": float(len(driver.tick_seconds)),
        "ticks_per_s": round(timer.ticks_per_second(), 3),
        "mean_tick_ms": round(timer.mean_ms(), 4),
        "p99_tick_ms": round(timer.p99_ms(), 4),
        "steady_tick_ms": round(steady_ms, 4),
    }
