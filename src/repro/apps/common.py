"""Shared scenario plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import Crowd4U
from repro.sim import (
    BehaviorModel,
    OutcomeModel,
    PopulationConfig,
    SimulationDriver,
    SimulationReport,
    populate,
)


@dataclass
class ScenarioResult:
    """Uniform result envelope every demo run returns."""

    platform: Crowd4U
    project_id: str
    report: SimulationReport
    facts: dict[str, int] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """Flat summary for tables/benches."""
        return {
            "steps": self.report.steps,
            "team_results": self.report.team_results,
            "micro_completed": self.report.micro_completed,
            "mean_quality": round(self.report.mean_quality, 4),
            "quiescent": self.report.quiescent,
            **self.facts,
        }


def build_crowd(
    n_workers: int, seed: int, config: PopulationConfig | None = None
) -> Crowd4U:
    """A fresh platform with a generated worker population."""
    platform = Crowd4U(seed=seed)
    populate(platform, n_workers, seed=seed, config=config)
    return platform


def drive(
    platform: Crowd4U,
    seed: int,
    answer_fn=None,
    max_steps: int = 300,
) -> SimulationDriver:
    """Run a standard simulation driver to quiescence."""
    driver = SimulationDriver(
        platform,
        behavior=BehaviorModel(seed=seed),
        outcome_model=OutcomeModel(seed=seed),
        answer_fn=answer_fn,
        seed=seed,
    )
    driver.run(max_steps=max_steps)
    return driver
