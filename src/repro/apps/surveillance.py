"""Demo scenario 3: surveillance tasks (§2.5).

"The goal of this task is to collect as much data about facts and
testimonials in different geographic regions and at different time
periods.  Under this scheme, some workers contribute to fact collection
in a sequence, correcting each others' observations, and others provide
testimonials separately and simultaneously."

A region × period grid of open-predicate tasks, each handled by a team
split by the *hybrid* scheme into a sequential "facts" stage (observe →
correct) and a simultaneous "testimonials" stage.  Same-region workers
have higher affinity ("if workers live in the same geographic area, their
affinity value is larger"), so teams naturally localise.
"""

from __future__ import annotations

import json

from repro.apps.common import ScenarioResult, build_crowd, drive
from repro.core import Crowd4U, SkillRequirement, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.core.tasks import Task, TaskKind

DEFAULT_REGIONS = ("tsukuba", "paris", "dallas")
DEFAULT_PERIODS = ("morning", "evening")

HYBRID_STAGES = [
    {"name": "facts", "scheme": "sequential", "fraction": 0.5},
    {"name": "testimonials", "scheme": "simultaneous", "fraction": 0.5},
]


def surveillance_cylog(regions: list[str], periods: list[str]) -> str:
    lines = [
        "% surveillance: facts + testimonials over a region/period grid",
        "open collect(region: text, period: text, dossier: text) "
        "key (region, period) asking "
        '"Collect facts and testimonials for {region} during {period}".',
    ]
    lines.extend(f"region({json.dumps(region)})." for region in regions)
    lines.extend(f"period({json.dumps(period)})." for period in periods)
    lines.extend(
        [
            "cell(R, P) :- region(R), period(P).",
            "dossier(R, P, D) :- cell(R, P), collect(R, P, D).",
            "covered(R) :- dossier(R, P, D).",
            "eligible(W) :- worker_region(W, R), region(R).",
            "n_cells(count<R>) :- dossier(R, P, D).",
        ]
    )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    return TeamConstraints(
        min_size=3,
        critical_mass=5,
        skills=(SkillRequirement("observation", 0.4, aggregator="max"),),
        quality_threshold=0.3,
        confirmation_window=30.0,
    )


def build_surveillance_project(
    platform: Crowd4U,
    regions: list[str] | None = None,
    periods: list[str] | None = None,
    constraints: TeamConstraints | None = None,
    assignment_algorithm: str = "greedy",
) -> Project:
    return platform.register_project(
        name="surveillance-grid",
        requester="watch-office",
        cylog_source=surveillance_cylog(
            list(regions or DEFAULT_REGIONS), list(periods or DEFAULT_PERIODS)
        ),
        scheme=SchemeKind.HYBRID,
        constraints=constraints or default_constraints(),
        assignment_algorithm=assignment_algorithm,
        options={"stages": HYBRID_STAGES},
    )


def surveillance_answer_fn(worker, task: Task):
    """Scenario answers: observations, corrections and testimonials."""
    if task.kind is TaskKind.DRAFT:
        return {"text": f"observation by {worker.id}: activity logged."}
    if task.kind is TaskKind.REVIEW:
        previous = task.payload.get("previous_text", "")
        return {"text": f"{previous} | corrected by {worker.id}"}
    if task.kind is TaskKind.JOINT:
        return {"text": f"testimonial from {worker.id} ({worker.factors.region})"}
    return None


def run_surveillance_demo(
    n_workers: int = 50,
    regions: list[str] | None = None,
    periods: list[str] | None = None,
    seed: int = 0,
    assignment_algorithm: str = "greedy",
    max_steps: int = 400,
) -> ScenarioResult:
    platform = build_crowd(n_workers, seed)
    project = build_surveillance_project(
        platform, regions, periods, assignment_algorithm=assignment_algorithm
    )
    driver = drive(platform, seed, answer_fn=surveillance_answer_fn,
                   max_steps=max_steps)
    processor = platform.processor(project.id)
    facts = {
        "cells": len(processor.facts("cell")),
        "dossiers": len(processor.facts("dossier")),
        "regions_covered": len(processor.facts("covered")),
    }
    # Region cohesion: fraction of finished teams whose members share a region.
    cohesive = 0
    finished = 0
    for team in platform.teams.all():
        if team.status.value != "finished":
            continue
        finished += 1
        member_regions = {
            platform.workers.get(m).factors.region for m in team.members
        }
        if len(member_regions) == 1:
            cohesive += 1
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={
            "region_cohesion": cohesive / finished if finished else 0.0,
            "teams_finished": finished,
        },
    )
