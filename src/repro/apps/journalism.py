"""Demo scenario 2: citizen journalism (§2.5).

"Workers are instructed to write a short report on a topic of their
choice (chosen from a list of available topics).  Here, workers can work
simultaneously, contributing to different parts of the same text."

One open predicate ``report`` keyed by topic; each topic's task runs
under the *simultaneous* scheme: the platform solicits members' SNS ids,
generates the joint task with the id list, members contribute to their
sections of the shared document in parallel, and one member submits for
the team (Figure 5).
"""

from __future__ import annotations

import json

from repro.apps.common import ScenarioResult, build_crowd, drive
from repro.core import Crowd4U, SkillRequirement, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.core.tasks import Task, TaskKind

DEFAULT_TOPICS = (
    "local flooding response",
    "city council election",
    "university open day",
    "new tram line opening",
)


def journalism_cylog(topics: list[str]) -> str:
    lines = [
        "% citizen journalism",
        "open report(topic: text, article: text) key (topic) "
        'asking "Write a short report on {topic}".',
    ]
    lines.extend(f"topic({json.dumps(topic)})." for topic in topics)
    lines.extend(
        [
            "published(T, A) :- topic(T), report(T, A).",
            'eligible(W) :- worker_skill(W, "reporting", L), L >= 0.15.',
            "n_published(count<T>) :- published(T, A).",
        ]
    )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    return TeamConstraints(
        min_size=2,
        critical_mass=4,
        skills=(SkillRequirement("reporting", 0.5, aggregator="max"),),
        quality_threshold=0.3,
        confirmation_window=30.0,
    )


def build_journalism_project(
    platform: Crowd4U,
    topics: list[str] | None = None,
    constraints: TeamConstraints | None = None,
    assignment_algorithm: str = "greedy",
) -> Project:
    return platform.register_project(
        name="citizen-journalism",
        requester="newsroom",
        cylog_source=journalism_cylog(list(topics or DEFAULT_TOPICS)),
        scheme=SchemeKind.SIMULTANEOUS,
        constraints=constraints or default_constraints(),
        assignment_algorithm=assignment_algorithm,
    )


def journalism_answer_fn(worker, task: Task):
    """Scenario answers: section text for joint tasks."""
    if task.kind is TaskKind.JOINT:
        topic = task.instruction.split(" on ", 1)[-1]
        return {"text": f"{worker.id} reports on {topic}: facts, quotes, context."}
    return None


def run_journalism_demo(
    n_workers: int = 40,
    topics: list[str] | None = None,
    seed: int = 0,
    assignment_algorithm: str = "greedy",
    max_steps: int = 300,
) -> ScenarioResult:
    platform = build_crowd(n_workers, seed)
    project = build_journalism_project(
        platform, topics, assignment_algorithm=assignment_algorithm
    )
    driver = drive(platform, seed, answer_fn=journalism_answer_fn,
                   max_steps=max_steps)
    processor = platform.processor(project.id)
    published = processor.facts("published")
    facts = {
        "topics": len(processor.facts("topic")),
        "published": len(published),
    }
    article_lengths = [len(article) for _, article in published]
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={
            "mean_article_length": (
                sum(article_lengths) / len(article_lengths)
                if article_lengths
                else 0.0
            ),
            "contributions": driver.report.contributions,
        },
    )
