"""Scenario pack E15c: multilingual pipelines under worker attrition.

A stream of content segments must be translated into several languages
at once; each target language is its own open predicate with its own
``eligible_<predicate>`` rule (only speakers qualify).  The crowd is a
living one: a :class:`~repro.sim.ChurnProcess` plays skewed arrival
bursts and departures every tick.  Departures bite twice — the departed
stop acting (:meth:`SimulationDriver.deactivate_worker`), and their most
recent accepted translation is withdrawn (``revoke_answer``), which
*resurrects* the demand: the platform re-emits the task and the delta
driver must pick it up from the change feed alone.
"""

from __future__ import annotations

import json

from repro.apps.common import (
    ScenarioResult,
    pack_behavior,
    pack_platform,
    run_ticks,
    timing_metrics,
)
from repro.core import Crowd4U, SkillRequirement, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.sim import (
    ChurnConfig,
    ChurnProcess,
    PopulationConfig,
    SimulationDriver,
    generate_factors,
)
from repro.util.rng import make_rng

DEFAULT_TARGETS = ("en", "ja", "fr")


def multilingual_cylog(
    targets: tuple[str, ...],
    seed_segments: list[str],
    skill_floor: float = 0.0,
) -> str:
    """``skill_floor > 0`` additionally requires translation skill, which
    bounds the per-task audience at large populations (a whole language
    community is far too many candidates per segment at 10^5+ workers)."""
    guard = (
        f', worker_skill(W, "translation", S), S >= {skill_floor}'
        if skill_floor > 0
        else ""
    )
    lines = ["% multilingual content pipeline"]
    for lang in targets:
        lines.append(
            f"open translate_{lang}(seg: text, out: text) key (seg) "
            f'asking "Translate segment {{seg}} into {lang}".'
        )
    lines.extend(f"segment({json.dumps(seg)})." for seg in seed_segments)
    for lang in targets:
        lines.append(f"done_{lang}(S, T) :- segment(S), translate_{lang}(S, T).")
        lines.append(
            f'eligible_translate_{lang}(W) :- worker_language(W, "{lang}", P), '
            f"P >= 0.05{guard}."
        )
        lines.append(
            f'eligible_translate_{lang}(W) :- worker_native(W, "{lang}"){guard}.'
        )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    return TeamConstraints(
        min_size=1,
        critical_mass=3,
        skills=(SkillRequirement("translation", 0.2, aggregator="max"),),
        quality_threshold=0.0,
        confirmation_window=10.0,
    )


def build_multilingual_project(
    platform: Crowd4U,
    seed_segments: list[str],
    targets: tuple[str, ...] = DEFAULT_TARGETS,
    constraints: TeamConstraints | None = None,
    skill_floor: float = 0.0,
) -> Project:
    return platform.register_project(
        name="multilingual-pipeline",
        requester="localisation-desk",
        cylog_source=multilingual_cylog(targets, seed_segments, skill_floor),
        scheme=SchemeKind.SEQUENTIAL,
        constraints=constraints or default_constraints(),
    )


def run_multilingual_pack(
    n_workers: int = 300,
    ticks: int = 60,
    seed: int = 0,
    delta: bool = True,
    segments_per_tick: int = 2,
    targets: tuple[str, ...] = DEFAULT_TARGETS,
    churn: ChurnConfig | None = None,
    language_skew: float = 0.8,
    revisit_period: float = 25.0,
    skill_floor: float = 0.0,
) -> ScenarioResult:
    """One seeded multilingual run with churn.

    Arrivals register brand-new generated workers mid-run; departures
    deactivate existing ones and revoke one of their language's answered
    segments, resurrecting its demand.  All churn and injection draws are
    keyed on ``(seed, tick)``, so delta and snapshot replays coincide.
    """
    population = PopulationConfig(
        languages=tuple(targets), language_skew=language_skew
    )
    platform = pack_platform(n_workers, seed, config=population)
    seed_segments = [f"seg-seed-{i:02d}" for i in range(segments_per_tick)]
    project = build_multilingual_project(
        platform, seed_segments, targets, skill_floor=skill_floor
    )
    processor = platform.processor(project.id)
    churn_process = ChurnProcess(
        seed, churn or ChurnConfig(arrival_rate=1.0, departure_rate=0.01)
    )

    generated = [0]
    platform.events.subscribe(
        "task.generated", lambda event: generated.__setitem__(0, generated[0] + 1)
    )

    driver = SimulationDriver(
        platform,
        behavior=pack_behavior(n_workers, seed),
        seed=seed,
        delta=delta,
        revisit_period=revisit_period,
    )

    next_index = [n_workers]
    next_segment = [len(seed_segments)]
    counters = {"arrived": 0, "departed": 0, "revoked": 0}

    def inject(platform: Crowd4U, tick: int) -> None:
        batch = [
            f"seg-{next_segment[0] + i:05d}" for i in range(segments_per_tick)
        ]
        next_segment[0] += len(batch)
        processor.add_facts("segment", [(seg,) for seg in batch])
        for _ in range(churn_process.arrivals(tick)):
            index = next_index[0]
            next_index[0] += 1
            platform.register_worker(
                f"worker{index:04d}", generate_factors(seed, index, population)
            )
            counters["arrived"] += 1
        active = sorted(
            set(w.id for w in platform.workers.all()) - driver.inactive_workers
        )
        departures = churn_process.departures(tick, active)
        for worker_id in departures:
            driver.deactivate_worker(worker_id)
        counters["departed"] += len(departures)
        if departures:
            # The departed take their latest contribution with them: one
            # answered segment per departure tick loses its translation
            # and its demand resurrects.
            rng = make_rng(seed, "multilingual", "revoke", tick)
            lang = rng.choice(sorted(targets))
            answered = sorted(processor.facts(f"done_{lang}"))
            if answered:
                segment = rng.choice(answered)[0]
                counters["revoked"] += processor.revoke_answer(
                    f"translate_{lang}", (segment,)
                )

    run_ticks(driver, ticks, inject=inject)

    facts = {
        "segments": len(processor.facts("segment")),
        **{
            f"done_{lang}": len(processor.facts(f"done_{lang}"))
            for lang in targets
        },
        "workers_arrived": counters["arrived"],
        "workers_departed": counters["departed"],
        "answers_revoked": counters["revoked"],
        "tasks_generated": generated[0],
    }
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={"driver": driver, "timing": timing_metrics(driver)},
    )
