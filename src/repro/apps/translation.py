"""Demo scenario 1: video subtitle generation and translation (§2.5).

"Workers are instructed to first transcribe speech into text in order to
generate subtitles in the original language.  Then, other workers are
asked to translate the resulting subtitles into the target language.  It
has been shown that for text translation, sequential coordination whereby
workers improve each others' contributions is the most effective scheme."

The CyLog program chains two open predicates: ``transcribe`` (keyed by
clip) feeds ``translate`` (keyed by the produced subtitle) — the second
predicate's task demand appears *dynamically* as transcriptions arrive.
Both run under the sequential collaboration scheme.
"""

from __future__ import annotations

import json

from repro.apps.common import ScenarioResult, build_crowd, drive
from repro.core import Crowd4U, SkillRequirement, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.core.tasks import Task, TaskKind


def translation_cylog(clips: list[str], target_language: str = "French") -> str:
    """Build the scenario's CyLog project description."""
    lines = [
        "% video subtitle generation and translation",
        "open transcribe(clip: text, subtitle: text) key (clip) "
        'asking "Transcribe the speech in video clip {clip}".',
        "open translate(seg: text, out: text) key (seg) "
        f'asking "Translate subtitle {{seg}} into {target_language}".',
    ]
    lines.extend(f"clip({json.dumps(clip)})." for clip in clips)
    lines.extend(
        [
            "subtitle(C, S) :- clip(C), transcribe(C, S).",
            "needs_translation(S) :- subtitle(C, S).",
            "translated(S, T) :- needs_translation(S), translate(S, T).",
            'eligible(W) :- worker_language(W, "en", P), P >= 0.1.',
            'eligible(W) :- worker_native(W, "en").',
            "n_done(count<S>) :- translated(S, T).",
        ]
    )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    return TeamConstraints(
        min_size=2,
        critical_mass=3,
        skills=(SkillRequirement("translation", 0.5, aggregator="max"),),
        quality_threshold=0.3,
        confirmation_window=30.0,
    )


def build_translation_project(
    platform: Crowd4U,
    clips: list[str],
    constraints: TeamConstraints | None = None,
    assignment_algorithm: str = "greedy",
    target_language: str = "French",
) -> Project:
    """Register the subtitle-translation project on ``platform``."""
    return platform.register_project(
        name="video-subtitle-translation",
        requester="demo-requester",
        cylog_source=translation_cylog(clips, target_language),
        scheme=SchemeKind.SEQUENTIAL,
        constraints=constraints or default_constraints(),
        assignment_algorithm=assignment_algorithm,
    )


def translation_answer_fn(worker, task: Task):
    """Scenario answers: plausible transcription / translation strings."""
    if task.kind not in (TaskKind.DRAFT, TaskKind.REVIEW):
        return None
    previous = str(task.payload.get("previous_text", ""))
    if previous:
        return {"text": f"{previous} (checked by {worker.id})"}
    instruction = task.instruction
    if "Transcribe" in instruction:
        clip = instruction.rsplit(" ", 1)[-1]
        return {"text": f"subtitle-of-{clip}"}
    return {"text": f"traduction<{instruction[-30:]}> par {worker.id}"}


def run_translation_demo(
    n_workers: int = 40,
    n_clips: int = 6,
    seed: int = 0,
    assignment_algorithm: str = "greedy",
    max_steps: int = 300,
) -> ScenarioResult:
    """Full seeded run of the scenario on a simulated crowd."""
    platform = build_crowd(n_workers, seed)
    clips = [f"clip{i:02d}" for i in range(n_clips)]
    project = build_translation_project(
        platform, clips, assignment_algorithm=assignment_algorithm
    )
    driver = drive(platform, seed, answer_fn=translation_answer_fn,
                   max_steps=max_steps)
    processor = platform.processor(project.id)
    facts = {
        "transcribed": len(processor.facts("subtitle")),
        "translated": len(processor.facts("translated")),
        "clips": len(clips),
    }
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={"skill_estimates": len(driver.skills.known_workers())},
    )
