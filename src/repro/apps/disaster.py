"""Scenario pack E15b: disaster-mapping traffic surges under backpressure.

After an event, a damage-assessment grid grows tick by tick as new cells
are reported, while *field reports* — crowd submissions answering cells
directly — arrive as write traffic through the serving admission path.
Surges are heavy-tailed: most ticks carry the base rate, a Zipf-weighted
few carry multiples of it (the flash-crowd minutes).  The pack replays
that traffic through :class:`~repro.serving.AdmissionGate` — the same
bounded queue + burst drain the HTTP server enforces — so overload shows
up as counted backpressure rejections instead of unbounded queues.
"""

from __future__ import annotations

import json

from repro.apps.common import (
    ScenarioResult,
    pack_behavior,
    pack_platform,
    run_ticks,
    timing_metrics,
)
from repro.core import Crowd4U, TeamConstraints
from repro.core.projects import Project, SchemeKind
from repro.serving import AdmissionGate, ServingConfig, WriteOp
from repro.sim import SimulationDriver, zipf_weights
from repro.util.rng import make_rng


def disaster_cylog(seed_cells: list[str], skill_floor: float = 0.05) -> str:
    """``skill_floor`` bounds the per-cell audience at large populations
    (see :func:`repro.apps.moderation.moderation_cylog`)."""
    lines = [
        "% disaster mapping: damage assessment over a growing grid",
        "open assess(cell: text, status: text) key (cell) "
        'asking "Assess damage in grid cell {cell}".',
    ]
    lines.extend(f"cell({json.dumps(cell)})." for cell in seed_cells)
    lines.extend(
        [
            "damage(C, S) :- cell(C), assess(C, S).",
            f'eligible(W) :- worker_skill(W, "observation", L), L >= {skill_floor}.',
            "n_assessed(count<C>) :- damage(C, S).",
        ]
    )
    return "\n".join(lines) + "\n"


def default_constraints() -> TeamConstraints:
    return TeamConstraints(
        min_size=1,
        critical_mass=3,
        quality_threshold=0.0,
        confirmation_window=10.0,
    )


def build_disaster_project(
    platform: Crowd4U,
    seed_cells: list[str],
    constraints: TeamConstraints | None = None,
    skill_floor: float = 0.05,
) -> Project:
    return platform.register_project(
        name="disaster-mapping",
        requester="crisis-desk",
        cylog_source=disaster_cylog(seed_cells, skill_floor),
        scheme=SchemeKind.SEQUENTIAL,
        constraints=constraints or default_constraints(),
    )


def run_disaster_pack(
    n_workers: int = 300,
    ticks: int = 60,
    seed: int = 0,
    delta: bool = True,
    cells_per_tick: int = 3,
    reports_per_tick: int = 6,
    surge_skew: float = 1.1,
    surge_levels: int = 8,
    serving: ServingConfig | None = None,
    revisit_period: float = 25.0,
    skill_floor: float = 0.05,
) -> ScenarioResult:
    """One seeded disaster-mapping run.

    Each tick draws a Zipf-weighted surge multiplier; that many base
    units of traffic (new cells + field-report write ops) arrive.  Field
    reports go through the admission gate; whatever the queue bound
    rejects is the tick's backpressure.  All draws are keyed on
    ``(seed, tick)`` so delta and snapshot runs replay identical traffic.
    """
    platform = pack_platform(n_workers, seed)
    seed_cells = [f"cell-seed-{i:02d}" for i in range(cells_per_tick)]
    project = build_disaster_project(platform, seed_cells, skill_floor=skill_floor)
    processor = platform.processor(project.id)
    # A deliberately tight queue: surges must visibly push back.
    gate = AdmissionGate(
        serving
        or ServingConfig(
            max_batch=reports_per_tick * 2, queue_depth=reports_per_tick * 4
        )
    )

    levels = list(range(1, surge_levels + 1))
    weights = zipf_weights(len(levels), surge_skew)
    next_cell = [len(seed_cells)]
    known_cells: list[str] = list(seed_cells)

    def inject(platform: Crowd4U, tick: int) -> None:
        rng = make_rng(seed, "disaster", tick)
        surge = rng.choices(levels, weights=weights)[0]
        fresh = [
            f"cell-{next_cell[0] + i:05d}" for i in range(cells_per_tick * surge)
        ]
        next_cell[0] += len(fresh)
        known_cells.extend(fresh)
        processor.add_facts("cell", [(cell,) for cell in fresh])
        ops = [
            WriteOp(
                "supply_answer",
                {
                    "project_id": project.id,
                    "predicate": "assess",
                    "key_values": {"cell": rng.choice(known_cells)},
                    "fill_values": {
                        "status": rng.choice(
                            ("intact", "minor", "major", "destroyed")
                        )
                    },
                },
            )
            for _ in range(reports_per_tick * surge)
        ]
        gate.offer(ops)
        gate.drain(platform)

    driver = SimulationDriver(
        platform,
        behavior=pack_behavior(n_workers, seed),
        seed=seed,
        delta=delta,
        revisit_period=revisit_period,
    )
    run_ticks(driver, ticks, inject=inject)

    facts = {
        "cells": len(processor.facts("cell")),
        "assessed": len(processor.facts("damage")),
        "reports_admitted": gate.admitted,
        "reports_rejected": gate.rejected,
    }
    return ScenarioResult(
        platform=platform,
        project_id=project.id,
        report=driver.report,
        facts=facts,
        extras={
            "driver": driver,
            "timing": timing_metrics(driver),
            "queue_depth_final": gate.depth,
        },
    )
