"""A synchronous admission gate: the server's backpressure, sans sockets.

Scenario packs and benches replay traffic surges against the very same
admission semantics :class:`~repro.serving.server.PlatformServer`
enforces — a bounded queue (``queue_depth``) drained in bursts of at most
``max_batch`` per tick through :func:`~repro.serving.ops.apply_ops` —
without standing up an asyncio server.  Offers beyond the queue bound are
rejected, exactly as the HTTP surface answers ``429 Retry-After``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.serving.config import ServingConfig
from repro.serving.ops import OpOutcome, WriteOp, apply_ops

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Bounded write admission with per-tick burst draining."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()
        self.queue: deque[WriteOp] = deque()
        self.admitted = 0
        self.rejected = 0
        self.applied = 0

    def offer(self, ops: Iterable[WriteOp]) -> int:
        """Queue what fits; count the overflow.  Returns #rejected."""
        rejected = 0
        for op in ops:
            if len(self.queue) >= self.config.queue_depth:
                rejected += 1
            else:
                self.queue.append(op)
                self.admitted += 1
        self.rejected += rejected
        return rejected

    def drain(self, platform) -> list[OpOutcome]:
        """Apply one burst (up to ``max_batch`` queued ops) to ``platform``."""
        burst_size = min(len(self.queue), self.config.max_batch)
        if not burst_size:
            return []
        burst = [self.queue.popleft() for _ in range(burst_size)]
        outcomes = apply_ops(platform, burst)
        self.applied += burst_size
        return outcomes

    @property
    def depth(self) -> int:
        return len(self.queue)
