"""The asyncio serving front-end: cache-fed reads, queue-coalesced writes.

:class:`PlatformServer` is the platform's first network surface.  Its
design isolates request handling from engine ticks (the HTAP lesson —
the serving path and the derivation path contend for the same data, so
they must not interleave per-request):

* **Reads never touch the engine.**  Worker pages and task UIs render
  from the version-keyed storage query cache; between platform
  mutations, thousands of concurrent GETs cost dict lookups.
* **Writes are admitted, not applied.**  Every POST decodes into a
  :class:`~repro.serving.ops.WriteOp` and enters a bounded admission
  queue; the request's response future resolves when the drainer has
  applied its operation.
* **One drainer coalesces.**  A single background task collects queued
  writes for :attr:`~repro.serving.config.ServingConfig.batch_window`
  seconds and applies the burst through
  :func:`~repro.serving.ops.apply_ops` — one engine continuation per
  project per tick, not per request.
* **Backpressure is explicit.**  When the queue is at
  ``queue_depth`` or has been continuously non-empty for longer than
  ``max_round_lag``, new writes get ``429`` with a ``Retry-After``
  header instead of unbounded queueing.

Lifecycle is explicit: :meth:`start` binds and spawns the drainer,
:meth:`drain` stops admission and flushes the queue, :meth:`close`
releases the socket; ``async with`` does start/drain/close.  Construct
through :meth:`repro.config.RuntimeConfig.build_server` — serving knobs
live in the composed :class:`~repro.serving.config.ServingConfig`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.serving.config import ServingConfig
from repro.serving.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    encode_response,
    read_request,
)
from repro.serving.ops import WriteOp, apply_ops
from repro.serving.stats import ServingStats

__all__ = ["PlatformServer", "ServerClosed"]


class ServerClosed(RuntimeError):
    """The server shut down while a write waited in the admission queue."""


class PlatformServer:
    """One HTTP front-end over one :class:`repro.core.Crowd4U` platform.

    ``record_journal=True`` keeps an admission journal — ``(tick,
    WriteOp)`` in applied order — that the serving-diff oracle replays
    through :func:`~repro.serving.ops.apply_ops` against a fresh
    platform to prove the network surface is semantics-preserving.
    """

    def __init__(
        self,
        platform,
        config: ServingConfig | None = None,
        *,
        record_journal: bool = False,
    ) -> None:
        self.platform = platform
        self.config = config or ServingConfig()
        self.stats = ServingStats()
        self.record_journal = record_journal
        #: (tick, op) admission journal in applied order.
        self.journal: list[tuple[int, WriteOp]] = []
        self._state = "new"
        self._server: asyncio.AbstractServer | None = None
        self._drainer: asyncio.Task | None = None
        self._queue: asyncio.Queue[tuple[WriteOp, asyncio.Future]] | None = None
        #: Monotonic time the queue last became non-empty (None = empty).
        self._backlog_since: float | None = None
        self._tick = 0
        self._in_tick = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — meaningful after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def state(self) -> str:
        """``new`` → ``serving`` → ``draining`` → ``closed``."""
        return self._state

    async def start(self) -> "PlatformServer":
        """Bind the socket and spawn the drainer; idempotent errors out."""
        if self._state != "new":
            raise RuntimeError(f"cannot start a {self._state} server")
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._drainer = asyncio.create_task(self._drain_loop())
        self._state = "serving"
        return self

    async def drain(self) -> None:
        """Stop admitting writes and apply everything already queued."""
        if self._state in ("new", "closed"):
            return
        self._state = "draining"
        assert self._queue is not None
        while self._queue.qsize() or self._in_tick:
            await asyncio.sleep(self.config.batch_window or 0.001)

    async def close(self) -> None:
        """Release the socket and stop the drainer (unapplied writes get
        :class:`ServerClosed`); safe to call twice."""
        if self._state == "closed":
            return
        self._state = "closed"
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._drainer is not None:
            self._drainer.cancel()
            try:
                await self._drainer
            except asyncio.CancelledError:
                pass
        if self._queue is not None:
            while self._queue.qsize():
                _, future = self._queue.get_nowait()
                if not future.done():
                    future.set_exception(ServerClosed("server closed"))

    async def __aenter__(self) -> "PlatformServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.drain()
        await self.close()

    # ------------------------------------------------------------------
    # Admission + drain loop
    # ------------------------------------------------------------------
    def _admit(self, op: WriteOp) -> "asyncio.Future | HttpResponse":
        """Queue one write; a :class:`HttpResponse` means rejection."""
        if self._state != "serving" or self._queue is None:
            self.stats.rejected_closed += 1
            return HttpResponse.error(503, f"server is {self._state}")
        now = time.monotonic()
        retry = {"Retry-After": str(self.config.retry_after)}
        if self._queue.qsize() >= self.config.queue_depth:
            self.stats.rejected_depth += 1
            return HttpResponse.error(429, "admission queue full", headers=retry)
        if (
            self._backlog_since is not None
            and now - self._backlog_since > self.config.max_round_lag
        ):
            self.stats.rejected_lag += 1
            return HttpResponse.error(
                429, "platform rounds are falling behind", headers=retry
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if self._backlog_since is None:
            self._backlog_since = now
        self._queue.put_nowait((op, future))
        self.stats.admitted += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self._queue.qsize()
        )
        return future

    async def _drain_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            window = self.config.batch_window
            if window > 0:
                deadline = loop.time() + window
                while len(batch) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            else:
                while (
                    len(batch) < self.config.max_batch and self._queue.qsize()
                ):
                    batch.append(self._queue.get_nowait())
            self._apply_batch(batch)
            if not self._queue.qsize():
                self._backlog_since = None

    def _apply_batch(
        self, batch: list[tuple[WriteOp, asyncio.Future]]
    ) -> None:
        """One tick: apply the burst synchronously (the event loop blocks,
        so reads and the engine never interleave mid-operation), then
        resolve every waiter."""
        self._in_tick = True
        self._tick += 1
        started = time.perf_counter()
        ops = [op for op, _ in batch]
        try:
            outcomes = apply_ops(self.platform, ops)
        except Exception as exc:  # noqa: BLE001 - engine failure fails the batch
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            self.stats.record_tick(len(batch), time.perf_counter() - started)
            self._in_tick = False
            return
        self.stats.record_tick(len(batch), time.perf_counter() - started)
        if self.record_journal:
            self.journal.extend((self._tick, op) for op in ops)
        for (_, future), outcome in zip(batch, outcomes):
            if outcome.ok:
                body = {"ok": True, "result": outcome.value, "tick": self._tick}
                response = HttpResponse.json(body)
            else:
                self.stats.op_errors += 1
                response = HttpResponse.json(
                    {"ok": False, "error": outcome.error, "tick": self._tick},
                    status=outcome.status,
                )
            if not future.done():
                future.set_result(response)
        self._in_tick = False

    # ------------------------------------------------------------------
    # Connection handling + routing
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            HttpResponse.error(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive and self._state == "serving"
                writer.write(encode_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        try:
            segments = [s for s in request.path.split("/") if s]
            if request.method == "GET":
                return self._dispatch_read(request, segments)
            if request.method == "POST":
                op = self._decode_write(request, segments)
                if op is None:
                    return HttpResponse.error(
                        404, f"no such endpoint POST {request.path}"
                    )
                admitted = self._admit(op)
                if isinstance(admitted, HttpResponse):
                    return admitted
                try:
                    return await admitted
                except ServerClosed:
                    return HttpResponse.error(503, "server closed while queued")
            return HttpResponse.error(405, f"unsupported method {request.method}")
        except HttpError as exc:
            return HttpResponse.error(exc.status, exc.message)
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the loop
            return HttpResponse.error(500, f"{type(exc).__name__}: {exc}")

    def _dispatch_read(
        self, request: HttpRequest, segments: list[str]
    ) -> HttpResponse:
        from repro.errors import PlatformError

        self.stats.reads += 1
        try:
            if segments == ["healthz"]:
                backlog = self._queue.qsize() if self._queue is not None else 0
                return HttpResponse.json(
                    {
                        "status": self._state,
                        "queue_depth": backlog,
                        "tick": self._tick,
                    }
                )
            if segments == ["stats"]:
                return HttpResponse.json(
                    {
                        "serving": self.stats.as_dict(),
                        "read_cache": self.stats.read_cache.as_dict(),
                        **self.platform.stats_summary(),
                    }
                )
            if segments == ["snapshot"]:
                return HttpResponse.json(self.platform.snapshot())
            if (
                len(segments) == 3
                and segments[0] == "workers"
                and segments[2] == "page"
            ):
                from repro.forms.worker_page import render_worker_page

                return HttpResponse.html(
                    render_worker_page(
                        self.platform,
                        segments[1],
                        cache_stats=self.stats.read_cache,
                    )
                )
            if len(segments) == 3 and segments[0] == "tasks" and segments[2] == "ui":
                from repro.forms.task_ui import render_task_ui

                worker_id = request.query.get("worker")
                if not worker_id:
                    return HttpResponse.error(400, "missing ?worker= parameter")
                return HttpResponse.html(
                    render_task_ui(self.platform, segments[1], worker_id)
                )
        except PlatformError as exc:
            return HttpResponse.error(
                404 if "unknown" in str(exc) else 409, str(exc)
            )
        return HttpResponse.error(404, f"no such endpoint GET {request.path}")

    def _decode_write(
        self, request: HttpRequest, segments: list[str]
    ) -> WriteOp | None:
        """Map ``POST path + body`` to a :class:`WriteOp` (None = 404)."""
        payload = request.payload()
        if segments == ["workers"]:
            return WriteOp("register_worker", payload)
        if len(segments) == 3 and segments[0] == "workers" and segments[2] == "factors":
            return WriteOp(
                "update_factors",
                {"worker_id": segments[1], "fields": payload},
            )
        if len(segments) == 3 and segments[0] == "tasks":
            task_id, action = segments[1], segments[2]
            task_actions = {
                "interest": "declare_interest",
                "confirm": "confirm_membership",
                "decline": "decline_membership",
            }
            if action in task_actions:
                worker_id = payload.get("worker_id")
                if not worker_id:
                    raise HttpError(400, "missing worker_id")
                return WriteOp(
                    task_actions[action],
                    {"worker_id": worker_id, "task_id": task_id},
                )
            if action == "submit":
                worker_id = payload.pop("worker_id", None)
                if not worker_id:
                    raise HttpError(400, "missing worker_id")
                result = payload.pop("result", None)
                if result is None:
                    result = payload  # bare form fields are the result
                return WriteOp(
                    "submit_result",
                    {"task_id": task_id, "worker_id": worker_id, "result": result},
                )
            if action == "contribute":
                worker_id = payload.get("worker_id")
                if not worker_id:
                    raise HttpError(400, "missing worker_id")
                return WriteOp(
                    "contribute",
                    {
                        "task_id": task_id,
                        "worker_id": worker_id,
                        "content": payload.get("content", ""),
                    },
                )
        if len(segments) == 3 and segments[0] == "projects":
            project_id, action = segments[1], segments[2]
            if action == "answers":
                return WriteOp(
                    "supply_answer", {"project_id": project_id, **payload}
                )
            if action == "tasks":
                return WriteOp("post_task", {"project_id": project_id, **payload})
        if segments == ["step"]:
            return WriteOp("step", payload)
        return None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats_sections(self) -> dict[str, dict[str, Any]]:
        """Serving + platform counter sections for
        :func:`repro.metrics.format_stats_table`."""
        return {**self.stats.sections(), **self.platform.stats_summary()}

    def collect_stats(self, collector) -> None:
        """Feed serving and platform counters into a
        :class:`repro.metrics.Collector` (call once per collector)."""
        self.stats.to_collector(collector)
        self.platform.collect_stats(collector)
