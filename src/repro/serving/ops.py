"""The serving write vocabulary and its burst-coalesced apply.

Every state-changing HTTP endpoint decodes into one :class:`WriteOp` — a
plain (kind, JSON payload) record — and :func:`apply_ops` is the *only*
code that turns admitted operations into platform mutations.  The
server's drainer calls it once per tick, and the serving-diff oracle
replays a server's admission journal through the very same function, so
"what the HTTP surface did" and "what the library would have done" are
the same code path by construction; the oracle then checks the states
are byte-identical.

Coalescing: consecutive non-barrier operations apply inside
:meth:`repro.core.Crowd4U.batch_writes` — every project processor in
batch mode — so a burst of submissions costs one engine continuation per
project instead of one per request.  ``step`` is a *barrier*: it must
observe the world exactly as a direct ``platform.step()`` call would, so
the surrounding burst is flushed before it runs.

Per-operation failures (unknown ids, invalid forms) are captured as
:class:`OpOutcome` errors — the rest of the burst proceeds, mirroring a
sequence of direct library calls where one raises and the caller moves
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.human_factors import HumanFactors
from repro.errors import FormError, PlatformError

__all__ = ["BARRIER_KINDS", "OP_KINDS", "OpOutcome", "WriteOp", "apply_ops"]

#: Operation kinds whose apply must not sit inside a write burst.
BARRIER_KINDS = frozenset({"step"})


@dataclass(frozen=True)
class WriteOp:
    """One admitted write: an operation kind plus its JSON payload."""

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown write op kind {self.kind!r}; expected one of "
                f"{sorted(OP_KINDS)}"
            )
        object.__setattr__(self, "payload", dict(self.payload))

    def as_record(self) -> dict[str, Any]:
        """JSON-serializable journal record."""
        return {"kind": self.kind, "payload": self.payload}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "WriteOp":
        return cls(kind=record["kind"], payload=dict(record["payload"]))


@dataclass
class OpOutcome:
    """What applying one :class:`WriteOp` produced."""

    ok: bool
    value: Any = None
    status: int = 200
    error: str | None = None

    def as_response_value(self) -> dict[str, Any]:
        if self.ok:
            return {"ok": True, "result": self.value}
        return {"ok": False, "error": self.error}


def factors_from_payload(payload: Mapping[str, Any]) -> HumanFactors:
    """Build :class:`HumanFactors` from a JSON object (validated there)."""
    data = dict(payload)
    if "native_languages" in data:
        data["native_languages"] = frozenset(data["native_languages"])
    if data.get("coordinates") is not None:
        coords = data["coordinates"]
        data["coordinates"] = (float(coords[0]), float(coords[1]))
    try:
        return HumanFactors(**data)
    except TypeError as exc:
        raise FormError(f"invalid factors payload: {exc}") from None


def _require(payload: Mapping[str, Any], *keys: str) -> list[Any]:
    values = []
    for key in keys:
        if key not in payload:
            raise FormError(f"missing required field {key!r}")
        values.append(payload[key])
    return values


def _op_register_worker(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    (name,) = _require(payload, "name")
    factors = factors_from_payload(payload.get("factors") or {})
    worker = platform.register_worker(str(name), factors)
    return {"worker_id": worker.id}


def _op_update_factors(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    from repro.forms.worker_page import parse_factors_form

    worker_id, fields = _require(payload, "worker_id", "fields")
    base = platform.workers.get(worker_id).factors
    platform.update_worker_factors(worker_id, parse_factors_form(dict(fields), base))
    return {"worker_id": worker_id}


def _op_declare_interest(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    worker_id, task_id = _require(payload, "worker_id", "task_id")
    platform.declare_interest(worker_id, task_id)
    return {"worker_id": worker_id, "task_id": task_id}


def _op_confirm(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    worker_id, task_id = _require(payload, "worker_id", "task_id")
    platform.confirm_membership(worker_id, task_id)
    return {"worker_id": worker_id, "task_id": task_id}


def _op_decline(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    worker_id, task_id = _require(payload, "worker_id", "task_id")
    platform.decline_membership(worker_id, task_id)
    return {"worker_id": worker_id, "task_id": task_id}


def _op_submit_result(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    task_id, worker_id, result = _require(payload, "task_id", "worker_id", "result")
    if not isinstance(result, Mapping):
        raise FormError("result must be a JSON object")
    platform.submit_micro_result(task_id, worker_id, dict(result))
    return {"task_id": task_id}


def _op_contribute(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    task_id, worker_id, content = _require(
        payload, "task_id", "worker_id", "content"
    )
    platform.contribute(task_id, worker_id, str(content))
    return {"task_id": task_id}


def _op_supply_answer(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    project_id, predicate, key_values, fill_values = _require(
        payload, "project_id", "predicate", "key_values", "fill_values"
    )
    if not isinstance(key_values, Mapping) or not isinstance(fill_values, Mapping):
        raise FormError("key_values and fill_values must be JSON objects")
    fact = platform.processor(project_id).supply_fact(
        predicate, dict(key_values), dict(fill_values)
    )
    return {"predicate": predicate, "fact": list(fact)}


def _op_post_task(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    project_id, instruction = _require(payload, "project_id", "instruction")
    task = platform.post_task(project_id, str(instruction))
    return {"task_id": task.id}


def _op_step(platform, payload: Mapping[str, Any]) -> dict[str, Any]:
    counts = platform.step(dt=float(payload.get("dt", 1.0)))
    return dict(counts)


_APPLY = {
    "register_worker": _op_register_worker,
    "update_factors": _op_update_factors,
    "declare_interest": _op_declare_interest,
    "confirm_membership": _op_confirm,
    "decline_membership": _op_decline,
    "submit_result": _op_submit_result,
    "contribute": _op_contribute,
    "supply_answer": _op_supply_answer,
    "post_task": _op_post_task,
    "step": _op_step,
}

OP_KINDS = frozenset(_APPLY)


def _status_for(exc: Exception) -> int:
    if isinstance(exc, FormError) or isinstance(exc, (KeyError, ValueError)):
        return 400
    if isinstance(exc, PlatformError) and "unknown" in str(exc):
        return 404
    return 409


def _apply_one(platform, op: WriteOp) -> OpOutcome:
    try:
        value = _APPLY[op.kind](platform, op.payload)
    except Exception as exc:  # noqa: BLE001 - one bad op must not kill the burst
        return OpOutcome(
            ok=False,
            status=_status_for(exc),
            error=f"{type(exc).__name__}: {exc}",
        )
    return OpOutcome(ok=True, value=value)


def apply_ops(platform, ops: Iterable[WriteOp]) -> list[OpOutcome]:
    """Apply ``ops`` in order, coalescing runs between barriers into one
    write burst each; returns one :class:`OpOutcome` per operation."""
    pending = list(ops)
    outcomes: list[OpOutcome] = []
    index = 0
    while index < len(pending):
        if pending[index].kind in BARRIER_KINDS:
            outcomes.append(_apply_one(platform, pending[index]))
            index += 1
            continue
        end = index
        while end < len(pending) and pending[end].kind not in BARRIER_KINDS:
            end += 1
        with platform.batch_writes():
            for op in pending[index:end]:
                outcomes.append(_apply_one(platform, op))
        index = end
    return outcomes
