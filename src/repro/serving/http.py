"""A minimal, dependency-free HTTP/1.1 layer over asyncio streams.

Just enough protocol for the serving front-end: request-line + headers +
``Content-Length`` bodies in, status + headers + body out, persistent
connections by default (``Connection: close`` honoured both ways).  No
chunked transfer, no TLS, no compression — requests asking for them get
a clean 4xx/5xx instead of undefined behaviour.  Limits are enforced
*before* any platform state is touched: an oversized header block is 431
and an oversized body 413.

:func:`http_request` is the matching one-shot client used by the tests,
the serving bench and the example driver.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "encode_response",
    "http_request",
    "read_request",
]

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol violation that maps to one error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON (400 on malformed input)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None

    def form(self) -> dict[str, str]:
        """The body parsed as ``application/x-www-form-urlencoded``."""
        try:
            text = self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HttpError(400, f"malformed form body: {exc}") from None
        return dict(parse_qsl(text, keep_blank_values=True))

    def payload(self) -> dict[str, Any]:
        """JSON object or urlencoded form, by content type; must be a
        mapping (the write handlers' uniform input)."""
        ctype = self.headers.get("content-type", "").split(";")[0].strip()
        if ctype == "application/x-www-form-urlencoded":
            return self.form()
        value = self.json()
        if not isinstance(value, Mapping):
            raise HttpError(400, "request body must be a JSON object")
        return dict(value)


@dataclass
class HttpResponse:
    """One response to serialize."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(
        cls, value: Any, status: int = 200, headers: dict[str, str] | None = None
    ) -> "HttpResponse":
        body = json.dumps(value, sort_keys=True).encode("utf-8")
        out = dict(headers or {})
        out.setdefault("Content-Type", "application/json; charset=utf-8")
        return cls(status=status, headers=out, body=body)

    @classmethod
    def html(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            headers={"Content-Type": "text/html; charset=utf-8"},
            body=text.encode("utf-8"),
        )

    @classmethod
    def error(
        cls, status: int, message: str, headers: dict[str, str] | None = None
    ) -> "HttpResponse":
        return cls.json({"ok": False, "error": message}, status=status,
                        headers=headers)

    def parsed_json(self) -> Any:
        """Decode the body as JSON (client-side convenience)."""
        return json.loads(self.body.decode("utf-8")) if self.body else None


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = 32768,
    max_body_bytes: int = 1 << 20,
) -> HttpRequest | None:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on protocol violations (the caller answers
    with the error's status and closes the connection).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large") from None
    if len(head) > max_header_bytes:
        raise HttpError(431, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(501, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(501, "transfer-encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad content-length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad content-length {length_text!r}")
        if length > max_body_bytes:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    elif method in ("POST", "PUT", "PATCH"):
        # No body is fine; a body without a length is not.
        pass
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def encode_response(response: HttpResponse, *, keep_alive: bool = True) -> bytes:
    """Serialize ``response`` with Content-Length and Connection headers."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers["Content-Length"] = str(len(response.body))
    headers.setdefault("Connection", "keep-alive" if keep_alive else "close")
    for name, value in headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response off ``reader`` (the client half)."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return HttpResponse(status=status, headers=headers, body=body)


class HttpClient:
    """A persistent keep-alive connection issuing sequential requests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "HttpClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Any = None,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        out = {"Host": f"{self.host}:{self.port}"}
        if headers:
            out.update(headers)
        payload = body or b""
        if json_body is not None:
            payload = json.dumps(json_body, sort_keys=True).encode("utf-8")
            out.setdefault("Content-Type", "application/json; charset=utf-8")
        if payload or method in ("POST", "PUT", "PATCH"):
            out["Content-Length"] = str(len(payload))
        head = [f"{method} {path} HTTP/1.1"]
        head.extend(f"{name}: {value}" for name, value in out.items())
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        await self._writer.drain()
        return await read_response(self._reader)


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    json_body: Any = None,
    body: bytes | None = None,
    headers: Mapping[str, str] | None = None,
) -> HttpResponse:
    """One-shot request on a fresh connection (closed afterwards)."""
    async with HttpClient(host, port) as client:
        return await client.request(
            method, path, json_body=json_body, body=body, headers=headers
        )
