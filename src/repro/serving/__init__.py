"""repro.serving — the async HTTP front-end with admission batching.

The platform's first public network surface, designed rather than
accreted:

* :class:`ServingConfig` — frozen serving knobs (bind address, batch
  window, queue depth, lag thresholds), composed into
  :class:`repro.config.RuntimeConfig` as ``serving=``;
  ``RuntimeConfig.build_server()`` is the one way to get a server.
* :class:`PlatformServer` — asyncio HTTP/1.1 server with explicit
  lifecycle (``start`` / ``drain`` / ``close``, async context manager):
  reads render from the version-keyed query cache, writes funnel through
  a bounded admission queue that one drainer coalesces into engine
  bursts, with ``429 Retry-After`` backpressure.
* :class:`ServingStats` — admitted/coalesced/rejected counters, queue
  depth and tick latency, folded into
  :func:`repro.metrics.format_stats_table`.
* :class:`WriteOp` / :func:`apply_ops` — the write vocabulary shared by
  the server's drainer and the serving-diff oracle's direct replay.
* :class:`AdmissionGate` — the same bounded-queue backpressure as the
  server, synchronously, for scenario packs replaying traffic surges.
* :func:`http_request` — the minimal matching client (tests, benches,
  examples).

Heavy submodules load lazily (PEP 562): importing :mod:`repro.serving`
for its config does not pull in the platform stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.serving.config import ServingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.gate import AdmissionGate
    from repro.serving.http import http_request
    from repro.serving.ops import OpOutcome, WriteOp, apply_ops
    from repro.serving.server import PlatformServer, ServerClosed
    from repro.serving.stats import ServingStats

__all__ = [
    "AdmissionGate",
    "OpOutcome",
    "PlatformServer",
    "ServerClosed",
    "ServingConfig",
    "ServingStats",
    "WriteOp",
    "apply_ops",
    "http_request",
]

#: attribute -> defining submodule, resolved on first touch.
_LAZY = {
    "AdmissionGate": "repro.serving.gate",
    "OpOutcome": "repro.serving.ops",
    "PlatformServer": "repro.serving.server",
    "ServerClosed": "repro.serving.server",
    "ServingStats": "repro.serving.stats",
    "WriteOp": "repro.serving.ops",
    "apply_ops": "repro.serving.ops",
    "http_request": "repro.serving.http",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
