"""Serving telemetry, ``EngineStats``-style.

:class:`ServingStats` counts what the front-end did — requests served
from the cache-fed read path, writes admitted/coalesced/rejected, drain
ticks (engine continuations) and their latency — so the admission
batcher's effectiveness is a measured surface.  The counters feed
:func:`repro.metrics.format_stats_table` via :meth:`as_dict` and a
:class:`repro.metrics.Collector` via :meth:`to_collector`, exactly like
``PlatformStats`` and ``CacheStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.cache import CacheStats

__all__ = ["ServingStats"]


@dataclass
class ServingStats:
    """Work counters for one :class:`~repro.serving.server.PlatformServer`.

    ``reads`` are GETs served without touching the engine (worker pages,
    task UIs, stats).  ``admitted`` writes entered the admission queue;
    ``applied`` of them were executed by the drainer; ``op_errors`` of
    those raised (reported per-request as 4xx, the rest of the burst
    proceeds).  ``rejected_depth`` / ``rejected_lag`` are 429s from the
    two backpressure triggers, ``rejected_closed`` are 503s during
    drain/close.  ``ticks`` counts drainer bursts — one engine
    continuation per project per tick — so ``admitted / ticks``
    (:attr:`coalescing`) is the batching win.  Tick latency is the wall
    time one burst took to apply.  ``read_cache`` aggregates the query
    cache hits/misses incurred by this server's renders only (see
    :func:`repro.forms.worker_page.render_worker_page`).
    """

    reads: int = 0
    admitted: int = 0
    applied: int = 0
    op_errors: int = 0
    rejected_depth: int = 0
    rejected_lag: int = 0
    rejected_closed: int = 0
    ticks: int = 0
    max_queue_depth: int = 0
    tick_latency_total_s: float = 0.0
    tick_latency_max_s: float = 0.0
    read_cache: CacheStats = field(default_factory=CacheStats)

    @property
    def rejected(self) -> int:
        """Total writes refused admission (both 429 triggers + 503s)."""
        return self.rejected_depth + self.rejected_lag + self.rejected_closed

    @property
    def coalescing(self) -> float:
        """Writes admitted per engine continuation (the batching win)."""
        return self.admitted / self.ticks if self.ticks else 0.0

    def record_tick(self, batch_size: int, latency_s: float) -> None:
        """Account one drainer burst."""
        self.ticks += 1
        self.applied += batch_size
        self.tick_latency_total_s += latency_s
        self.tick_latency_max_s = max(self.tick_latency_max_s, latency_s)

    def as_dict(self) -> dict[str, float]:
        return {
            "reads": self.reads,
            "admitted": self.admitted,
            "applied": self.applied,
            "op_errors": self.op_errors,
            "rejected_depth": self.rejected_depth,
            "rejected_lag": self.rejected_lag,
            "rejected_closed": self.rejected_closed,
            "ticks": self.ticks,
            "coalescing_x": round(self.coalescing, 3),
            "max_queue_depth": self.max_queue_depth,
            "tick_latency_total_s": round(self.tick_latency_total_s, 6),
            "tick_latency_max_s": round(self.tick_latency_max_s, 6),
        }

    def sections(self) -> dict[str, dict[str, float]]:
        """The :func:`repro.metrics.format_stats_table` sections this
        server contributes (serving counters + its read-path cache)."""
        return {
            "serving": self.as_dict(),
            "serving_read_cache": self.read_cache.as_dict(),
        }

    def to_collector(self, collector, prefix: str = "serving") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)
        self.read_cache.to_collector(collector, prefix=f"{prefix}.read_cache")
