"""The serving front-end's configuration surface.

:class:`ServingConfig` is a frozen value object, designed rather than
accreted: every knob of the HTTP front-end — bind address, admission
batching, backpressure thresholds, protocol limits — lives here, and the
object composes into :class:`repro.config.RuntimeConfig` (``serving=``)
so one ``RuntimeConfig`` describes a whole deployment, storage to socket.
``RuntimeConfig.build_server()`` is the one way to get a
:class:`~repro.serving.server.PlatformServer`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """How one :class:`~repro.serving.server.PlatformServer` runs.

    Network: ``host``/``port`` are the bind address; port ``0`` asks the
    OS for an ephemeral port (the bound address is reported by
    :attr:`PlatformServer.address` after start — the test and bench
    default).

    Admission batching: writes are admitted into a bounded queue that a
    single drainer empties once per *tick*.  After the first queued write
    arrives the drainer keeps collecting for ``batch_window`` seconds (up
    to ``max_batch`` operations) and applies the whole burst inside one
    engine continuation per project — thousands of concurrent submissions
    cost one evaluation, not one each.  ``batch_window=0`` degenerates to
    "whatever is queued right now".

    Backpressure: a write is rejected with ``429 Retry-After`` when the
    admission queue already holds ``queue_depth`` operations, or when the
    queue has been continuously non-empty for longer than
    ``max_round_lag`` seconds (the drainer's ticks are falling behind the
    arrival rate).  ``retry_after`` is the integer number of seconds put
    in the ``Retry-After`` header.

    Protocol limits: requests whose header block exceeds
    ``max_header_bytes`` or whose body exceeds ``max_body_bytes`` are
    refused (431/413) before touching platform state.
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window: float = 0.005
    max_batch: int = 512
    queue_depth: int = 1024
    max_round_lag: float = 0.5
    retry_after: int = 1
    max_header_bytes: int = 32768
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be within [0, 65535], got {self.port}")
        if not self.host:
            raise ValueError("host must be non-empty")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_round_lag <= 0:
            raise ValueError(f"max_round_lag must be > 0, got {self.max_round_lag}")
        if self.retry_after < 0:
            raise ValueError(f"retry_after must be >= 0, got {self.retry_after}")
        if self.max_header_bytes < 256:
            raise ValueError(
                f"max_header_bytes must be >= 256, got {self.max_header_bytes}"
            )
        if self.max_body_bytes < 0:
            raise ValueError(
                f"max_body_bytes must be >= 0, got {self.max_body_bytes}"
            )

    def with_changes(self, **changes: Any) -> "ServingConfig":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)
