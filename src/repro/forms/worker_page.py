"""The worker page (Figure 4).

Shows the worker's human factors — "either provided by the worker when
creating an Crowd4U account (e.g., native languages, location) or computed
by the system based on previously performed tasks" — and the list of
collaborative tasks she is eligible for, with interest declaration.
"""

from __future__ import annotations

from repro.core.human_factors import HumanFactors
from repro.forms.model import FormField, FormModel
from repro.forms.render import render_form, render_page, render_table
from repro.storage import col
from repro.storage.cache import CacheStats, observe_cache


def build_factors_form(factors: HumanFactors) -> FormModel:
    """Editable human factors (the computed ones render read-only below)."""
    fields = (
        FormField(
            "native_languages", "Native languages", widget="text",
            default=",".join(sorted(factors.native_languages)),
            help_text="comma-separated language codes",
        ),
        FormField(
            "languages", "Other languages (code:proficiency)", widget="text",
            default="; ".join(
                f"{lang}:{prof:g}"
                for lang, prof in sorted(factors.languages.items())
                if lang not in factors.native_languages
            ),
        ),
        FormField("region", "Location / region", widget="text",
                  default=factors.region),
        FormField(
            "sns_id", "SNS account (e.g. Google)", widget="text",
            default=factors.sns_id or "",
            help_text="used to coordinate simultaneous collaboration",
        ),
    )
    return FormModel(
        form_id="worker-factors",
        title="Your human factors",
        fields=fields,
        action="/worker/factors",
        submit_label="Update profile",
    )


def render_worker_page(
    platform, worker_id: str, cache_stats: CacheStats | None = None
) -> str:
    """The full worker page: factors + eligible collaborative tasks.

    The task list and per-task statuses render from cached storage queries
    (see :mod:`repro.storage.cache`): between platform mutations, repeated
    page loads are served from memoised results instead of re-scanning the
    relationship and task tables.

    ``cache_stats`` makes the read path's cache effectiveness observable
    instead of inferred: when supplied, exactly the hits/misses/
    invalidations this render incurred are absorbed into it (the serving
    front-end passes its per-server block so ``GET /stats`` reports the
    cache-fed read path directly).
    """
    with observe_cache(platform.db.query_cache, cache_stats):
        return _render_worker_page(platform, worker_id)


def _render_worker_page(platform, worker_id: str) -> str:
    worker = platform.workers.get(worker_id)
    factors = worker.factors
    form_html = render_form(build_factors_form(factors))
    computed = render_table(
        ("factor", "value"),
        [("reliability", f"{factors.reliability:.2f}")]
        + [(f"skill:{name}", f"{level:.2f}")
           for name, level in sorted(factors.skills.items())],
    )
    status_rows = (
        platform.db.query("relationship")
        .where(col("worker_id") == worker_id)
        .project("task_id", "status")
        .execute_cached()
    )
    status_by_task = {row["task_id"]: row["status"] for row in status_rows}
    rows = []
    for task in platform.eligible_tasks(worker_id):
        rows.append(
            (
                task.id,
                task.instruction[:60],
                task.kind.value,
                status_by_task.get(task.id, "eligible"),
            )
        )
    tasks_html = render_table(("task", "instruction", "kind", "your status"), rows)
    micro_rows = [
        (t.id, t.kind.value, t.instruction[:60])
        for t in platform.tasks_for_worker(worker_id)
    ]
    micro_html = render_table(("task", "kind", "instruction"), micro_rows)
    return render_page(
        f"Worker page — {worker.name} ({worker.id})",
        form_html,
        f"<section><h2>Computed factors</h2>{computed}</section>",
        "<section><h2>Collaborative tasks you are eligible for</h2>"
        f"{tasks_html}<p>Declare interest to join a team.</p></section>",
        f"<section><h2>Your assigned micro-tasks</h2>{micro_html}</section>",
    )


def parse_factors_form(
    submission: dict, base: HumanFactors
) -> HumanFactors:
    """Apply a Figure-4 form submission on top of existing factors."""
    from dataclasses import replace

    form = build_factors_form(base)
    report = form.validate(submission)
    if not report.ok:
        from repro.errors import FormError

        problems = "; ".join(f"{k}: {v}" for k, v in sorted(report.errors.items()))
        raise FormError(f"invalid worker factors form: {problems}")
    values = report.values
    natives = frozenset(
        part.strip()
        for part in (values.get("native_languages") or "").split(",")
        if part.strip()
    )
    languages = {}
    for chunk in (values.get("languages") or "").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, level = chunk.partition(":")
        languages[name.strip()] = float(level or 0.5)
    return replace(
        base,
        native_languages=natives,
        languages=languages,
        region=values.get("region") or base.region,
        sns_id=(values.get("sns_id") or None),
    )
