"""Form-based UIs (paper §2.1, §2.4, Figures 3–5).

Crowd4U "provides an easy-to-use form-based task UI" and "tools to help
requesters generate CyLog rules by allowing them to define tasks with a
form-based user interface and spreadsheets".  This package reproduces:

* the generic form model + dependency-free HTML renderer,
* the project administration page with its constraint entry form
  (Figure 3),
* the worker page showing editable human factors and the eligible-task
  list (Figure 4),
* task UIs, including the simultaneous-collaboration screen with team
  SNS ids, the shared document and the submit box (Figure 5),
* the spreadsheet/form → CyLog generators.
"""

from repro.forms.admin import (
    build_constraint_form,
    parse_constraint_form,
    render_admin_page,
)
from repro.forms.model import FormField, FormModel, ValidationReport
from repro.forms.render import html_escape, render_form, render_page
from repro.forms.spreadsheet import (
    FormTaskSpec,
    cylog_from_form_spec,
    cylog_from_spreadsheet,
)
from repro.forms.task_ui import render_task_ui
from repro.forms.worker_page import build_factors_form, render_worker_page

__all__ = [
    "FormField",
    "FormModel",
    "FormTaskSpec",
    "ValidationReport",
    "build_constraint_form",
    "build_factors_form",
    "cylog_from_form_spec",
    "cylog_from_spreadsheet",
    "html_escape",
    "parse_constraint_form",
    "render_admin_page",
    "render_form",
    "render_page",
    "render_task_ui",
    "render_worker_page",
]
