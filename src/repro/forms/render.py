"""Dependency-free HTML rendering for forms and pages.

The real Crowd4U serves these pages from a web framework; here the
renderers emit plain HTML strings from live platform state, which is what
the demo's screenshots (Figures 3–5) show.  Output is deterministic so
tests can assert on it.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.forms.model import FormField, FormModel

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "'": "&#x27;"}


def html_escape(text: Any) -> str:
    """Escape text for safe inclusion in HTML."""
    out = str(text)
    for char, entity in _ESCAPES.items():
        out = out.replace(char, entity)
    return out


def render_field(field: FormField, value: Any = None) -> str:
    """Render one field with its label, control and help text."""
    current = value if value is not None else field.default
    control: str
    name = html_escape(field.name)
    if field.widget == "textarea":
        control = (
            f'<textarea name="{name}" rows="4">'
            f"{html_escape(current or '')}</textarea>"
        )
    elif field.widget == "checkbox":
        checked = " checked" if current else ""
        control = f'<input type="checkbox" name="{name}"{checked} />'
    elif field.widget == "select":
        options = "".join(
            f'<option value="{html_escape(o)}"'
            f'{" selected" if o == current else ""}>{html_escape(o)}</option>'
            for o in field.options
        )
        control = f'<select name="{name}">{options}</select>'
    elif field.widget == "multiselect":
        selected = set(current or ())
        options = "".join(
            f'<option value="{html_escape(o)}"'
            f'{" selected" if o in selected else ""}>{html_escape(o)}</option>'
            for o in field.options
        )
        control = f'<select name="{name}" multiple>{options}</select>'
    else:
        input_type = "number" if field.widget in ("number", "integer") else "text"
        shown = "" if current is None else html_escape(current)
        control = f'<input type="{input_type}" name="{name}" value="{shown}" />'
    required = ' <span class="required">*</span>' if field.required else ""
    help_html = (
        f'<div class="help">{html_escape(field.help_text)}</div>'
        if field.help_text
        else ""
    )
    return (
        f'<div class="field" id="field-{name}">'
        f"<label>{html_escape(field.label)}{required}</label>"
        f"{control}{help_html}</div>"
    )


def render_form(form: FormModel, values: dict[str, Any] | None = None) -> str:
    """Render a whole form."""
    values = values or {}
    rows = "".join(
        render_field(field, values.get(field.name)) for field in form.fields
    )
    return (
        f'<form id="{html_escape(form.form_id)}" action="{html_escape(form.action)}" '
        f'method="post"><h2>{html_escape(form.title)}</h2>{rows}'
        f'<button type="submit">{html_escape(form.submit_label)}</button></form>'
    )


def render_table(headers: Iterable[str], rows: Iterable[Iterable[Any]]) -> str:
    """Render a simple data table."""
    head = "".join(f"<th>{html_escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html_escape(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_page(title: str, *body_parts: str) -> str:
    """Wrap body fragments in the standard Crowd4U page chrome."""
    body = "\n".join(body_parts)
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><meta charset=\"utf-8\"><title>{html_escape(title)}"
        "</title></head>\n"
        f"<body><header><h1>{html_escape(title)}</h1>"
        "<nav>Crowd4U — an open crowdsourcing platform</nav></header>\n"
        f"<main>{body}</main>\n"
        "<footer>Crowd4U reproduction — PVLDB 9(13), 2016</footer>"
        "</body></html>"
    )
