"""The project administration page (Figure 3).

"A requester specifies the desired human factors for task assignment.
The requester also specifies an expiration time for worker recruitment."

:func:`build_constraint_form` produces the constraint entry form from the
project's current constraints; :func:`parse_constraint_form` converts a
submission back into :class:`TeamConstraints` (the reverse direction the
admin page's POST handler needs); :func:`render_admin_page` assembles the
whole page, including task status and pending requester suggestions.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.errors import FormError
from repro.forms.model import FormField, FormModel, ValidationReport
from repro.forms.render import html_escape, render_form, render_page, render_table


def build_constraint_form(constraints: TeamConstraints) -> FormModel:
    """The Figure-3 constraint entry form, pre-filled from ``constraints``."""
    skills_text = "; ".join(
        f"{r.skill}:{r.min_level:g}:{r.aggregator}" for r in constraints.skills
    )
    fields = (
        FormField(
            "min_size", "Minimum team size", widget="integer",
            default=constraints.min_size, min_value=1, required=True,
            help_text="The controller waits for at least this many interested workers",
        ),
        FormField(
            "critical_mass", "Upper critical mass", widget="integer",
            default=constraints.critical_mass, min_value=1, required=True,
            help_text="Group size beyond which collaboration effectiveness diminishes",
        ),
        FormField(
            "skills", "Required skills", widget="text", default=skills_text,
            help_text="skill:min_level[:aggregator] entries separated by ';'",
        ),
        FormField(
            "required_languages", "Required languages", widget="text",
            default=",".join(sorted(constraints.required_languages)),
            help_text="comma-separated language codes every member must speak",
        ),
        FormField(
            "language_proficiency", "Minimum language proficiency",
            widget="number", default=constraints.language_proficiency,
            min_value=0.0, max_value=1.0,
        ),
        FormField(
            "quality_threshold", "Team quality threshold", widget="number",
            default=constraints.quality_threshold, min_value=0.0, max_value=1.0,
        ),
        FormField(
            "cost_budget", "Cost budget", widget="number",
            default=(
                None
                if constraints.cost_budget == math.inf
                else constraints.cost_budget
            ),
            min_value=0.0, help_text="Leave empty for unlimited (volunteers)",
        ),
        FormField(
            "region", "Restrict to region", widget="text",
            default=constraints.region or "",
            help_text="e.g. for surveillance tasks in one geographic area",
        ),
        FormField(
            "recruitment_deadline", "Recruitment expiration (time units)",
            widget="number", default=constraints.recruitment_deadline,
            min_value=0.0,
        ),
        FormField(
            "confirmation_window", "Confirmation window (time units)",
            widget="number", default=constraints.confirmation_window,
            min_value=0.0,
        ),
    )
    return FormModel(
        form_id="constraint-entry",
        title="Desired human factors for collaborative task assignment",
        fields=fields,
        action="/admin/constraints",
        submit_label="Apply to task assignment",
    )


def _parse_skills(text: str) -> tuple[SkillRequirement, ...]:
    requirements = []
    for chunk in (text or "").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [p.strip() for p in chunk.split(":")]
        if len(parts) < 2:
            raise FormError(
                f"skill entry {chunk!r} must look like name:min_level[:aggregator]"
            )
        try:
            level = float(parts[1])
        except ValueError as exc:
            raise FormError(f"bad skill level in {chunk!r}") from exc
        aggregator = parts[2] if len(parts) > 2 else "max"
        requirements.append(
            SkillRequirement(skill=parts[0], min_level=level, aggregator=aggregator)
        )
    return tuple(requirements)


def parse_constraint_form(submission: dict[str, Any]) -> TeamConstraints:
    """Validate a Figure-3 form submission into :class:`TeamConstraints`."""
    form = build_constraint_form(TeamConstraints())
    report: ValidationReport = form.validate(submission)
    if not report.ok:
        problems = "; ".join(f"{k}: {v}" for k, v in sorted(report.errors.items()))
        raise FormError(f"invalid constraint form: {problems}")
    values = report.values
    languages = frozenset(
        part.strip()
        for part in (values.get("required_languages") or "").split(",")
        if part.strip()
    )
    return TeamConstraints(
        min_size=int(values["min_size"]),
        critical_mass=int(values["critical_mass"]),
        skills=_parse_skills(values.get("skills") or ""),
        required_languages=languages,
        language_proficiency=float(values.get("language_proficiency") or 0.3),
        quality_threshold=float(values.get("quality_threshold") or 0.0),
        cost_budget=(
            math.inf
            if values.get("cost_budget") in (None, "")
            else float(values["cost_budget"])
        ),
        region=(values.get("region") or None),
        recruitment_deadline=values.get("recruitment_deadline"),
        confirmation_window=float(values.get("confirmation_window") or 50.0),
    )


def render_admin_page(platform, project_id: str) -> str:
    """The full project administration page for ``project_id``."""
    project = platform.projects.get(project_id)
    form_html = render_form(build_constraint_form(project.constraints))
    tasks = [
        (task.id, task.kind.value, task.status.value,
         task.predicate or "-", task.instruction[:60])
        for task in platform.pool.all()
        if task.project_id == project_id and task.parent_task_id is None
    ]
    tasks_html = render_table(
        ("task", "kind", "status", "predicate", "instruction"), tasks
    )
    suggestions = platform.suggestions_for(project_id)
    if suggestions:
        items = "".join(
            "<li>task {}: {} — try: {}</li>".format(
                html_escape(s.task_id),
                html_escape(s.reason),
                html_escape("; ".join(s.relaxations) or "no single relaxation helps"),
            )
            for s in suggestions
        )
        suggestions_html = (
            f'<section class="suggestions"><h2>Suggestions</h2><ul>{items}</ul>'
            "</section>"
        )
    else:
        suggestions_html = '<section class="suggestions">No suggestions.</section>'
    source_html = (
        "<section><h2>Project description (CyLog)</h2>"
        f"<pre>{html_escape(project.cylog_source)}</pre></section>"
    )
    return render_page(
        f"Project administration — {project.name}",
        form_html,
        suggestions_html,
        f"<section><h2>Tasks</h2>{tasks_html}</section>",
        source_html,
    )
