"""Typed form model with validation.

A :class:`FormModel` is a declarative description of one HTML form; it can
render itself (via :mod:`repro.forms.render`) and validate a submission
dict, converting values to their declared Python types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import FormError

#: Supported widgets and the Python type their value converts to.
_WIDGET_TYPES: dict[str, type] = {
    "text": str,
    "textarea": str,
    "number": float,
    "integer": int,
    "checkbox": bool,
    "select": str,
    "multiselect": list,
}


@dataclass(frozen=True)
class FormField:
    """One input of a form."""

    name: str
    label: str
    widget: str = "text"
    required: bool = False
    default: Any = None
    options: tuple[str, ...] = ()          # for select / multiselect
    help_text: str = ""
    min_value: float | None = None
    max_value: float | None = None
    validator: Callable[[Any], str | None] | None = None

    def __post_init__(self) -> None:
        if self.widget not in _WIDGET_TYPES:
            raise FormError(
                f"unknown widget {self.widget!r} for field {self.name!r}"
            )
        if self.widget in ("select", "multiselect") and not self.options:
            raise FormError(f"field {self.name!r}: {self.widget} needs options")

    def convert(self, raw: Any) -> Any:
        """Convert a raw submission value to the field's Python type."""
        target = _WIDGET_TYPES[self.widget]
        if raw is None:
            return None
        if target is bool:
            if isinstance(raw, bool):
                return raw
            return str(raw).lower() in ("1", "true", "yes", "on")
        if target is list:
            if isinstance(raw, (list, tuple)):
                return [str(v) for v in raw]
            return [part.strip() for part in str(raw).split(",") if part.strip()]
        try:
            if target is int and isinstance(raw, str):
                return int(raw.strip())
            if target is float and isinstance(raw, str):
                return float(raw.strip())
            return target(raw)
        except (TypeError, ValueError) as exc:
            raise FormError(
                f"field {self.name!r}: cannot convert {raw!r} to {target.__name__}"
            ) from exc

    def check(self, value: Any) -> str | None:
        """Return an error message, or None when the value is acceptable."""
        if value is None or (isinstance(value, str) and not value.strip()):
            return f"{self.label} is required" if self.required else None
        if self.widget in ("select",) and str(value) not in self.options:
            return f"{self.label}: {value!r} is not one of {list(self.options)}"
        if self.widget == "multiselect":
            bad = [v for v in value if v not in self.options]
            if bad:
                return f"{self.label}: invalid options {bad}"
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.min_value is not None and value < self.min_value:
                return f"{self.label} must be ≥ {self.min_value}"
            if self.max_value is not None and value > self.max_value:
                return f"{self.label} must be ≤ {self.max_value}"
        if self.validator is not None:
            return self.validator(value)
        return None


@dataclass
class ValidationReport:
    """Outcome of validating one submission."""

    values: dict[str, Any] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass(frozen=True)
class FormModel:
    """A declarative form: id, title and ordered fields."""

    form_id: str
    title: str
    fields: tuple[FormField, ...]
    action: str = "#"
    submit_label: str = "Save"

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise FormError(f"duplicate field names in form {self.form_id!r}")

    def field(self, name: str) -> FormField:
        for candidate in self.fields:
            if candidate.name == name:
                return candidate
        raise FormError(f"form {self.form_id!r} has no field {name!r}")

    def validate(self, submission: dict[str, Any]) -> ValidationReport:
        """Convert and validate a submission; unknown keys are rejected."""
        report = ValidationReport()
        known = {f.name for f in self.fields}
        unknown = set(submission) - known
        for name in sorted(unknown):
            report.errors[name] = f"unknown field {name!r}"
        for form_field in self.fields:
            raw = submission.get(form_field.name, form_field.default)
            try:
                value = form_field.convert(raw)
            except FormError as exc:
                report.errors[form_field.name] = str(exc)
                continue
            problem = form_field.check(value)
            if problem is not None:
                report.errors[form_field.name] = problem
            else:
                report.values[form_field.name] = value
        return report

    def defaults(self) -> dict[str, Any]:
        return {f.name: f.default for f in self.fields}
