"""Task-execution UIs, including the simultaneous screen of Figure 5.

For an OPEN_FILL or chain micro-task the UI is a simple instruction +
answer form.  For a JOINT task the page reproduces Figure 5: the list of
team members with their collected SNS ids ("she communicates with other
workers using Google doc"), the live shared document, a contribution box
and the single submit button whose result is credited to the team.
"""

from __future__ import annotations

from repro.core.tasks import Task, TaskKind
from repro.forms.model import FormField, FormModel
from repro.forms.render import html_escape, render_form, render_page, render_table
from repro.storage import col


def _answer_form(task: Task) -> FormModel:
    fields: list[FormField] = []
    if task.choices:
        fields.append(
            FormField(
                "answer",
                "Your answer",
                widget="select",
                options=tuple(str(c) for c in task.choices),
                required=True,
            )
        )
    elif task.fill_columns:
        for column in task.fill_columns:
            fields.append(
                FormField(column, f"Value for {column}", widget="textarea",
                          required=True)
            )
    else:
        fields.append(
            FormField("text", "Your contribution", widget="textarea",
                      required=True)
        )
    return FormModel(
        form_id=f"task-{task.id}",
        title=task.instruction,
        fields=tuple(fields),
        action=f"/tasks/{task.id}/submit",
        submit_label="Submit result",
    )


def render_task_ui(platform, task_id: str, worker_id: str) -> str:
    """Render the task UI as seen by ``worker_id``."""
    task = platform.pool.get(task_id)
    if task.kind is TaskKind.JOINT:
        return _render_joint_ui(platform, task, worker_id)
    context = ""
    previous = task.payload.get("previous_text")
    if previous:
        context = (
            "<section><h2>Previous contribution</h2>"
            f"<blockquote>{html_escape(previous)}</blockquote>"
            "<p>Check it and submit an improved version.</p></section>"
        )
    return render_page(
        f"Task {task.id}",
        context,
        render_form(_answer_form(task)),
    )


def _render_joint_ui(platform, task: Task, worker_id: str) -> str:
    """Figure 5: simultaneous collaboration screen."""
    members = task.payload.get("addressed_to", [])
    sns_ids = task.payload.get("sns_ids", {})
    roster = render_table(
        ("team member", "SNS id"),
        [(member, sns_ids.get(member, "?")) for member in members],
    )
    # Worker↔task relationship tally for the root collaborative task,
    # served through the storage query cache (stable between ledger writes).
    ledger_rows = (
        platform.db.query("relationship")
        .where(col("task_id") == task.parent_task_id)
        .group_by("status")
        .aggregate(workers=("count", None))
        .order_by("status")
        .execute_cached()
    )
    ledger_html = render_table(
        ("relationship", "workers"),
        [(row["status"], row["workers"]) for row in ledger_rows],
    )
    entry = platform._active_schemes.get(task.parent_task_id)
    doc_html = "<p>(document not yet started)</p>"
    if entry is not None:
        _, ctx = entry
        sections = []
        for key in ctx.document.section_keys:
            section = ctx.document.section(key)
            sections.append(
                f"<h3>{html_escape(section.heading or key)}</h3>"
                f"<p>{html_escape(section.text) or '<em>(empty)</em>'}</p>"
            )
        doc_html = "\n".join(sections) or doc_html
    contribute_form = FormModel(
        form_id=f"contribute-{task.id}",
        title="Add to your section",
        fields=(
            FormField("content", "Your text", widget="textarea", required=True),
        ),
        action=f"/tasks/{task.id}/contribute",
        submit_label="Contribute",
    )
    submit_form = FormModel(
        form_id=f"submit-{task.id}",
        title="Submit the team result",
        fields=(
            FormField(
                "confirm", "I submit on behalf of the whole team",
                widget="checkbox", required=True,
            ),
        ),
        action=f"/tasks/{task.id}/submit",
        submit_label="Submit for the team",
    )
    return render_page(
        f"Simultaneous collaboration — task {task.id}",
        f"<section><h2>{html_escape(task.instruction)}</h2>"
        "<p>Work together with your team using the shared document below "
        "(communication delegated to your collaboration tool of choice)."
        "</p></section>",
        f"<section><h2>Your team</h2>{roster}"
        f"<h3>Task relationships</h3>{ledger_html}</section>",
        f'<section class="shared-document"><h2>Shared document</h2>{doc_html}'
        "</section>",
        render_form(contribute_form),
        render_form(submit_form),
    )
