"""Secondary indexes: hash indexes for equality, sorted indexes for ranges.

Indexes map tuples of column values to the set of primary keys of matching
rows.  They are maintained eagerly by :class:`repro.storage.table.Table` on
every mutation, so lookups never need revalidation.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.cylog.indexes import MultiKeyHashIndex
from repro.storage.errors import DuplicateKeyError

PkTuple = tuple[Any, ...]
ValueTuple = tuple[Any, ...]


class HashIndex:
    """Equality index over one or more columns.

    Bucket bookkeeping is delegated to the shared
    :class:`repro.cylog.indexes.MultiKeyHashIndex`; this class adds the
    column-name keying and the uniqueness constraint.  With ``unique=True``
    inserting a second row with the same value tuple raises
    :class:`DuplicateKeyError`.  ``None`` values are indexed like any other
    value but never trigger uniqueness conflicts (SQL-style NULL semantics).
    """

    def __init__(self, columns: Iterable[str], unique: bool = False) -> None:
        self.columns = tuple(columns)
        self.unique = unique
        self._buckets = MultiKeyHashIndex()

    def key_for(self, row: dict[str, Any]) -> ValueTuple:
        return tuple(row[c] for c in self.columns)

    def add(self, row: dict[str, Any], pk: PkTuple) -> None:
        key = self.key_for(row)
        if self.unique and self._buckets.bucket(key) and None not in key:
            raise DuplicateKeyError(
                f"unique index on {self.columns} violated by {key!r}"
            )
        self._buckets.add(key, pk)

    def remove(self, row: dict[str, Any], pk: PkTuple) -> None:
        self._buckets.discard(self.key_for(row), pk)

    def lookup(self, *values: Any) -> set[PkTuple]:
        """Return the primary keys of rows whose indexed columns equal
        ``values`` (a copy; safe to mutate)."""
        return set(self._buckets.bucket(tuple(values)))

    def clear(self) -> None:
        """Drop every entry (table truncation)."""
        self._buckets.clear()

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unique hash" if self.unique else "hash"
        return f"<{kind} index on {self.columns} ({self._buckets.key_count} keys)>"


class SortedIndex:
    """Ordered index over a single column supporting range scans.

    Backed by a sorted list of ``(value, pk)`` pairs.  ``None`` values are
    excluded from the ordering (they can never match a range predicate).
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: list[tuple[Any, PkTuple]] = []

    def add(self, row: dict[str, Any], pk: PkTuple) -> None:
        value = row[self.column]
        if value is None:
            return
        bisect.insort(self._entries, (value, pk))

    def remove(self, row: dict[str, Any], pk: PkTuple) -> None:
        value = row[self.column]
        if value is None:
            return
        position = bisect.bisect_left(self._entries, (value, pk))
        if position < len(self._entries) and self._entries[position] == (value, pk):
            del self._entries[position]

    def clear(self) -> None:
        """Drop every entry (table truncation)."""
        self._entries.clear()

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[PkTuple]:
        """Yield primary keys with indexed value in the requested interval.

        ``None`` bounds are open-ended.  Results come out in ascending value
        order, which :meth:`Query.order_by` exploits when possible.
        """
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._entries, (low,))
        else:
            start = bisect.bisect_right(self._entries, (low, _AFTER_ALL))
        for value, pk in self._entries[start:]:
            if high is not None:
                if include_high and value > high:
                    break
                if not include_high and value >= high:
                    break
            yield pk

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<sorted index on {self.column!r} ({len(self._entries)} entries)>"


class _AfterAll:
    """Sentinel comparing greater than every primary-key tuple."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True


_AFTER_ALL = _AfterAll()
