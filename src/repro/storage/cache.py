"""Invalidation-correct memoisation of query results.

The cache is the storage half of the platform's serving path: worker pages
and task UIs re-run the same select/join pipelines on every render, while
the underlying tables change only a little between platform rounds.  Each
cached entry is tagged with the :attr:`~repro.storage.table.Table.version`
of every table the query read.  Versions advance on *every* physical
mutation — inserts, updates, deletes, truncation and the undo-log's raw
rollback operations — so a lookup can decide staleness with one tuple
comparison and never needs explicit invalidation hooks.

Entries are LRU-bounded; statistics are exposed ``EngineStats``-style so
benches and the metrics collector can report hit/miss/invalidation rates.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence


@dataclass
class CacheStats:
    """Work counters for one :class:`QueryCache` (cumulative).

    ``hits`` are served straight from memory, ``misses`` are cold
    computations, ``invalidations`` are recomputations forced by a table
    version moving past a stored entry, and ``evictions`` count LRU drops.
    Every fetch is exactly one of hit / miss / invalidation.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def to_collector(self, collector, prefix: str = "query_cache") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)

    @property
    def fetches(self) -> int:
        return self.hits + self.misses + self.invalidations

    def absorb(self, counters: "CacheStats | Mapping[str, int]") -> None:
        """Add another stats block's counters into this one.

        Lets a consumer keep its own attribution slice of a shared cache:
        the worker page absorbs exactly the hits/misses its renders
        incurred into a caller-supplied block (see
        :func:`repro.forms.worker_page.render_worker_page`), so the
        serving read path's cache effectiveness is observable per server
        rather than inferred from the database-wide totals.
        """
        if isinstance(counters, CacheStats):
            counters = counters.as_dict()
        self.hits += counters.get("hits", 0)
        self.misses += counters.get("misses", 0)
        self.invalidations += counters.get("invalidations", 0)
        self.evictions += counters.get("evictions", 0)


@contextlib.contextmanager
def observe_cache(cache: "QueryCache", stats: CacheStats | None) -> Iterator[None]:
    """Attribute the cache activity inside the block to ``stats``.

    ``stats=None`` observes nothing (the zero-overhead default); the
    global :attr:`QueryCache.stats` totals keep counting either way.
    """
    if stats is None:
        yield
        return
    before = cache.stats.as_dict()
    try:
        yield
    finally:
        after = cache.stats.as_dict()
        stats.absorb({name: after[name] - before[name] for name in after})


class QueryCache:
    """LRU cache of query results keyed on (plan, source-table versions)."""

    def __init__(self, maxsize: int = 512) -> None:
        self.maxsize = maxsize
        self.stats = CacheStats()
        #: plan key -> (versions tuple, result rows)
        self._entries: OrderedDict[Hashable, tuple[tuple[int, ...], list]] = (
            OrderedDict()
        )

    def fetch(
        self,
        plan: Hashable,
        tables: Sequence[Any],
        compute: Callable[[], list],
    ) -> list:
        """Return the result for ``plan``, recomputing when any source table
        version moved.  The returned list is the *stored* one — callers must
        copy rows before handing them out to mutation-happy code."""
        versions = tuple(table.version for table in tables)
        entry = self._entries.get(plan)
        if entry is not None:
            if entry[0] == versions:
                self.stats.hits += 1
                self._entries.move_to_end(plan)
                return entry[1]
            self.stats.invalidations += 1
        else:
            self.stats.misses += 1
        rows = compute()
        self._entries[plan] = (versions, rows)
        self._entries.move_to_end(plan)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return rows

    def invalidate_all(self) -> None:
        """Drop every entry (schema changes, tests)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"<QueryCache {len(self._entries)}/{self.maxsize} entries, "
            f"{s.hits}h/{s.misses}m/{s.invalidations}i>"
        )
