"""Column types and value coercion.

The engine supports a compact set of types sufficient for the platform's
catalogues.  Coercion is strict: we accept only lossless conversions
(``int`` → ``float``, ``bool`` is *not* an ``int`` here) so that application
bugs surface as :class:`TypeMismatchError` instead of silent corruption.
"""

from __future__ import annotations

import enum
import json
from typing import Any

from repro.storage.errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Declared type of a column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    JSON = "json"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnType.{self.name}"


def coerce_value(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to ``column_type`` or raise :class:`TypeMismatchError`.

    ``None`` passes through unchanged; nullability is checked separately by
    the table layer, which knows the column's declaration.

    >>> coerce_value(3, ColumnType.FLOAT)
    3.0
    >>> coerce_value("yes", ColumnType.BOOL)
    Traceback (most recent call last):
        ...
    repro.storage.errors.TypeMismatchError: cannot store 'yes' in a bool column
    """
    if value is None:
        return None
    if column_type is ColumnType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"cannot store {value!r} in an int column")
        return value
    if column_type is ColumnType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"cannot store {value!r} in a float column")
        return float(value)
    if column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise TypeMismatchError(f"cannot store {value!r} in a text column")
        return value
    if column_type is ColumnType.BOOL:
        if not isinstance(value, bool):
            raise TypeMismatchError(f"cannot store {value!r} in a bool column")
        return value
    if column_type is ColumnType.JSON:
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise TypeMismatchError(
                f"cannot store {value!r} in a json column: {exc}"
            ) from exc
        return value
    raise TypeMismatchError(f"unsupported column type: {column_type!r}")


def is_orderable(column_type: ColumnType) -> bool:
    """Return whether values of ``column_type`` support ``<`` comparisons."""
    return column_type is not ColumnType.JSON
