"""Embedded relational storage engine.

This package is the data-management substrate of the Crowd4U reproduction:
the rules store, task pool, worker human-factor tables and task results all
live in :class:`~repro.storage.database.Database` relations, mirroring the
architecture of Figure 2 in the paper.

The engine is deliberately small but real: typed schemas, primary-key /
unique / foreign-key / not-null enforcement, hash and sorted secondary
indexes, a relational-algebra query builder (selection, projection, joins,
grouping/aggregation, ordering), undo-log transactions and JSON-lines
persistence.

Quick tour:

>>> from repro.storage import Column, ColumnType, Database, TableSchema, col
>>> db = Database()
>>> _ = db.create_table(TableSchema(
...     "worker",
...     [Column("id", ColumnType.TEXT), Column("skill", ColumnType.FLOAT)],
...     primary_key=("id",),
... ))
>>> _ = db.insert("worker", {"id": "w1", "skill": 0.9})
>>> db.query("worker").where(col("skill") > 0.5).execute()
[{'id': 'w1', 'skill': 0.9}]
"""

from repro.storage.backends import (
    MemoryBackend,
    Mutation,
    StorageBackend,
    open_database,
)
from repro.storage.cache import CacheStats, QueryCache
from repro.storage.database import Database
from repro.storage.errors import (
    ConstraintViolation,
    DuplicateKeyError,
    ForeignKeyError,
    NotNullViolation,
    SchemaError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.storage.expr import Expr, col, lit
from repro.storage.persistence import dump_canonical, load_database, save_database
from repro.storage.query import Query
from repro.storage.schema import Column, ForeignKey, TableSchema
from repro.storage.table import Table
from repro.storage.types import ColumnType

__all__ = [
    "CacheStats",
    "Column",
    "ColumnType",
    "ConstraintViolation",
    "Database",
    "DuplicateKeyError",
    "Expr",
    "ForeignKey",
    "ForeignKeyError",
    "MemoryBackend",
    "Mutation",
    "NotNullViolation",
    "Query",
    "QueryCache",
    "SchemaError",
    "StorageBackend",
    "Table",
    "TableSchema",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "col",
    "dump_canonical",
    "lit",
    "load_database",
    "open_database",
    "save_database",
]
