"""Table schemas: columns, keys and referential constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.storage.errors import SchemaError, UnknownColumnError
from repro.storage.types import ColumnType

#: Sentinel meaning "no default declared" (``None`` is a valid default).
NO_DEFAULT = object()


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``default`` may be a plain value or a zero-argument callable evaluated at
    insert time (useful for timestamps and counters).
    """

    name: str
    type: ColumnType
    nullable: bool = False
    default: Any = NO_DEFAULT

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")

    @property
    def has_default(self) -> bool:
        return self.default is not NO_DEFAULT

    def resolve_default(self) -> Any:
        """Return the default value, invoking it if it is callable."""
        if callable(self.default):
            return self.default()
        return self.default


@dataclass(frozen=True)
class ForeignKey:
    """Declares that ``columns`` reference ``ref_columns`` of ``ref_table``."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns} vs {self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")


class TableSchema:
    """Immutable description of a table.

    Parameters
    ----------
    name:
        Table name (a Python identifier).
    columns:
        Ordered column declarations.
    primary_key:
        Column names forming the primary key.  Every table must have one;
        the platform's catalogues are all keyed.
    unique:
        Additional unique constraints, each a tuple of column names.
    foreign_keys:
        Referential constraints checked by the owning database.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
        unique: Sequence[Sequence[str]] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self.column_map = {c.name: c for c in self.columns}
        if len(self.column_map) != len(self.columns):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.primary_key = tuple(primary_key)
        if not self.primary_key:
            raise SchemaError(f"table {name!r} needs a primary key")
        self._check_columns_exist(self.primary_key)
        for pk_col in self.primary_key:
            if self.column_map[pk_col].nullable:
                raise SchemaError(
                    f"primary-key column {pk_col!r} of {name!r} cannot be nullable"
                )
        self.unique = tuple(tuple(u) for u in unique)
        for constraint in self.unique:
            if not constraint:
                raise SchemaError("empty unique constraint")
            self._check_columns_exist(constraint)
        self.foreign_keys = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._check_columns_exist(fk.columns)

    def _check_columns_exist(self, names: Sequence[str]) -> None:
        for column_name in names:
            if column_name not in self.column_map:
                raise UnknownColumnError(
                    f"table {self.name!r} has no column {column_name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the :class:`Column` called ``name``."""
        try:
            return self.column_map[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def pk_tuple(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """Extract the primary-key tuple from ``row``."""
        return tuple(row[c] for c in self.primary_key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(c.name for c in self.columns)
        return f"TableSchema({self.name!r}: {cols}; pk={self.primary_key})"


@dataclass(frozen=True)
class SchemaDiff:
    """Difference between two schemas with the same table name.

    Used by :func:`repro.storage.persistence.load_database` to validate that
    a saved catalogue matches the code's expectations.
    """

    added_columns: tuple[str, ...] = ()
    removed_columns: tuple[str, ...] = ()
    retyped_columns: tuple[str, ...] = field(default=())

    @property
    def is_empty(self) -> bool:
        return not (self.added_columns or self.removed_columns or self.retyped_columns)


def diff_schemas(old: TableSchema, new: TableSchema) -> SchemaDiff:
    """Compute a column-level :class:`SchemaDiff` between two schemas."""
    old_names = set(old.column_names)
    new_names = set(new.column_names)
    retyped = tuple(
        sorted(
            name
            for name in old_names & new_names
            if old.column(name).type is not new.column(name).type
        )
    )
    return SchemaDiff(
        added_columns=tuple(sorted(new_names - old_names)),
        removed_columns=tuple(sorted(old_names - new_names)),
        retyped_columns=retyped,
    )
