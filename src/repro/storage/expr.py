"""Row-expression AST used for selections and computed projections.

Expressions are built with the :func:`col` / :func:`lit` helpers and the
usual Python operators, then evaluated against row dictionaries:

>>> e = (col("skill") >= 0.5) & col("active")
>>> e.evaluate({"skill": 0.7, "active": True})
True

The AST is deliberately tiny — columns, literals, arithmetic, comparisons,
boolean connectives, ``is_null`` and ``in_``.  The CyLog engine compiles its
comparison builtins down to these nodes when it scans storage-backed
relations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.storage.errors import UnknownColumnError


class Expr:
    """Base class for all expression nodes.

    Operator overloads build larger expressions; ``__eq__`` is repurposed for
    expression construction, so nodes are identity-hashed.
    """

    __hash__ = object.__hash__

    # -- construction helpers -------------------------------------------------
    def __eq__(self, other: Any) -> "BinOp":  # type: ignore[override]
        return BinOp("==", self, wrap(other))

    def __ne__(self, other: Any) -> "BinOp":  # type: ignore[override]
        return BinOp("!=", self, wrap(other))

    def __lt__(self, other: Any) -> "BinOp":
        return BinOp("<", self, wrap(other))

    def __le__(self, other: Any) -> "BinOp":
        return BinOp("<=", self, wrap(other))

    def __gt__(self, other: Any) -> "BinOp":
        return BinOp(">", self, wrap(other))

    def __ge__(self, other: Any) -> "BinOp":
        return BinOp(">=", self, wrap(other))

    def __add__(self, other: Any) -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __sub__(self, other: Any) -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __mul__(self, other: Any) -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __truediv__(self, other: Any) -> "BinOp":
        return BinOp("/", self, wrap(other))

    def __and__(self, other: Any) -> "BinOp":
        return BinOp("and", self, wrap(other))

    def __or__(self, other: Any) -> "BinOp":
        return BinOp("or", self, wrap(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def is_null(self) -> "IsNull":
        return IsNull(self)

    def in_(self, values: Iterable[Any]) -> "In":
        return In(self, tuple(values))

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, row: dict[str, Any]) -> Any:
        """Evaluate the expression against a row mapping."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Return the set of column names the expression references."""
        raise NotImplementedError


class Col(Expr):
    """Reference to a column of the current row."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: dict[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise UnknownColumnError(f"row has no column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: dict[str, Any]) -> Any:
        return self.value

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class BinOp(Expr):
    """Binary operation; ``and`` / ``or`` short-circuit like Python."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINARY_OPS and op not in ("and", "or"):
            raise ValueError(f"unsupported operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))
        if self.op == "or":
            return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))
        return _BINARY_OPS[self.op](self.left.evaluate(row), self.right.evaluate(row))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Not(Expr):
    """Boolean negation."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, row: dict[str, Any]) -> bool:
        return not bool(self.operand.evaluate(row))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


class IsNull(Expr):
    """True when the operand evaluates to ``None``."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, row: dict[str, Any]) -> bool:
        return self.operand.evaluate(row) is None

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r}.is_null()"


class In(Expr):
    """Membership test against a fixed collection of values."""

    def __init__(self, operand: Expr, values: Sequence[Any]) -> None:
        self.operand = operand
        self.values = tuple(values)
        try:
            self._value_set: set[Any] | None = set(self.values)
        except TypeError:
            self._value_set = None  # unhashable values: fall back to linear scan

    def evaluate(self, row: dict[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if self._value_set is not None:
            try:
                return value in self._value_set
            except TypeError:
                return False
        return value in self.values

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r}.in_({list(self.values)!r})"


def col(name: str) -> Col:
    """Build a column reference."""
    return Col(name)


def lit(value: Any) -> Lit:
    """Build a literal node."""
    return Lit(value)


def wrap(value: Any) -> Expr:
    """Return ``value`` unchanged if it is an :class:`Expr`, else wrap in Lit."""
    return value if isinstance(value, Expr) else Lit(value)
