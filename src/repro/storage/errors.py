"""Exception types raised by the storage engine."""

from __future__ import annotations

from repro.errors import StorageError


class SchemaError(StorageError):
    """A table schema is malformed (bad column, key, or constraint)."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(StorageError):
    """A statement referenced a column that does not exist."""


class ConstraintViolation(StorageError):
    """Base class for integrity-constraint failures."""


class DuplicateKeyError(ConstraintViolation):
    """A primary-key or unique-constraint collision."""


class NotNullViolation(ConstraintViolation):
    """A NULL was written into a non-nullable column."""


class ForeignKeyError(ConstraintViolation):
    """A foreign-key reference points at a missing row, or a referenced
    row was deleted while still referenced."""


class TypeMismatchError(ConstraintViolation):
    """A value could not be coerced to its column's declared type."""


class TransactionError(StorageError):
    """Transaction misuse (commit/rollback without begin, etc.)."""
