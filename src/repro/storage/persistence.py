"""Durable snapshots: JSON catalogue plus JSON-lines row files.

Layout of a saved database directory::

    <dir>/catalog.json          # schemas of every table
    <dir>/<table>.jsonl         # one JSON object per row

The format is line-oriented so large task pools stream without building one
giant document, and diff-friendly for experiment artefacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.storage.database import Database
from repro.storage.errors import SchemaError, StorageError
from repro.storage.schema import NO_DEFAULT, Column, ForeignKey, TableSchema
from repro.storage.types import ColumnType

_FORMAT_VERSION = 1


def schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    columns = []
    for column in schema.columns:
        entry: dict[str, Any] = {
            "name": column.name,
            "type": column.type.value,
            "nullable": column.nullable,
        }
        if column.has_default and not callable(column.default):
            entry["default"] = column.default
        columns.append(entry)
    return {
        "name": schema.name,
        "columns": columns,
        "primary_key": list(schema.primary_key),
        "unique": [list(u) for u in schema.unique],
        "foreign_keys": [
            {
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(payload: dict[str, Any]) -> TableSchema:
    columns = [
        Column(
            name=entry["name"],
            type=ColumnType(entry["type"]),
            nullable=entry.get("nullable", False),
            default=entry.get("default", NO_DEFAULT),
        )
        for entry in payload["columns"]
    ]
    foreign_keys = [
        ForeignKey(
            columns=tuple(fk["columns"]),
            ref_table=fk["ref_table"],
            ref_columns=tuple(fk["ref_columns"]),
        )
        for fk in payload.get("foreign_keys", [])
    ]
    return TableSchema(
        payload["name"],
        columns,
        primary_key=tuple(payload["primary_key"]),
        unique=[tuple(u) for u in payload.get("unique", [])],
        foreign_keys=foreign_keys,
    )


def save_database(db: Database, directory: str | Path) -> Path:
    """Write ``db`` under ``directory`` (created if needed); returns the path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    tables = []
    for name in db.table_names:
        entry = schema_to_dict(db.table(name).schema)
        # Persist the monotone data version so a reloaded table can never
        # alias a pre-save version (see the bump-on-load in load_database).
        entry["version"] = db.table(name).version
        tables.append(entry)
    catalog = {
        "format_version": _FORMAT_VERSION,
        "tables": tables,
    }
    (root / "catalog.json").write_text(json.dumps(catalog, indent=2, sort_keys=True))
    for name in db.table_names:
        table = db.table(name)
        with (root / f"{name}.jsonl").open("w", encoding="utf-8") as handle:
            for row in table.rows():
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
    return root


def load_database(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`.

    Tables are created in an order that satisfies foreign-key dependencies;
    cyclic FK graphs are rejected.
    """
    root = Path(directory)
    catalog_path = root / "catalog.json"
    if not catalog_path.exists():
        raise StorageError(f"no catalog.json under {root}")
    catalog = json.loads(catalog_path.read_text())
    if catalog.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot version: {catalog.get('format_version')!r}"
        )
    schemas = [schema_from_dict(entry) for entry in catalog["tables"]]
    saved_versions = {
        entry["name"]: int(entry.get("version", 0)) for entry in catalog["tables"]
    }
    ordered = topological_order(schemas)
    db = Database()
    for schema in ordered:
        db.create_table(schema)
    for schema in ordered:
        rows_path = root / f"{schema.name}.jsonl"
        if rows_path.exists():
            with rows_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        db.insert(schema.name, json.loads(line))
        # Bump past the saved version: a freshly loaded table must never
        # re-issue a version number the saved history already used, or a
        # consumer comparing versions across the save/load boundary (e.g. a
        # query-cache entry) could mistake reloaded data for an older state.
        table = db.table(schema.name)
        table.version = max(table.version, saved_versions.get(schema.name, 0) + 1)
    return db


def topological_order(schemas: list[TableSchema]) -> list[TableSchema]:
    """Order schemas so every FK target precedes its referrer."""
    by_name = {schema.name: schema for schema in schemas}
    ordered: list[TableSchema] = []
    state: dict[str, str] = {}  # name -> "visiting" | "done"

    def visit(name: str) -> None:
        status = state.get(name)
        if status == "done":
            return
        if status == "visiting":
            raise SchemaError(f"cyclic foreign keys involving table {name!r}")
        state[name] = "visiting"
        for fk in by_name[name].foreign_keys:
            if fk.ref_table in by_name and fk.ref_table != name:
                visit(fk.ref_table)
        state[name] = "done"
        ordered.append(by_name[name])

    for schema in schemas:
        visit(schema.name)
    return ordered


def dump_canonical(db: Database) -> bytes:
    """Serialise the whole database to canonical, order-independent bytes.

    Two databases holding the same schemas, rows and ``Table.version``
    counters produce byte-identical output regardless of row insertion
    order — the equality yardstick of the backend-diff oracle and the
    crash-recovery tests.  Rows are sorted by the ``repr`` of their primary
    key (total order even for mixed-type keys); all JSON is emitted with
    sorted keys and fixed separators.
    """
    tables = []
    for name in sorted(db.table_names):
        table = db.table(name)
        rows = [
            row
            for _, row in sorted(table._rows.items(), key=lambda kv: repr(kv[0]))
        ]
        entry = schema_to_dict(table.schema)
        entry["version"] = table.version
        entry["rows"] = rows
        tables.append(entry)
    payload = {"format_version": _FORMAT_VERSION, "tables": tables}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def export_table_csv(db: Database, table_name: str, path: str | Path) -> Path:
    """Export one table to CSV (JSON-encoded cells for complex values)."""
    import csv

    table = db.table(table_name)
    target = Path(path)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        names = table.schema.column_names
        writer.writerow(names)
        for row in table.rows():
            writer.writerow(
                [
                    json.dumps(row[c]) if isinstance(row[c], (dict, list)) else row[c]
                    for c in names
                ]
            )
    return target
