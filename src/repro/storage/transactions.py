"""Context-manager sugar over the database's undo-log transactions.

>>> from repro.storage import Database
>>> from repro.storage.transactions import transaction
>>> db = Database()
>>> # within ``with transaction(db): ...`` an exception rolls everything back
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.storage.database import Database


@contextlib.contextmanager
def transaction(db: Database) -> Iterator[Database]:
    """Run a block atomically: commit on success, roll back on any exception.

    Transactions nest; an inner commit is still undone if an outer block
    fails, because undo entries fold into the parent log.
    """
    db.begin()
    try:
        yield db
    except BaseException:
        db.rollback()
        raise
    else:
        db.commit()
