"""The database: a catalogue of tables plus cross-table integrity.

Responsibilities beyond what :class:`~repro.storage.table.Table` provides:

* table lifecycle (create / drop / lookup),
* foreign-key enforcement on insert, update and delete,
* undo-log transactions (see :mod:`repro.storage.transactions`),
* durability through an attached :class:`~repro.storage.backends.base.StorageBackend`
  (see :mod:`repro.storage.backends`): every physical mutation streams to
  the backend, and :func:`~repro.storage.backends.open_database` rebuilds
  an identical database — rows, versions, insertion order — on restart.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.storage.backends.base import StorageBackend
from repro.storage.cache import QueryCache
from repro.storage.errors import (
    ForeignKeyError,
    SchemaError,
    StorageError,
    TransactionError,
    UnknownTableError,
)
from repro.storage.schema import TableSchema
from repro.storage.table import Table


class Database:
    """A named collection of tables with referential integrity."""

    def __init__(self, backend: StorageBackend | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self._undo_log_stack: list[list[Callable[[], None]]] = []
        #: Shared result cache for the serving path; entries self-invalidate
        #: via table versions (see :mod:`repro.storage.cache`).
        self.query_cache = QueryCache()
        #: Durability mirror, wired by :meth:`attach_backend`.
        self.backend: StorageBackend | None = None
        if backend is not None:
            self.attach_backend(backend)

    # -- durability backend ------------------------------------------------------
    def attach_backend(self, backend: StorageBackend) -> bool:
        """Wire ``backend`` as this database's durability mirror.

        The backend either restores its persisted state into this (empty)
        database or, when it has none, adopts the database's current
        contents as the initial persisted state.  Afterwards every table's
        mutation stream — including undo-log rollbacks — is forwarded to
        the backend.  Returns ``True`` when persisted state was restored.
        """
        if self.backend is not None:
            raise StorageError("database already has a storage backend attached")
        if self.in_transaction:
            raise StorageError("cannot attach a backend inside a transaction")
        had_tables = bool(self._tables)
        restored = backend.attach(self)
        if restored and had_tables:
            raise StorageError(
                "backend restored persisted state into a non-empty database; "
                "attach backends before creating tables"
            )
        self.backend = backend
        for table in self._tables.values():
            table.mutation_sink = backend.on_mutation
        return restored

    def close(self) -> None:
        """Flush and release the attached backend (no-op without one)."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- catalogue ---------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from ``schema``; FK targets must already exist."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            target = self._tables.get(fk.ref_table)
            if target is None:
                raise SchemaError(
                    f"foreign key of {schema.name!r} references unknown table "
                    f"{fk.ref_table!r}"
                )
            target.schema._check_columns_exist(fk.ref_columns)
        table = Table(schema)
        self._tables[schema.name] = table
        if self._undo_log_stack:
            table.undo_sink = self._record_undo
        if self.backend is not None:
            self.backend.on_create_table(schema)
            table.mutation_sink = self.backend.on_mutation
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; refuses while other tables reference it."""
        table = self.table(name)  # raises UnknownTableError if absent
        for other in self._tables.values():
            if other.schema.name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by "
                        f"{other.schema.name!r}"
                    )
        del self._tables[name]
        # The dropped table leaves the catalogue, so commit/rollback would
        # never detach its sink: detach here or a later mutation through the
        # orphaned handle records undo entries into a dead (or wrong) log.
        table.undo_sink = None
        table.mutation_sink = None
        if self.backend is not None:
            self.backend.on_drop_table(name)
        # A same-named table created later restarts versions at zero, which
        # could collide with entries recorded against this table.
        self.query_cache.invalidate_all()

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- mutations with FK checks ---------------------------------------------
    def insert(self, table_name: str, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert into ``table_name`` after verifying outgoing foreign keys."""
        table = self.table(table_name)
        row = table._normalise(values)
        self._check_outgoing_fks(table, row)
        return table.insert(row)

    def update(
        self, table_name: str, pk: Sequence[Any], changes: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Update a row; re-verifies outgoing FKs and inbound references."""
        table = self.table(table_name)
        old = table.get(pk)
        if old is None:
            # Missing row: delegate so Table.update raises its standard error.
            return table.update(pk, changes)
        merged = dict(old)
        merged.update(changes)
        row = table._normalise(merged)
        self._check_outgoing_fks(table, row)
        new_pk = table.schema.pk_tuple(row)
        if new_pk != tuple(pk):
            self._check_no_inbound_references(table, old)
        return table.update(pk, changes)

    def delete(self, table_name: str, pk: Sequence[Any]) -> dict[str, Any]:
        """Delete a row unless another table still references it."""
        table = self.table(table_name)
        row = table.get(pk)
        if row is not None:
            self._check_no_inbound_references(table, row)
        return table.delete(pk)

    def _check_outgoing_fks(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            values = tuple(row[c] for c in fk.columns)
            if any(v is None for v in values):
                continue  # NULL FK components opt out, as in SQL
            target = self.table(fk.ref_table)
            if tuple(fk.ref_columns) == target.schema.primary_key:
                found = target.contains(values)
            else:
                found = bool(target.lookup(fk.ref_columns, values))
            if not found:
                raise ForeignKeyError(
                    f"{table.schema.name}.{fk.columns} -> "
                    f"{fk.ref_table}.{fk.ref_columns}: no row {values!r}"
                )

    def _check_no_inbound_references(self, table: Table, row: dict[str, Any]) -> None:
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table != table.schema.name:
                    continue
                referenced = tuple(row[c] for c in fk.ref_columns)
                if other.lookup(fk.columns, referenced):
                    raise ForeignKeyError(
                        f"row {referenced!r} of {table.schema.name!r} is still "
                        f"referenced by {other.schema.name!r}"
                    )

    # -- transactions ---------------------------------------------------------
    def begin(self) -> None:
        """Open a (possibly nested) transaction."""
        self._undo_log_stack.append([])
        for table in self._tables.values():
            table.undo_sink = self._record_undo

    def commit(self) -> None:
        """Commit the innermost transaction.

        Inside a nested transaction the undo entries are folded into the
        parent so an outer rollback still reverts them.
        """
        if not self._undo_log_stack:
            raise TransactionError("commit without begin")
        finished = self._undo_log_stack.pop()
        if self._undo_log_stack:
            self._undo_log_stack[-1].extend(finished)
        else:
            self._detach_sinks()

    def rollback(self) -> None:
        """Undo every mutation of the innermost transaction."""
        if not self._undo_log_stack:
            raise TransactionError("rollback without begin")
        undo_log = self._undo_log_stack.pop()
        for undo in reversed(undo_log):
            undo()
        if not self._undo_log_stack:
            self._detach_sinks()

    @property
    def in_transaction(self) -> bool:
        return bool(self._undo_log_stack)

    def _record_undo(self, undo: Callable[[], None]) -> None:
        self._undo_log_stack[-1].append(undo)

    def _detach_sinks(self) -> None:
        for table in self._tables.values():
            table.undo_sink = None

    # -- conveniences -----------------------------------------------------------
    def query(self, table_name: str) -> "Query":
        """Start a :class:`~repro.storage.query.Query` over ``table_name``."""
        from repro.storage.query import Query

        return Query.scan(self, table_name)

    def counts(self) -> dict[str, int]:
        """Return ``{table_name: row_count}`` for every table."""
        return {name: len(table) for name, table in self._tables.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database tables={list(self._tables)}>"
