"""In-memory table with integrity enforcement and secondary indexes."""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.storage.backends.base import Mutation
from repro.storage.errors import (
    DuplicateKeyError,
    NotNullViolation,
    StorageError,
    UnknownColumnError,
)
from repro.storage.index import HashIndex, PkTuple, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.types import coerce_value

UndoSink = Callable[[Callable[[], None]], None]
MutationSink = Callable[[Mutation], None]


class Table:
    """Rows of one relation, keyed by primary key.

    All reads hand out *copies* of stored rows so callers can never corrupt
    the table by mutating results; the query layer uses the internal
    iterator for speed and is trusted not to mutate.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        #: Monotonically increasing data version.  Bumped by every physical
        #: mutation — including the undo-log's raw rollback operations — so a
        #: cached query result tagged with the versions of its source tables
        #: is provably stale the moment any of them changed.
        self.version: int = 0
        self._rows: dict[PkTuple, dict[str, Any]] = {}
        self._unique_indexes: list[HashIndex] = [
            HashIndex(constraint, unique=True) for constraint in schema.unique
        ]
        self._hash_indexes: dict[tuple[str, ...], HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        #: Installed by the owning Database while a transaction is active.
        self.undo_sink: UndoSink | None = None
        #: Installed by the owning Database when a storage backend is
        #: attached: receives one Mutation per physical mutation — undo-log
        #: rollbacks included — in exactly the order they were applied, so
        #: a backend replaying the stream reproduces rows, insertion order
        #: and version counters.
        self.mutation_sink: MutationSink | None = None

    def _emit(
        self,
        op: str,
        pk: PkTuple | None = None,
        row: dict[str, Any] | None = None,
        new_pk: PkTuple | None = None,
    ) -> None:
        if self.mutation_sink is not None:
            self.mutation_sink(Mutation(op, self.schema.name, pk, row, new_pk))

    # -- row normalisation ----------------------------------------------------
    def _normalise(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``values`` into a complete, typed row dict."""
        unknown = set(values) - set(self.schema.column_map)
        if unknown:
            raise UnknownColumnError(
                f"table {self.schema.name!r} has no columns {sorted(unknown)}"
            )
        row: dict[str, Any] = {}
        for column in self.schema.columns:
            if column.name in values:
                value = values[column.name]
            elif column.has_default:
                value = column.resolve_default()
            else:
                value = None
            value = coerce_value(value, column.type)
            if value is None and not column.nullable:
                raise NotNullViolation(
                    f"column {self.schema.name}.{column.name} is not nullable"
                )
            row[column.name] = value
        return row

    # -- mutations --------------------------------------------------------------
    def insert(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert a row; returns a copy of what was stored."""
        row = self._normalise(values)
        pk = self.schema.pk_tuple(row)
        if pk in self._rows:
            raise DuplicateKeyError(
                f"duplicate primary key {pk!r} in table {self.schema.name!r}"
            )
        self._index_add(row, pk)
        self._rows[pk] = row
        self.version += 1
        self._emit("insert", pk, row)
        if self.undo_sink is not None:
            self.undo_sink(lambda: self._raw_delete(pk))
        return dict(row)

    def update(self, pk: Sequence[Any], changes: Mapping[str, Any]) -> dict[str, Any]:
        """Apply ``changes`` to the row with primary key ``pk``."""
        pk = tuple(pk)
        old = self._rows.get(pk)
        if old is None:
            raise StorageError(
                f"no row with primary key {pk!r} in table {self.schema.name!r}"
            )
        merged = dict(old)
        merged.update(changes)
        new_row = self._normalise(merged)
        new_pk = self.schema.pk_tuple(new_row)
        if new_pk != pk and new_pk in self._rows:
            raise DuplicateKeyError(
                f"update would duplicate primary key {new_pk!r} "
                f"in table {self.schema.name!r}"
            )
        self._index_remove(old, pk)
        try:
            self._index_add(new_row, new_pk)
        except DuplicateKeyError:
            self._index_add(old, pk)  # roll the index state back
            raise
        del self._rows[pk]
        self._rows[new_pk] = new_row
        self.version += 1
        self._emit("replace", pk, new_row, new_pk)
        if self.undo_sink is not None:
            old_copy = dict(old)
            self.undo_sink(lambda: self._raw_replace(new_pk, pk, old_copy))
        return dict(new_row)

    def delete(self, pk: Sequence[Any]) -> dict[str, Any]:
        """Delete and return (a copy of) the row with primary key ``pk``."""
        pk = tuple(pk)
        row = self._rows.get(pk)
        if row is None:
            raise StorageError(
                f"no row with primary key {pk!r} in table {self.schema.name!r}"
            )
        self._index_remove(row, pk)
        del self._rows[pk]
        self.version += 1
        self._emit("delete", pk)
        if self.undo_sink is not None:
            row_copy = dict(row)
            self.undo_sink(lambda: self._raw_insert(row_copy))
        return dict(row)

    def truncate(self) -> int:
        """Remove every row; returns how many were removed."""
        removed = len(self._rows)
        if self.undo_sink is not None:
            rows_copy = [dict(r) for r in self._rows.values()]

            def undo() -> None:
                for row in rows_copy:
                    self._raw_insert(row)

            self.undo_sink(undo)
        self._rows.clear()
        self.version += 1
        for index in self._all_indexes():
            index.clear()
        self._emit("truncate")
        return removed

    # -- raw (no undo, no validation) ops used by the undo log -----------------
    # These are physical mutations too, so they emit to the mutation sink:
    # a backend replaying the stream reproduces rollbacks exactly (same
    # rows, same version bumps) instead of persisting the rolled-back state.
    def _raw_insert(self, row: dict[str, Any]) -> None:
        pk = self.schema.pk_tuple(row)
        self._index_add(row, pk)
        self._rows[pk] = row
        self.version += 1
        self._emit("insert", pk, row)

    def _raw_delete(self, pk: PkTuple) -> None:
        row = self._rows.pop(pk)
        self._index_remove(row, pk)
        self.version += 1
        self._emit("delete", pk)

    def _raw_replace(self, current_pk: PkTuple, old_pk: PkTuple, old_row: dict) -> None:
        current = self._rows.pop(current_pk)
        self._index_remove(current, current_pk)
        self._index_add(old_row, old_pk)
        self._rows[old_pk] = old_row
        self.version += 1
        self._emit("replace", current_pk, old_row, old_pk)

    def _raw_truncate(self) -> None:
        """Replay-side truncate: clear rows and indexes, one version bump,
        no undo entry and no re-emission."""
        self._rows.clear()
        self.version += 1
        for index in self._all_indexes():
            index.clear()

    # -- reads ------------------------------------------------------------------
    def get(self, pk: Sequence[Any]) -> dict[str, Any] | None:
        """Return a copy of the row with primary key ``pk``, or ``None``."""
        row = self._rows.get(tuple(pk))
        return dict(row) if row is not None else None

    def contains(self, pk: Sequence[Any]) -> bool:
        return tuple(pk) in self._rows

    def rows(self) -> Iterator[dict[str, Any]]:
        """Yield a copy of every row (insertion order)."""
        for row in self._rows.values():
            yield dict(row)

    def _iter_internal(self) -> Iterator[dict[str, Any]]:
        """Yield stored row dicts without copying.  Callers must not mutate."""
        return iter(self._rows.values())

    def pks(self) -> Iterator[PkTuple]:
        return iter(self._rows.keys())

    def __len__(self) -> int:
        return len(self._rows)

    # -- secondary indexes --------------------------------------------------------
    def create_index(self, columns: Sequence[str]) -> HashIndex:
        """Create (or return an existing) hash index over ``columns``."""
        key = tuple(columns)
        self.schema._check_columns_exist(key)
        existing = self._hash_indexes.get(key)
        if existing is not None:
            return existing
        index = HashIndex(key)
        for pk, row in self._rows.items():
            index.add(row, pk)
        self._hash_indexes[key] = index
        return index

    def create_sorted_index(self, column: str) -> SortedIndex:
        """Create (or return an existing) sorted index over ``column``."""
        self.schema._check_columns_exist((column,))
        existing = self._sorted_indexes.get(column)
        if existing is not None:
            return existing
        index = SortedIndex(column)
        for pk, row in self._rows.items():
            index.add(row, pk)
        self._sorted_indexes[column] = index
        return index

    def lookup(self, columns: Sequence[str], values: Sequence[Any]) -> list[dict]:
        """Equality lookup via an index when available, else a scan.

        Returns copies of matching rows.
        """
        key = tuple(columns)
        index = self._hash_indexes.get(key)
        if index is None:
            for unique_index in self._unique_indexes:
                if unique_index.columns == key:
                    index = unique_index
                    break
        if index is not None:
            return [dict(self._rows[pk]) for pk in sorted_pks(index.lookup(*values))]
        wanted = tuple(values)
        return [
            dict(row)
            for row in self._rows.values()
            if tuple(row[c] for c in key) == wanted
        ]

    def _all_indexes(self):
        yield from self._unique_indexes
        yield from self._hash_indexes.values()
        yield from self._sorted_indexes.values()

    def _index_add(self, row: dict[str, Any], pk: PkTuple) -> None:
        added: list = []
        try:
            for index in self._all_indexes():
                index.add(row, pk)
                added.append(index)
        except DuplicateKeyError:
            for index in added:
                index.remove(row, pk)
            raise

    def _index_remove(self, row: dict[str, Any], pk: PkTuple) -> None:
        for index in self._all_indexes():
            index.remove(row, pk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Table {self.schema.name!r} ({len(self)} rows)>"


def sorted_pks(pks: set[PkTuple]) -> list[PkTuple]:
    """Sort primary keys for deterministic lookup output, tolerating mixed
    types by falling back to repr ordering."""
    try:
        return sorted(pks)
    except TypeError:
        return sorted(pks, key=repr)
