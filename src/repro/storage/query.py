"""Relational-algebra query builder.

A :class:`Query` is an immutable pipeline description; ``execute`` runs it
and returns a list of row dicts.  Supported operators: scan, where
(selection), project (with computed columns), inner/left hash joins,
group-by with aggregates, order-by, distinct, limit/offset.

Alongside the callable pipeline every query threads a structural *plan
fingerprint* and the set of source :class:`~repro.storage.table.Table`
objects it reads.  :meth:`Query.execute_cached` uses the pair to memoise
results in the owning database's :class:`~repro.storage.cache.QueryCache`,
keyed on (plan, table versions) — repeated reads between mutations are
served from memory and become stale automatically when any source table's
version moves.  Expression predicates key on their (value-based) ``repr``;
opaque callables key on object identity, so reuse the same function object
to share cache entries.  Queries over ad-hoc row lists have no plan and
simply bypass the cache.

>>> from repro.storage import Database, TableSchema, Column, ColumnType, col
>>> # Query.scan(db, "worker").where(col("skill") > 0.5).order_by("id").execute()
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.storage.database import Database
from repro.storage.errors import StorageError, UnknownColumnError
from repro.storage.expr import Expr
from repro.storage.table import Table

Row = dict[str, Any]

#: name -> (needs_column, fold over values)
_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
    "first": lambda values: values[0] if values else None,
    "collect": list,
}


def _opaque(value: Expr | Callable) -> Hashable:
    """Plan-key component for a predicate/evaluator.

    Expr reprs are compositional over column names and literal values, so
    they identify the computation; arbitrary callables are keyed (and kept
    alive) by object identity.
    """
    return repr(value) if isinstance(value, Expr) else value


class Query:
    """An immutable chain of relational operators."""

    def __init__(
        self,
        source: Callable[[], Iterable[Row]],
        plan: Hashable | None = None,
        tables: tuple[Table, ...] = (),
        db: Database | None = None,
    ) -> None:
        self._source = source
        self._plan = plan
        self._tables = tables
        self._db = db

    def _derive(self, source: Callable[[], Iterable[Row]], op: tuple) -> "Query":
        plan = (*op, self._plan) if self._plan is not None else None
        return Query(source, plan=plan, tables=self._tables, db=self._db)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def scan(cls, db: Database, table_name: str) -> "Query":
        """Full scan of a table (rows are not copied until projection)."""
        table = db.table(table_name)

        def source() -> Iterable[Row]:
            return table._iter_internal()

        return cls(source, plan=("scan", table_name), tables=(table,), db=db)

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "Query":
        """Query over an in-memory list of row dicts (never cached)."""
        materialised = list(rows)
        return cls(lambda: materialised)

    # -- operators --------------------------------------------------------------
    def where(self, predicate: Expr | Callable[[Row], bool]) -> "Query":
        """Keep rows satisfying ``predicate`` (an Expr or a plain callable)."""
        test = predicate.evaluate if isinstance(predicate, Expr) else predicate
        parent = self._source
        return self._derive(
            lambda: (row for row in parent() if test(row)),
            ("where", _opaque(predicate)),
        )

    def project(self, *columns: str, **computed: Expr | Callable[[Row], Any]) -> "Query":
        """Project to ``columns`` plus ``computed`` alias=expression pairs."""
        parent = self._source
        evaluators = {
            alias: (value.evaluate if isinstance(value, Expr) else value)
            for alias, value in computed.items()
        }

        def source() -> Iterable[Row]:
            for row in parent():
                try:
                    out = {name: row[name] for name in columns}
                except KeyError as exc:
                    raise UnknownColumnError(
                        f"projection references missing column {exc.args[0]!r}"
                    ) from None
                for alias, evaluate in evaluators.items():
                    out[alias] = evaluate(row)
                yield out

        op = (
            "project",
            columns,
            tuple((alias, _opaque(value)) for alias, value in computed.items()),
        )
        return self._derive(source, op)

    def rename(self, **mapping: str) -> "Query":
        """Rename columns: ``rename(new=old)``; unlisted columns pass through."""
        parent = self._source
        inverse = {old: new for new, old in mapping.items()}

        def source() -> Iterable[Row]:
            for row in parent():
                yield {inverse.get(name, name): value for name, value in row.items()}

        return self._derive(source, ("rename", tuple(sorted(mapping.items()))))

    def prefix(self, prefix: str) -> "Query":
        """Prefix every column name (used to disambiguate join sides)."""
        parent = self._source

        def source() -> Iterable[Row]:
            for row in parent():
                yield {f"{prefix}{name}": value for name, value in row.items()}

        return self._derive(source, ("prefix", prefix))

    def join(
        self,
        other: "Query",
        on: Sequence[tuple[str, str]],
        how: str = "inner",
    ) -> "Query":
        """Hash join with ``other``; ``on`` is (left_column, right_column) pairs.

        ``how`` is ``"inner"`` or ``"left"``.  On a left join, unmatched left
        rows get ``None`` for every right column.  Name collisions are an
        error — disambiguate with :meth:`prefix` or :meth:`rename` first.
        """
        if how not in ("inner", "left"):
            raise StorageError(f"unsupported join type: {how!r}")
        if not on:
            raise StorageError("join requires at least one column pair")
        left_cols = [pair[0] for pair in on]
        right_cols = [pair[1] for pair in on]
        parent = self._source
        other_source = other._source

        def source() -> Iterable[Row]:
            table: dict[tuple, list[Row]] = {}
            right_columns: list[str] = []
            for row in other_source():
                if not right_columns:
                    right_columns = list(row.keys())
                key = tuple(row[c] for c in right_cols)
                table.setdefault(key, []).append(row)
            for row in parent():
                key = tuple(row[c] for c in left_cols)
                matches = table.get(key, ())
                if matches:
                    for match in matches:
                        merged = dict(row)
                        for name, value in match.items():
                            if name in merged and name not in right_cols:
                                raise StorageError(
                                    f"join column collision on {name!r}; "
                                    "use .prefix() to disambiguate"
                                )
                            if name not in left_cols or name not in merged:
                                merged[name] = value
                        yield merged
                elif how == "left":
                    merged = dict(row)
                    for name in right_columns:
                        merged.setdefault(name, None)
                    yield merged

        plan = None
        if self._plan is not None and other._plan is not None:
            plan = ("join", self._plan, other._plan, tuple(map(tuple, on)), how)
        return Query(
            source,
            plan=plan,
            tables=self._tables + other._tables,
            db=self._db or other._db,
        )

    def group_by(self, *keys: str) -> "GroupedQuery":
        """Group rows by ``keys`` in preparation for :meth:`GroupedQuery.aggregate`."""
        return GroupedQuery(
            self._source, keys, plan=self._plan, tables=self._tables, db=self._db
        )

    def order_by(self, *columns: str, desc: bool = False) -> "Query":
        """Sort by ``columns``; ``None`` sorts first (ascending)."""
        parent = self._source

        def sort_key(row: Row) -> tuple:
            key = []
            for name in columns:
                value = row[name]
                key.append((value is not None, value) if not desc else (value is None, value))
            return tuple(key)

        def source() -> Iterable[Row]:
            try:
                return sorted(parent(), key=sort_key, reverse=desc)
            except TypeError as exc:
                raise StorageError(f"order_by on incomparable values: {exc}") from exc

        return self._derive(source, ("order_by", columns, desc))

    def distinct(self) -> "Query":
        """Drop duplicate rows (all columns considered)."""
        parent = self._source

        def source() -> Iterable[Row]:
            seen: set[tuple] = set()
            for row in parent():
                key = tuple(sorted((k, _freeze(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    yield row

        return self._derive(source, ("distinct",))

    def limit(self, count: int, offset: int = 0) -> "Query":
        """Keep ``count`` rows after skipping ``offset``."""
        if count < 0 or offset < 0:
            raise StorageError("limit/offset must be non-negative")
        parent = self._source

        def source() -> Iterable[Row]:
            for position, row in enumerate(parent()):
                if position < offset:
                    continue
                if position >= offset + count:
                    break
                yield row

        return self._derive(source, ("limit", count, offset))

    # -- execution ---------------------------------------------------------------
    def execute(self) -> list[Row]:
        """Run the pipeline, returning fresh row dicts."""
        return [dict(row) for row in self._source()]

    @property
    def cacheable(self) -> bool:
        """True when the pipeline has a structural plan rooted in table scans."""
        return self._plan is not None and self._db is not None

    def execute_cached(self) -> list[Row]:
        """Like :meth:`execute`, memoised in the database's query cache.

        Results are keyed on (plan fingerprint, source-table versions); any
        mutation of a source table — including a transaction rollback —
        bumps its version and forces recomputation.  Rows are copied on
        every call, so callers may mutate them freely.  Uncacheable queries
        (ad-hoc row sources, no database) fall back to :meth:`execute`.
        """
        if not self.cacheable:
            return self.execute()
        rows = self._db.query_cache.fetch(
            self._plan, self._tables, lambda: [dict(row) for row in self._source()]
        )
        return [dict(row) for row in rows]

    def count(self) -> int:
        """Number of result rows (no materialisation of dict copies)."""
        return sum(1 for _ in self._source())

    def first(self) -> Row | None:
        """First result row or ``None``."""
        for row in self._source():
            return dict(row)
        return None

    def scalars(self, column: str) -> list[Any]:
        """The values of one column, in pipeline order."""
        return [row[column] for row in self._source()]


class GroupedQuery:
    """Intermediate produced by :meth:`Query.group_by`."""

    def __init__(
        self,
        source: Callable[[], Iterable[Row]],
        keys: tuple[str, ...],
        plan: Hashable | None = None,
        tables: tuple[Table, ...] = (),
        db: Database | None = None,
    ) -> None:
        self._source = source
        self._keys = keys
        self._plan = plan
        self._tables = tables
        self._db = db

    def aggregate(self, **specs: tuple[str, str | None]) -> Query:
        """Aggregate each group.

        Each keyword maps an output alias to ``(function, column)`` where
        function is one of count/sum/min/max/avg/first/collect and column may
        be ``None`` only for ``count``.

        >>> # q.group_by("team").aggregate(n=("count", None), best=("max", "skill"))
        """
        for alias, (func, column) in specs.items():
            if func not in _AGGREGATES:
                raise StorageError(f"unknown aggregate {func!r} for {alias!r}")
            if column is None and func != "count":
                raise StorageError(f"aggregate {func!r} needs a column")
        parent = self._source
        keys = self._keys

        def source() -> Iterable[Row]:
            groups: dict[tuple, list[Row]] = {}
            for row in parent():
                groups.setdefault(tuple(row[k] for k in keys), []).append(row)
            for key_values, members in groups.items():
                out: Row = dict(zip(keys, key_values))
                for alias, (func, column) in specs.items():
                    values = (
                        members
                        if column is None
                        else [m[column] for m in members if m[column] is not None]
                    )
                    if column is None:
                        out[alias] = len(members)
                    elif not values and func in ("min", "max", "sum"):
                        out[alias] = None if func != "sum" else 0
                    else:
                        out[alias] = _AGGREGATES[func](values)
                yield out

        plan = None
        if self._plan is not None:
            plan = (
                "aggregate",
                keys,
                tuple((alias, spec) for alias, spec in specs.items()),
                self._plan,
            )
        return Query(source, plan=plan, tables=self._tables, db=self._db)


def _freeze(value: Any) -> Any:
    """Make a value hashable for DISTINCT (lists/dicts become tuples)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, set)):
        return tuple(_freeze(v) for v in value)
    return value
