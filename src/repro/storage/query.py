"""Relational-algebra query builder.

A :class:`Query` is an immutable pipeline description; ``execute`` runs it
and returns a list of row dicts.  Supported operators: scan, where
(selection), project (with computed columns), inner/left hash joins,
group-by with aggregates, order-by, distinct, limit/offset.

>>> from repro.storage import Database, TableSchema, Column, ColumnType, col
>>> # Query.scan(db, "worker").where(col("skill") > 0.5).order_by("id").execute()
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.storage.database import Database
from repro.storage.errors import StorageError, UnknownColumnError
from repro.storage.expr import Expr

Row = dict[str, Any]

#: name -> (needs_column, fold over values)
_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
    "first": lambda values: values[0] if values else None,
    "collect": list,
}


class Query:
    """An immutable chain of relational operators."""

    def __init__(self, source: Callable[[], Iterable[Row]]) -> None:
        self._source = source

    # -- constructors ---------------------------------------------------------
    @classmethod
    def scan(cls, db: Database, table_name: str) -> "Query":
        """Full scan of a table (rows are not copied until projection)."""
        table = db.table(table_name)

        def source() -> Iterable[Row]:
            return table._iter_internal()

        return cls(source)

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "Query":
        """Query over an in-memory list of row dicts."""
        materialised = list(rows)
        return cls(lambda: materialised)

    # -- operators --------------------------------------------------------------
    def where(self, predicate: Expr | Callable[[Row], bool]) -> "Query":
        """Keep rows satisfying ``predicate`` (an Expr or a plain callable)."""
        test = predicate.evaluate if isinstance(predicate, Expr) else predicate
        parent = self._source
        return Query(lambda: (row for row in parent() if test(row)))

    def project(self, *columns: str, **computed: Expr | Callable[[Row], Any]) -> "Query":
        """Project to ``columns`` plus ``computed`` alias=expression pairs."""
        parent = self._source
        evaluators = {
            alias: (value.evaluate if isinstance(value, Expr) else value)
            for alias, value in computed.items()
        }

        def source() -> Iterable[Row]:
            for row in parent():
                try:
                    out = {name: row[name] for name in columns}
                except KeyError as exc:
                    raise UnknownColumnError(
                        f"projection references missing column {exc.args[0]!r}"
                    ) from None
                for alias, evaluate in evaluators.items():
                    out[alias] = evaluate(row)
                yield out

        return Query(source)

    def rename(self, **mapping: str) -> "Query":
        """Rename columns: ``rename(new=old)``; unlisted columns pass through."""
        parent = self._source
        inverse = {old: new for new, old in mapping.items()}

        def source() -> Iterable[Row]:
            for row in parent():
                yield {inverse.get(name, name): value for name, value in row.items()}

        return Query(source)

    def prefix(self, prefix: str) -> "Query":
        """Prefix every column name (used to disambiguate join sides)."""
        parent = self._source

        def source() -> Iterable[Row]:
            for row in parent():
                yield {f"{prefix}{name}": value for name, value in row.items()}

        return Query(source)

    def join(
        self,
        other: "Query",
        on: Sequence[tuple[str, str]],
        how: str = "inner",
    ) -> "Query":
        """Hash join with ``other``; ``on`` is (left_column, right_column) pairs.

        ``how`` is ``"inner"`` or ``"left"``.  On a left join, unmatched left
        rows get ``None`` for every right column.  Name collisions are an
        error — disambiguate with :meth:`prefix` or :meth:`rename` first.
        """
        if how not in ("inner", "left"):
            raise StorageError(f"unsupported join type: {how!r}")
        if not on:
            raise StorageError("join requires at least one column pair")
        left_cols = [pair[0] for pair in on]
        right_cols = [pair[1] for pair in on]
        parent = self._source
        other_source = other._source

        def source() -> Iterable[Row]:
            table: dict[tuple, list[Row]] = {}
            right_columns: list[str] = []
            for row in other_source():
                if not right_columns:
                    right_columns = list(row.keys())
                key = tuple(row[c] for c in right_cols)
                table.setdefault(key, []).append(row)
            for row in parent():
                key = tuple(row[c] for c in left_cols)
                matches = table.get(key, ())
                if matches:
                    for match in matches:
                        merged = dict(row)
                        for name, value in match.items():
                            if name in merged and name not in right_cols:
                                raise StorageError(
                                    f"join column collision on {name!r}; "
                                    "use .prefix() to disambiguate"
                                )
                            if name not in left_cols or name not in merged:
                                merged[name] = value
                        yield merged
                elif how == "left":
                    merged = dict(row)
                    for name in right_columns:
                        merged.setdefault(name, None)
                    yield merged

        return Query(source)

    def group_by(self, *keys: str) -> "GroupedQuery":
        """Group rows by ``keys`` in preparation for :meth:`GroupedQuery.aggregate`."""
        return GroupedQuery(self._source, keys)

    def order_by(self, *columns: str, desc: bool = False) -> "Query":
        """Sort by ``columns``; ``None`` sorts first (ascending)."""
        parent = self._source

        def sort_key(row: Row) -> tuple:
            key = []
            for name in columns:
                value = row[name]
                key.append((value is not None, value) if not desc else (value is None, value))
            return tuple(key)

        def source() -> Iterable[Row]:
            try:
                return sorted(parent(), key=sort_key, reverse=desc)
            except TypeError as exc:
                raise StorageError(f"order_by on incomparable values: {exc}") from exc

        return Query(source)

    def distinct(self) -> "Query":
        """Drop duplicate rows (all columns considered)."""
        parent = self._source

        def source() -> Iterable[Row]:
            seen: set[tuple] = set()
            for row in parent():
                key = tuple(sorted((k, _freeze(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    yield row

        return Query(source)

    def limit(self, count: int, offset: int = 0) -> "Query":
        """Keep ``count`` rows after skipping ``offset``."""
        if count < 0 or offset < 0:
            raise StorageError("limit/offset must be non-negative")
        parent = self._source

        def source() -> Iterable[Row]:
            for position, row in enumerate(parent()):
                if position < offset:
                    continue
                if position >= offset + count:
                    break
                yield row

        return Query(source)

    # -- execution ---------------------------------------------------------------
    def execute(self) -> list[Row]:
        """Run the pipeline, returning fresh row dicts."""
        return [dict(row) for row in self._source()]

    def count(self) -> int:
        """Number of result rows (no materialisation of dict copies)."""
        return sum(1 for _ in self._source())

    def first(self) -> Row | None:
        """First result row or ``None``."""
        for row in self._source():
            return dict(row)
        return None

    def scalars(self, column: str) -> list[Any]:
        """The values of one column, in pipeline order."""
        return [row[column] for row in self._source()]


class GroupedQuery:
    """Intermediate produced by :meth:`Query.group_by`."""

    def __init__(self, source: Callable[[], Iterable[Row]], keys: tuple[str, ...]) -> None:
        self._source = source
        self._keys = keys

    def aggregate(self, **specs: tuple[str, str | None]) -> Query:
        """Aggregate each group.

        Each keyword maps an output alias to ``(function, column)`` where
        function is one of count/sum/min/max/avg/first/collect and column may
        be ``None`` only for ``count``.

        >>> # q.group_by("team").aggregate(n=("count", None), best=("max", "skill"))
        """
        for alias, (func, column) in specs.items():
            if func not in _AGGREGATES:
                raise StorageError(f"unknown aggregate {func!r} for {alias!r}")
            if column is None and func != "count":
                raise StorageError(f"aggregate {func!r} needs a column")
        parent = self._source
        keys = self._keys

        def source() -> Iterable[Row]:
            groups: dict[tuple, list[Row]] = {}
            for row in parent():
                groups.setdefault(tuple(row[k] for k in keys), []).append(row)
            for key_values, members in groups.items():
                out: Row = dict(zip(keys, key_values))
                for alias, (func, column) in specs.items():
                    values = (
                        members
                        if column is None
                        else [m[column] for m in members if m[column] is not None]
                    )
                    if column is None:
                        out[alias] = len(members)
                    elif not values and func in ("min", "max", "sum"):
                        out[alias] = None if func != "sum" else 0
                    else:
                        out[alias] = _AGGREGATES[func](values)
                yield out

        return Query(source)


def _freeze(value: Any) -> Any:
    """Make a value hashable for DISTINCT (lists/dicts become tuples)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, set)):
        return tuple(_freeze(v) for v in value)
    return value
