"""SQLite durability backend (stdlib ``sqlite3``, WAL journal mode).

One SQLite file mirrors the whole database:

* ``r_<table>`` — the row mirror of each relation:
  ``(seq INTEGER PRIMARY KEY AUTOINCREMENT, pk TEXT UNIQUE, row TEXT)``.
  ``seq`` order *is* insertion order; a replace deletes the old row and
  inserts a fresh one, which moves it to the end exactly like the
  in-memory table's ``del`` + re-insert on a Python dict.
* ``_catalog`` — one row per relation with its JSON schema and the exact
  ``Table.version`` counter, bumped inside the same transaction as every
  mutation so recovery restores versions precisely.
* ``l_<listing>`` — materialized listing tables (see :class:`ListingSpec`)
  kept in lockstep with their source relation and indexed by the listing
  key, so the hot worker-page query is a single indexed SQL lookup
  instead of a scan + projection.
* ``_meta`` — format version and backend marker.

Every mutation runs in its own ``BEGIN IMMEDIATE`` transaction, so a
kill at any point leaves the file at a committed prefix of the mutation
stream — the same guarantee the JSONL WAL gets from line-atomic appends.

Pragmas follow the usual embedded-write-heavy recipe: WAL journal mode
(readers don't block the writer), ``synchronous=NORMAL`` (safe with WAL),
foreign keys on, and a generous busy timeout.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.storage.backends.base import Mutation, StorageBackend
from repro.storage.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database
    from repro.storage.schema import TableSchema

_FORMAT_VERSION = 1

_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA foreign_keys=ON",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA busy_timeout=30000",
)


@dataclass(frozen=True)
class ListingSpec:
    """A materialized listing: a keyed projection of one source relation.

    ``columns`` are projected from every row of ``source`` into the
    listing table; ``key`` (one of the projected columns) gets an index,
    making :meth:`SqliteBackend.query_listing` an O(matches) lookup.
    """

    name: str
    source: str
    key: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.key not in self.columns:
            raise StorageError(
                f"listing {self.name!r}: key {self.key!r} must be one of "
                f"its projected columns {self.columns!r}"
            )


#: The hot path of the platform's serving tier: "which tasks does this
#: worker currently stand in relation to?" — the worker-page query.
WORKER_PAGE_LISTING = ListingSpec(
    name="worker_page",
    source="relationship",
    key="worker_id",
    columns=("worker_id", "task_id", "status"),
)

DEFAULT_LISTINGS = (WORKER_PAGE_LISTING,)


def _encode_pk(pk: tuple[Any, ...]) -> str:
    return json.dumps(list(pk), separators=(",", ":"))


class SqliteBackend(StorageBackend):
    """Durability mirror backed by a single SQLite file in WAL mode."""

    name = "sqlite"

    def __init__(
        self,
        path: str | Path,
        *,
        listings: tuple[ListingSpec, ...] = DEFAULT_LISTINGS,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._listings: dict[str, list[ListingSpec]] = {}
        for spec in listings:
            self._listings.setdefault(spec.source, []).append(spec)
        # isolation_level=None puts sqlite3 in autocommit mode so the
        # explicit BEGIN IMMEDIATE / COMMIT in _Txn owns transaction scope.
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        self._closed = False
        for pragma in _PRAGMAS:
            self._conn.execute(pragma)
        cur = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='_meta'"
        )
        if cur.fetchone() is None:
            with self._txn():
                self._conn.execute(
                    "CREATE TABLE _meta (key TEXT PRIMARY KEY, value TEXT)"
                )
                self._conn.execute(
                    "CREATE TABLE _catalog ("
                    "name TEXT PRIMARY KEY, schema TEXT NOT NULL, "
                    "version INTEGER NOT NULL DEFAULT 0)"
                )
                self._conn.execute(
                    "INSERT INTO _meta VALUES ('backend', ?), ('format_version', ?)",
                    (self.name, str(_FORMAT_VERSION)),
                )
        else:
            meta = dict(self._conn.execute("SELECT key, value FROM _meta"))
            if meta.get("backend") != self.name:
                raise StorageError(
                    f"{self.path} holds a {meta.get('backend')!r} database, "
                    f"not a sqlite-backend one"
                )
            if meta.get("format_version") != str(_FORMAT_VERSION):
                raise StorageError(
                    f"unsupported sqlite backend format: {meta.get('format_version')!r}"
                )

    # -- transactions --------------------------------------------------------
    def _txn(self):
        return _Txn(self._conn)

    # -- recovery ------------------------------------------------------------
    def restore_into(self, db: "Database") -> bool:
        from repro.storage.persistence import schema_from_dict, topological_order

        catalog = list(
            self._conn.execute("SELECT name, schema, version FROM _catalog")
        )
        if not catalog:
            return False
        schemas = {
            name: schema_from_dict(json.loads(blob)) for name, blob, _ in catalog
        }
        versions = {name: int(version) for name, _, version in catalog}
        for schema in topological_order(list(schemas.values())):
            db.create_table(schema)
        for name in schemas:
            table = db.table(name)
            for (blob,) in self._conn.execute(
                f'SELECT row FROM "r_{name}" ORDER BY seq'
            ):
                table._raw_insert(table._normalise(json.loads(blob)))
            table.version = versions[name]
        return True

    # -- catalogue hooks -----------------------------------------------------
    def on_create_table(self, schema: "TableSchema") -> None:
        from repro.storage.persistence import schema_to_dict

        name = schema.name
        with self._txn():
            self._conn.execute(
                f'CREATE TABLE IF NOT EXISTS "r_{name}" ('
                "seq INTEGER PRIMARY KEY AUTOINCREMENT, "
                "pk TEXT UNIQUE NOT NULL, row TEXT NOT NULL)"
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO _catalog (name, schema, version) "
                "VALUES (?, ?, 0)",
                (name, json.dumps(schema_to_dict(schema), sort_keys=True)),
            )
            for spec in self._listings.get(name, ()):
                self._create_listing_table(spec)

    def _create_listing_table(self, spec: ListingSpec) -> None:
        cols = ", ".join(f'"{c}" TEXT' for c in spec.columns)
        self._conn.execute(
            f'CREATE TABLE IF NOT EXISTS "l_{spec.name}" '
            f"(pk TEXT PRIMARY KEY, {cols})"
        )
        self._conn.execute(
            f'CREATE INDEX IF NOT EXISTS "idx_l_{spec.name}_key" '
            f'ON "l_{spec.name}" ("{spec.key}")'
        )

    def on_drop_table(self, name: str) -> None:
        with self._txn():
            self._conn.execute(f'DROP TABLE IF EXISTS "r_{name}"')
            self._conn.execute("DELETE FROM _catalog WHERE name = ?", (name,))
            for spec in self._listings.get(name, ()):
                self._conn.execute(f'DROP TABLE IF EXISTS "l_{spec.name}"')

    # -- mutation hook -------------------------------------------------------
    def on_mutation(self, mutation: Mutation) -> None:
        name = mutation.table
        with self._txn():
            if mutation.op == "insert":
                self._conn.execute(
                    f'INSERT INTO "r_{name}" (pk, row) VALUES (?, ?)',
                    (_encode_pk(mutation.pk), json.dumps(mutation.row, sort_keys=True)),
                )
            elif mutation.op == "delete":
                self._conn.execute(
                    f'DELETE FROM "r_{name}" WHERE pk = ?', (_encode_pk(mutation.pk),)
                )
            elif mutation.op == "replace":
                # Delete + fresh insert: the row takes a new seq and moves
                # to the end, mirroring the in-memory dict's del+reinsert.
                self._conn.execute(
                    f'DELETE FROM "r_{name}" WHERE pk = ?', (_encode_pk(mutation.pk),)
                )
                self._conn.execute(
                    f'INSERT INTO "r_{name}" (pk, row) VALUES (?, ?)',
                    (
                        _encode_pk(mutation.new_pk),
                        json.dumps(mutation.row, sort_keys=True),
                    ),
                )
            elif mutation.op == "truncate":
                self._conn.execute(f'DELETE FROM "r_{name}"')
            else:
                raise StorageError(f"unknown mutation opcode {mutation.op!r}")
            self._conn.execute(
                "UPDATE _catalog SET version = version + 1 WHERE name = ?", (name,)
            )
            for spec in self._listings.get(name, ()):
                self._apply_listing(spec, mutation)

    def _apply_listing(self, spec: ListingSpec, mutation: Mutation) -> None:
        lname = f"l_{spec.name}"
        if mutation.op == "truncate":
            self._conn.execute(f'DELETE FROM "{lname}"')
            return
        if mutation.op in ("delete", "replace"):
            self._conn.execute(
                f'DELETE FROM "{lname}" WHERE pk = ?', (_encode_pk(mutation.pk),)
            )
        if mutation.op in ("insert", "replace"):
            pk = mutation.new_pk if mutation.op == "replace" else mutation.pk
            cols = ", ".join(f'"{c}"' for c in spec.columns)
            marks = ", ".join("?" for _ in spec.columns)
            self._conn.execute(
                f'INSERT OR REPLACE INTO "{lname}" (pk, {cols}) '
                f"VALUES (?, {marks})",
                (_encode_pk(pk), *(mutation.row[c] for c in spec.columns)),
            )

    # -- listing queries -----------------------------------------------------
    def query_listing(self, listing: str, key_value: Any) -> list[dict[str, Any]]:
        """Fetch a materialized listing by its key (indexed lookup)."""
        for specs in self._listings.values():
            for spec in specs:
                if spec.name == listing:
                    cols = ", ".join(f'"{c}"' for c in spec.columns)
                    rows = self._conn.execute(
                        f'SELECT {cols} FROM "l_{spec.name}" '
                        f'WHERE "{spec.key}" = ? ORDER BY pk',
                        (key_value,),
                    )
                    return [dict(zip(spec.columns, row)) for row in rows]
        raise StorageError(f"no materialized listing named {listing!r}")

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        if not self._closed:
            self._conn.execute("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.close()

    def describe(self) -> dict[str, Any]:
        listings = [spec.name for specs in self._listings.values() for spec in specs]
        return {
            "backend": self.name,
            "path": str(self.path),
            "listings": sorted(listings),
        }


class _Txn:
    """``BEGIN IMMEDIATE`` … ``COMMIT`` / ``ROLLBACK`` context manager."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")
