"""Write-ahead-logged durability for the in-memory store.

Layout of a WAL-backed database directory::

    <dir>/backend.json     # {"backend": "wal", "format_version": 1}
    <dir>/snapshot/        # last compaction: catalog.json + <table>.jsonl
    <dir>/wal.jsonl        # one JSON record per physical mutation since

Every physical mutation of every table — inserts, deletes, replaces,
truncates, catalogue changes and the undo log's rollback operations —
appends one JSONL record carrying a global LSN.  Recovery loads the
snapshot (exact ``Table.version`` counters included), then replays the
records with ``lsn > snapshot.last_lsn`` in order; because one record
corresponds to exactly one version bump, the recovered database matches
the crashed one byte-for-byte (rows, insertion order *and* versions).

A torn tail — the process died mid-append — shows up as a final line
that is not valid JSON or lacks its newline; recovery truncates the file
back to the last complete record and restores exactly the committed
prefix.

Compaction (automatic every ``compact_every`` records, or explicit via
:meth:`WalBackend.compact`) rewrites the snapshot from the live database
and resets the log.  The dance is crash-safe at every step: the fresh
snapshot is fully written under ``snapshot.tmp`` before any rename, the
previous snapshot survives as ``snapshot.old`` until the new one is in
place, and the LSN filter makes replaying a not-yet-truncated log over a
new snapshot a no-op.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.storage.backends.base import Mutation, StorageBackend
from repro.storage.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database
    from repro.storage.table import Table

_FORMAT_VERSION = 1
_MARKER = "backend.json"
_WAL = "wal.jsonl"
_SNAPSHOT = "snapshot"
_SNAPSHOT_TMP = "snapshot.tmp"
_SNAPSHOT_OLD = "snapshot.old"


class WalBackend(StorageBackend):
    """Append-per-mutation JSONL log with snapshot compaction.

    ``compact_every`` bounds the log length (and therefore recovery time);
    ``fsync=True`` additionally fsyncs after every record for
    power-failure durability — the default flushes to the OS after every
    record, which survives process crashes (the kill-and-recover oracle)
    without paying the fsync latency on the hot path.
    """

    name = "wal"

    def __init__(
        self,
        directory: str | Path,
        *,
        compact_every: int = 10_000,
        fsync: bool = False,
    ) -> None:
        if compact_every < 1:
            raise StorageError(f"compact_every must be >= 1, got {compact_every}")
        self.root = Path(directory)
        self.compact_every = compact_every
        self.fsync = fsync
        self._lsn = 0
        self._records_since_compact = 0
        self._fh = None
        self._closed = False
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / _MARKER
        if marker.exists():
            info = json.loads(marker.read_text(encoding="utf-8"))
            if info.get("backend") != self.name:
                raise StorageError(
                    f"{self.root} holds a {info.get('backend')!r} database, "
                    f"not a WAL one"
                )
            if info.get("format_version") != _FORMAT_VERSION:
                raise StorageError(
                    f"unsupported WAL format version: {info.get('format_version')!r}"
                )
        else:
            marker.write_text(
                json.dumps({"backend": self.name, "format_version": _FORMAT_VERSION})
                + "\n",
                encoding="utf-8",
            )

    # -- recovery -----------------------------------------------------------
    def restore_into(self, db: "Database") -> bool:
        from repro.storage.persistence import schema_from_dict, topological_order

        snapshot_dir = self._usable_snapshot()
        wal_path = self.root / _WAL
        had_state = snapshot_dir is not None or wal_path.exists()
        snapshot_lsn = 0
        if snapshot_dir is not None:
            catalog = json.loads(
                (snapshot_dir / "catalog.json").read_text(encoding="utf-8")
            )
            snapshot_lsn = int(catalog.get("last_lsn", 0))
            schemas = [schema_from_dict(entry) for entry in catalog["tables"]]
            versions = {
                entry["name"]: int(entry["version"]) for entry in catalog["tables"]
            }
            for schema in topological_order(schemas):
                db.create_table(schema)
            for entry in catalog["tables"]:
                name = entry["name"]
                table = db.table(name)
                rows_path = snapshot_dir / f"{name}.jsonl"
                if rows_path.exists():
                    with rows_path.open("r", encoding="utf-8") as handle:
                        for line in handle:
                            line = line.strip()
                            if line:
                                table._raw_insert(table._normalise(json.loads(line)))
                # Exact restore: the version the live table had at the
                # moment the snapshot was cut (replayed records bump from
                # here, one bump per record, like the original mutations).
                table.version = versions[name]
        self._lsn = max(snapshot_lsn, self._replay_wal(db, wal_path, snapshot_lsn))
        self._records_since_compact = self._count_live_records(wal_path, snapshot_lsn)
        self._fh = wal_path.open("a", encoding="utf-8")
        return had_state

    def _usable_snapshot(self) -> Path | None:
        """The newest fully-written snapshot directory, if any."""
        for candidate in (_SNAPSHOT, _SNAPSHOT_OLD):
            path = self.root / candidate
            if (path / "catalog.json").exists():
                return path
        return None

    def _replay_wal(self, db: "Database", wal_path: Path, skip_upto: int) -> int:
        """Apply complete records with ``lsn > skip_upto``; truncate a torn
        tail.  Returns the last applied (or seen) LSN."""
        if not wal_path.exists():
            return skip_upto
        last_lsn = skip_upto
        good_end = 0
        with wal_path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail: the append died mid-write
                try:
                    record = json.loads(raw.decode("utf-8"))
                    lsn = int(record["lsn"])
                    if lsn > skip_upto:
                        self._apply(db, record)
                        last_lsn = lsn
                    good_end += len(raw)
                except (ValueError, KeyError, TypeError):
                    break  # torn or corrupt record: keep the committed prefix
        if good_end < wal_path.stat().st_size:
            with wal_path.open("rb+") as handle:
                handle.truncate(good_end)
        return last_lsn

    def _count_live_records(self, wal_path: Path, snapshot_lsn: int) -> int:
        if not wal_path.exists():
            return 0
        count = 0
        with wal_path.open("rb") as handle:
            for raw in handle:
                record = json.loads(raw.decode("utf-8"))
                if int(record["lsn"]) > snapshot_lsn:
                    count += 1
        return count

    @staticmethod
    def _apply(db: "Database", record: dict[str, Any]) -> None:
        from repro.storage.persistence import schema_from_dict

        op = record["op"]
        if op == "create_table":
            db.create_table(schema_from_dict(record["schema"]))
            return
        if op == "drop_table":
            db.drop_table(record["t"])
            return
        table: "Table" = db.table(record["t"])
        if op == "insert":
            table._raw_insert(table._normalise(record["row"]))
        elif op == "delete":
            table._raw_delete(tuple(record["pk"]))
        elif op == "replace":
            table._raw_replace(
                tuple(record["pk"]),
                table.schema.pk_tuple(record["row"]),
                table._normalise(record["row"]),
            )
        elif op == "truncate":
            table._raw_truncate()
        else:
            raise StorageError(f"unknown WAL opcode {op!r}")

    # -- logging ------------------------------------------------------------
    def on_create_table(self, schema) -> None:
        from repro.storage.persistence import schema_to_dict

        self._append({"op": "create_table", "schema": schema_to_dict(schema)})

    def on_drop_table(self, name: str) -> None:
        self._append({"op": "drop_table", "t": name})

    def on_mutation(self, mutation: Mutation) -> None:
        record: dict[str, Any] = {"op": mutation.op, "t": mutation.table}
        if mutation.pk is not None:
            record["pk"] = list(mutation.pk)
        if mutation.row is not None:
            record["row"] = mutation.row
        self._append(record)

    def _append(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise StorageError("WAL backend is not attached to a database")
        self._lsn += 1
        record["lsn"] = self._lsn
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._records_since_compact += 1
        if self._records_since_compact >= self.compact_every:
            self.compact()

    # -- compaction ---------------------------------------------------------
    def compact(self) -> Path:
        """Rewrite the snapshot from the live database and reset the log."""
        from repro.storage.persistence import schema_to_dict

        if self._db is None or self._fh is None:
            raise StorageError("WAL backend is not attached to a database")
        db = self._db
        tmp = self.root / _SNAPSHOT_TMP
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        tables = []
        for name in db.table_names:
            table = db.table(name)
            entry = schema_to_dict(table.schema)
            entry["version"] = table.version
            tables.append(entry)
            with (tmp / f"{name}.jsonl").open("w", encoding="utf-8") as handle:
                for row in table._rows.values():
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
        catalog = {
            "format_version": _FORMAT_VERSION,
            "last_lsn": self._lsn,
            "tables": tables,
        }
        (tmp / "catalog.json").write_text(
            json.dumps(catalog, indent=2, sort_keys=True), encoding="utf-8"
        )
        # Crash-safe swap: the old snapshot survives until the new one is
        # fully in place; a crash in between leaves either snapshot usable
        # and the LSN filter neutralises the not-yet-truncated log.
        snapshot = self.root / _SNAPSHOT
        old = self.root / _SNAPSHOT_OLD
        if old.exists():
            shutil.rmtree(old)
        if snapshot.exists():
            snapshot.rename(old)
        tmp.rename(snapshot)
        self._fh.close()
        self._fh = (self.root / _WAL).open("w", encoding="utf-8")
        self._records_since_compact = 0
        if old.exists():
            shutil.rmtree(old)
        return snapshot

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "directory": str(self.root),
            "lsn": self._lsn,
            "records_since_compact": self._records_since_compact,
            "compact_every": self.compact_every,
        }
