"""Pluggable storage backends and the ``open_database`` entry point.

Submodules are imported lazily (PEP 562): ``base`` is imported by
``repro.storage.table`` at module load, so pulling ``wal``/``sqlite`` —
which import the table module back through persistence — at package
import time would create a cycle.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.storage.backends.base import (
    MemoryBackend,
    Mutation,
    StorageBackend,
)
from repro.storage.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database

__all__ = [
    "ListingSpec",
    "MemoryBackend",
    "Mutation",
    "SqliteBackend",
    "StorageBackend",
    "WalBackend",
    "open_database",
]

#: name -> (module, class) — resolved on first use.
BACKENDS: dict[str, tuple[str, str]] = {
    "memory": ("repro.storage.backends.base", "MemoryBackend"),
    "wal": ("repro.storage.backends.wal", "WalBackend"),
    "sqlite": ("repro.storage.backends.sqlite", "SqliteBackend"),
}

_LAZY = {
    "WalBackend": ("repro.storage.backends.wal", "WalBackend"),
    "SqliteBackend": ("repro.storage.backends.sqlite", "SqliteBackend"),
    "ListingSpec": ("repro.storage.backends.sqlite", "ListingSpec"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def backend_class(name: str) -> type[StorageBackend]:
    """Resolve a backend name from the registry to its class."""
    try:
        module_name, attr = BACKENDS[name]
    except KeyError:
        raise StorageError(
            f"unknown storage backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def open_database(
    path: str | Path | None = None,
    *,
    backend: str | StorageBackend = "memory",
    **options: Any,
) -> "Database":
    """Open (or create) a database on the chosen backend.

    ``backend`` is a registry name (``"memory"``, ``"wal"``, ``"sqlite"``)
    or an already-constructed :class:`StorageBackend`.  ``path`` is the
    WAL directory / SQLite file and is required for the durable backends;
    ``options`` are forwarded to the backend constructor (e.g.
    ``compact_every=`` for WAL, ``listings=`` for SQLite).  Existing
    persisted state is restored; otherwise an empty durable database is
    created.
    """
    from repro.storage.database import Database

    if isinstance(backend, StorageBackend):
        if path is not None or options:
            raise StorageError(
                "pass path/options to the backend constructor, not open_database, "
                "when providing a backend instance"
            )
        return Database(backend)
    cls = backend_class(backend)
    if backend == "memory":
        if path is not None:
            raise StorageError("the memory backend takes no path")
        return Database(cls(**options))
    if path is None:
        raise StorageError(f"backend {backend!r} requires a path")
    return Database(cls(path, **options))
