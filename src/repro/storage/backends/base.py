"""The storage-backend contract: durability as a pluggable layer.

The in-memory :class:`~repro.storage.table.Table` remains the single
source of truth for reads — every backend is a *durability mirror* that
observes the physical mutation stream and can rebuild an identical
database (rows, schemas, indexes via re-insertion, and the monotone
``Table.version`` counters) after a restart or a crash.

Wire protocol between the database and a backend:

* :meth:`StorageBackend.attach` — called once by
  :meth:`~repro.storage.database.Database.attach_backend`.  The backend
  either *restores* previously persisted state into the (empty) database
  or *adopts* the database's current contents as its initial persisted
  state.
* :meth:`StorageBackend.on_create_table` / :meth:`on_drop_table` —
  catalogue changes.
* :meth:`StorageBackend.on_mutation` — one :class:`Mutation` per physical
  row mutation, including the undo log's raw rollback operations, in
  exactly the order the table applied them.  Replaying the stream
  therefore reproduces row content, insertion order *and* version
  counters (every record corresponds to exactly one ``version`` bump).

Implementations: :class:`MemoryBackend` (no durability, the default
semantics of a bare ``Database``), :class:`~repro.storage.backends.wal.WalBackend`
(append-only JSONL log + snapshot compaction) and
:class:`~repro.storage.backends.sqlite.SqliteBackend` (SQLite in WAL
mode with materialized listing tables).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database
    from repro.storage.schema import TableSchema

#: Physical mutation opcodes, mirroring Table's version-bumping operations.
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_REPLACE = "replace"
OP_TRUNCATE = "truncate"


@dataclass(frozen=True)
class Mutation:
    """One physical row mutation, as applied by a :class:`Table`.

    ``op`` is one of ``insert`` (``pk``, ``row``), ``delete`` (``pk``),
    ``replace`` (``pk`` = old key, ``new_pk`` = new key, ``row`` = the full
    replacement row) or ``truncate`` (table only).  ``row`` dicts are the
    table's normalised rows — complete, typed, in schema column order —
    and are JSON-serialisable by construction (the persistence layer
    already relies on this).
    """

    op: str
    table: str
    pk: tuple[Any, ...] | None = None
    row: dict[str, Any] | None = None
    new_pk: tuple[Any, ...] | None = None


class StorageBackend(abc.ABC):
    """Durability provider for one :class:`~repro.storage.database.Database`.

    Subclasses implement the persistence hooks; the attach handshake and
    the adopt path (bootstrapping persistence for an already-populated
    in-memory database) are shared.
    """

    #: Registry name, e.g. ``"wal"``; also reported by :meth:`describe`.
    name: str = "abstract"

    _db: "Database | None" = None

    # -- attach handshake ---------------------------------------------------
    def attach(self, db: "Database") -> bool:
        """Bind to ``db``: restore persisted state into it, or adopt its
        current contents when no persisted state exists yet.

        Returns ``True`` when persisted state was restored.  Called by
        :meth:`Database.attach_backend`, which wires the mutation sinks
        *afterwards* so nothing done here is re-logged.
        """
        self._db = db
        restored = self.restore_into(db)
        if not restored and db.table_names:
            self._adopt(db)
        return restored

    def _adopt(self, db: "Database") -> None:
        """Persist the database's current contents as the initial state."""
        from repro.storage.persistence import topological_order

        schemas = [db.table(name).schema for name in db.table_names]
        for schema in topological_order(schemas):
            self.on_create_table(schema)
        for name in db.table_names:
            table = db.table(name)
            for row in table.rows():
                self.on_mutation(
                    Mutation(OP_INSERT, name, table.schema.pk_tuple(row), row)
                )

    # -- persistence hooks --------------------------------------------------
    @abc.abstractmethod
    def restore_into(self, db: "Database") -> bool:
        """Rebuild persisted state into the empty ``db``; returns whether
        any persisted state existed.  Implementations must restore exact
        ``Table.version`` counters and row insertion order."""

    @abc.abstractmethod
    def on_create_table(self, schema: "TableSchema") -> None:
        """A table entered the catalogue (version counter restarts at 0)."""

    @abc.abstractmethod
    def on_drop_table(self, name: str) -> None:
        """A table left the catalogue."""

    @abc.abstractmethod
    def on_mutation(self, mutation: Mutation) -> None:
        """One physical row mutation was applied (one version bump)."""

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        """Push buffered records to the OS (durability point)."""

    def close(self) -> None:
        """Flush and release resources; the backend is unusable after."""

    def describe(self) -> dict[str, Any]:
        """Small structural summary for observability surfaces."""
        return {"backend": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()!r}>"


class MemoryBackend(StorageBackend):
    """The null backend: in-memory only, nothing survives the process.

    Exists so code can be written uniformly against the backend interface
    (``open_database(backend="memory")``) and as the semantic baseline the
    durable backends are diffed against in the backend-diff oracle.
    """

    name = "memory"

    def restore_into(self, db: "Database") -> bool:
        return False

    def on_create_table(self, schema: "TableSchema") -> None:
        pass

    def on_drop_table(self, name: str) -> None:
        pass

    def on_mutation(self, mutation: Mutation) -> None:
        pass
