"""Desired human factors for collaborative task assignment (Figure 3).

A requester fills the constraint entry form on the project administration
page with the *desired human factors* for team formation; this module is
the typed model behind that form.  The constraint set follows [9]: skill
minimums, a team quality threshold, a cost budget and the **upper critical
mass** — "a constraint on the group size beyond which the collaboration
effectiveness diminishes" (§1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.workers import Worker
from repro.errors import PlatformError

_AGGREGATORS = ("max", "sum", "noisy_or")


@dataclass(frozen=True)
class SkillRequirement:
    """Minimum aggregated team level for one skill.

    ``aggregator`` decides how members combine: ``max`` (one expert
    suffices), ``sum`` (effort accumulates; threshold may exceed 1) or
    ``noisy_or`` (probability at least one member succeeds).
    """

    skill: str
    min_level: float
    aggregator: str = "max"

    def __post_init__(self) -> None:
        if self.aggregator not in _AGGREGATORS:
            raise PlatformError(
                f"unknown aggregator {self.aggregator!r}; "
                f"expected one of {_AGGREGATORS}"
            )
        if self.min_level < 0:
            raise PlatformError("min_level must be non-negative")

    def team_level(self, workers: Sequence[Worker]) -> float:
        levels = [w.factors.skill_level(self.skill) for w in workers]
        if not levels:
            return 0.0
        if self.aggregator == "max":
            return max(levels)
        if self.aggregator == "sum":
            return sum(levels)
        return 1.0 - math.prod(1.0 - level for level in levels)

    def satisfied_by(self, workers: Sequence[Worker]) -> bool:
        return self.team_level(workers) >= self.min_level - 1e-12


@dataclass(frozen=True)
class TeamConstraints:
    """The requester's desired human factors for one collaborative task."""

    #: Minimum team size (the controller waits for at least this many
    #: interested workers before forming a team).
    min_size: int = 1
    #: Upper critical mass: hard cap on team size ([9], §1).
    critical_mass: int = 5
    #: Per-skill minimums.
    skills: tuple[SkillRequirement, ...] = ()
    #: Languages every member must speak (at ``language_proficiency``).
    required_languages: frozenset[str] = frozenset()
    language_proficiency: float = 0.3
    #: Team quality threshold: noisy-or of member quality (reliability ×
    #: mean required-skill level, or plain reliability without skills).
    quality_threshold: float = 0.0
    #: Total cost budget (sum of member costs); volunteers cost 0.
    cost_budget: float = math.inf
    #: Restrict members to one region (surveillance-style tasks).
    region: str | None = None
    #: Recruitment deadline in platform time units (None = no deadline).
    recruitment_deadline: float | None = None
    #: Confirmation window: proposed members must undertake within this.
    confirmation_window: float = 50.0

    def __post_init__(self) -> None:
        if self.min_size < 1:
            raise PlatformError("min_size must be at least 1")
        if self.critical_mass < self.min_size:
            raise PlatformError(
                f"critical mass ({self.critical_mass}) below min size "
                f"({self.min_size})"
            )
        if not 0.0 <= self.quality_threshold <= 1.0:
            raise PlatformError("quality_threshold must be within [0, 1]")
        if self.cost_budget < 0:
            raise PlatformError("cost_budget must be non-negative")

    # -- member-level screening (used for eligibility) -------------------------
    def member_eligible(self, worker: Worker) -> bool:
        """Per-worker screen: languages and region.

        Skills are deliberately *not* screened per worker — a team
        aggregates skills, so a low-skill worker may still join a team that
        an expert anchors ("skills are used to filter out unqualified
        workers" applies at the team level and through CyLog rules).
        """
        for language in self.required_languages:
            if not worker.factors.speaks(language, self.language_proficiency):
                return False
        if self.region is not None and worker.factors.region != self.region:
            return False
        return True

    # -- team-level checks ---------------------------------------------------
    def worker_quality(self, worker: Worker) -> float:
        """One member's success probability for this task."""
        if not self.skills:
            return worker.factors.reliability
        mean_skill = worker.factors.mean_skill(tuple(r.skill for r in self.skills))
        return worker.factors.reliability * mean_skill

    def team_quality(self, workers: Sequence[Worker]) -> float:
        """Noisy-or team quality: P(at least one member succeeds)."""
        if not workers:
            return 0.0
        return 1.0 - math.prod(1.0 - self.worker_quality(w) for w in workers)

    def team_cost(self, workers: Sequence[Worker]) -> float:
        return sum(w.factors.cost for w in workers)

    def violations(self, workers: Sequence[Worker]) -> list[str]:
        """Human-readable list of violated constraints (empty = feasible)."""
        problems: list[str] = []
        size = len(workers)
        if size < self.min_size:
            problems.append(f"team size {size} below minimum {self.min_size}")
        if size > self.critical_mass:
            problems.append(
                f"team size {size} exceeds upper critical mass {self.critical_mass}"
            )
        for worker in workers:
            if not self.member_eligible(worker):
                problems.append(f"worker {worker.id} fails language/region screen")
        for requirement in self.skills:
            if not requirement.satisfied_by(workers):
                problems.append(
                    f"skill {requirement.skill!r} team level "
                    f"{requirement.team_level(workers):.3f} below "
                    f"{requirement.min_level:.3f}"
                )
        quality = self.team_quality(workers)
        if quality < self.quality_threshold - 1e-12:
            problems.append(
                f"team quality {quality:.3f} below threshold "
                f"{self.quality_threshold:.3f}"
            )
        cost = self.team_cost(workers)
        if cost > self.cost_budget + 1e-12:
            problems.append(
                f"team cost {cost:.2f} exceeds budget {self.cost_budget:.2f}"
            )
        return problems

    def is_satisfied_by(self, workers: Sequence[Worker]) -> bool:
        return not self.violations(workers)

    # -- relaxation (requester suggestions, §2.2.1) -----------------------------
    def relax_dimension(self, dimension: str) -> "TeamConstraints | None":
        """One relaxation step along ``dimension``; None when exhausted.

        Dimensions: ``quality``, ``critical_mass``, ``min_size``, ``skill``,
        ``budget``, ``region``, ``language``.
        """
        if dimension == "quality":
            if self.quality_threshold <= 0:
                return None
            return replace(
                self, quality_threshold=max(0.0, self.quality_threshold - 0.1)
            )
        if dimension == "critical_mass":
            if self.critical_mass >= 12:
                return None  # beyond any sensible collaboration size
            return replace(self, critical_mass=self.critical_mass + 1)
        if dimension == "min_size":
            if self.min_size <= 1:
                return None
            return replace(self, min_size=self.min_size - 1)
        if dimension == "skill":
            positive = [r for r in self.skills if r.min_level > 0]
            if not positive:
                return None
            weakest = min(positive, key=lambda r: r.min_level)
            reduced = tuple(
                replace(r, min_level=max(0.0, r.min_level - 0.1))
                if r is weakest
                else r
                for r in self.skills
            )
            return replace(self, skills=reduced)
        if dimension == "budget":
            if self.cost_budget == math.inf:
                return None
            return replace(self, cost_budget=self.cost_budget * 1.25)
        if dimension == "region":
            if self.region is None:
                return None
            return replace(self, region=None)
        if dimension == "language":
            if not self.required_languages:
                return None
            dropped = sorted(self.required_languages)[-1]
            return replace(
                self, required_languages=self.required_languages - {dropped}
            )
        raise PlatformError(f"unknown relaxation dimension {dimension!r}")

    RELAXATION_DIMENSIONS = (
        "quality", "critical_mass", "min_size", "skill", "budget",
        "region", "language",
    )

    def describe_difference(self, relaxed: "TeamConstraints") -> str:
        """Human-readable description of how ``relaxed`` differs from self."""
        changes: list[str] = []
        if relaxed.quality_threshold != self.quality_threshold:
            changes.append(
                f"lower quality threshold to {relaxed.quality_threshold:.2f}"
            )
        if relaxed.critical_mass != self.critical_mass:
            changes.append(f"raise upper critical mass to {relaxed.critical_mass}")
        if relaxed.min_size != self.min_size:
            changes.append(f"lower minimum team size to {relaxed.min_size}")
        for old, new in zip(self.skills, relaxed.skills):
            if old.min_level != new.min_level:
                changes.append(
                    f"lower required level of skill {old.skill!r} to "
                    f"{new.min_level:.2f}"
                )
        if relaxed.cost_budget != self.cost_budget:
            changes.append(f"increase cost budget to {relaxed.cost_budget:.2f}")
        if relaxed.region != self.region:
            changes.append("drop the region restriction")
        if relaxed.required_languages != self.required_languages:
            dropped = sorted(self.required_languages - relaxed.required_languages)
            changes.append(f"drop required language(s) {dropped}")
        return "; ".join(changes) or "no change"

    def relaxations(self) -> list[tuple[str, "TeamConstraints"]]:
        """Candidate single-step relaxations (one per dimension).

        Used when no feasible team exists: "Crowd4U suggests to the
        requester to update her input."
        """
        candidates: list[tuple[str, TeamConstraints]] = []
        for dimension in self.RELAXATION_DIMENSIONS:
            relaxed = self.relax_dimension(dimension)
            if relaxed is not None:
                candidates.append((self.describe_difference(relaxed), relaxed))
        return candidates
