"""Teams: the output of task assignment.

A team is a set of workers suggested by the assignment controller for one
collaborative task.  Members must confirm (enter *Undertakes*) before the
confirmation deadline; once all confirm, the task becomes active and the
collaboration scheme takes over.  "The result of the collaborative task is
submitted by one of the team members, but recorded as the result produced
by the team" (§2.3) — hence results carry the team id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import PlatformError
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util import IdFactory


class TeamStatus(enum.Enum):
    PROPOSED = "proposed"      # suggested; awaiting member confirmations
    CONFIRMED = "confirmed"    # every member undertook the task
    DISSOLVED = "dissolved"    # confirmation deadline missed / member declined
    FINISHED = "finished"      # the task completed


@dataclass(frozen=True)
class Team:
    id: str
    task_id: str
    members: tuple[str, ...]
    status: TeamStatus = TeamStatus.PROPOSED
    affinity_score: float = 0.0
    algorithm: str = ""
    proposed_at: float = 0.0
    confirm_by: float | None = None
    confirmed: frozenset[str] = frozenset()

    @property
    def all_confirmed(self) -> bool:
        return set(self.confirmed) == set(self.members)

    def with_confirmation(self, worker_id: str) -> "Team":
        if worker_id not in self.members:
            raise PlatformError(
                f"worker {worker_id} is not a member of team {self.id}"
            )
        return replace(self, confirmed=self.confirmed | {worker_id})


_SCHEMA = TableSchema(
    "team",
    [
        Column("id", ColumnType.TEXT),
        Column("task_id", ColumnType.TEXT),
        Column("members", ColumnType.JSON),
        Column("status", ColumnType.TEXT),
        Column("affinity_score", ColumnType.FLOAT),
        Column("algorithm", ColumnType.TEXT),
        Column("proposed_at", ColumnType.FLOAT),
        Column("confirm_by", ColumnType.FLOAT, nullable=True),
        Column("confirmed", ColumnType.JSON),
    ],
    primary_key=("id",),
)


class TeamRegistry:
    """Persistent store of all proposed teams."""

    def __init__(self, db: Database, id_factory: IdFactory | None = None) -> None:
        self.db = db
        if not db.has_table(_SCHEMA.name):
            db.create_table(_SCHEMA)
            db.table(_SCHEMA.name).create_index(("task_id",))
        self._ids = id_factory or IdFactory("team", width=5)
        self._cache: dict[str, Team] = {}
        for row in db.table(_SCHEMA.name).rows():
            team = _team_from_row(row)
            self._cache[team.id] = team

    def propose(
        self,
        task_id: str,
        members: tuple[str, ...],
        affinity_score: float,
        algorithm: str,
        proposed_at: float,
        confirm_by: float | None,
    ) -> Team:
        if not members:
            raise PlatformError("a team needs at least one member")
        team = Team(
            id=self._ids.next(),
            task_id=task_id,
            members=tuple(members),
            affinity_score=affinity_score,
            algorithm=algorithm,
            proposed_at=proposed_at,
            confirm_by=confirm_by,
        )
        self.db.insert(_SCHEMA.name, _team_to_row(team))
        self._cache[team.id] = team
        return team

    def _replace(self, team: Team) -> Team:
        self.db.update(_SCHEMA.name, (team.id,), _team_to_row(team))
        self._cache[team.id] = team
        return team

    def confirm_member(self, team_id: str, worker_id: str) -> Team:
        team = self.get(team_id).with_confirmation(worker_id)
        if team.all_confirmed and team.status is TeamStatus.PROPOSED:
            team = replace(team, status=TeamStatus.CONFIRMED)
        return self._replace(team)

    def set_status(self, team_id: str, status: TeamStatus) -> Team:
        return self._replace(replace(self.get(team_id), status=status))

    def get(self, team_id: str) -> Team:
        team = self._cache.get(team_id)
        if team is None:
            raise PlatformError(f"unknown team {team_id!r}")
        return team

    def for_task(self, task_id: str) -> list[Team]:
        return sorted(
            (t for t in self._cache.values() if t.task_id == task_id),
            key=lambda t: t.id,
        )

    def previously_dissolved_members(self, task_id: str) -> set[frozenset[str]]:
        """Member sets of dissolved teams, so re-assignment avoids reproposing
        the exact same failed team (§2.2.1: find a *new* team)."""
        return {
            frozenset(team.members)
            for team in self.for_task(task_id)
            if team.status is TeamStatus.DISSOLVED
        }

    def all(self) -> list[Team]:
        return sorted(self._cache.values(), key=lambda t: t.id)

    def __len__(self) -> int:
        return len(self._cache)


def _team_to_row(team: Team) -> dict[str, Any]:
    return {
        "id": team.id,
        "task_id": team.task_id,
        "members": list(team.members),
        "status": team.status.value,
        "affinity_score": team.affinity_score,
        "algorithm": team.algorithm,
        "proposed_at": team.proposed_at,
        "confirm_by": team.confirm_by,
        "confirmed": sorted(team.confirmed),
    }


def _team_from_row(row: dict[str, Any]) -> Team:
    return Team(
        id=row["id"],
        task_id=row["task_id"],
        members=tuple(row["members"]),
        status=TeamStatus(row["status"]),
        affinity_score=row["affinity_score"],
        algorithm=row["algorithm"],
        proposed_at=row["proposed_at"],
        confirm_by=row["confirm_by"],
        confirmed=frozenset(row["confirmed"]),
    )
