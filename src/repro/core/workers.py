"""Worker entities and the Worker Manager of Figure 2.

The worker manager persists worker profiles in the storage engine (the
"User Properties" store) and keeps hydrated :class:`Worker` objects cached
for the hot paths (assignment, affinity computation).  It supplies the task
assignment controller with human factors, and the CyLog processor with
worker fact rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.core.human_factors import HumanFactors
from repro.errors import PlatformError
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util import IdFactory


@dataclass(frozen=True)
class Worker:
    """One registered crowd worker."""

    id: str
    name: str
    factors: HumanFactors
    joined_at: float = 0.0

    def with_factors(self, factors: HumanFactors) -> "Worker":
        return replace(self, factors=factors)


_WORKER_SCHEMA = TableSchema(
    "worker_profile",
    [
        Column("id", ColumnType.TEXT),
        Column("name", ColumnType.TEXT),
        Column("region", ColumnType.TEXT),
        Column("reliability", ColumnType.FLOAT),
        Column("cost", ColumnType.FLOAT),
        Column("sns_id", ColumnType.TEXT, nullable=True),
        Column("joined_at", ColumnType.FLOAT),
        Column("native_languages", ColumnType.JSON),
        Column("languages", ColumnType.JSON),
        Column("skills", ColumnType.JSON),
        Column("coordinates", ColumnType.JSON, nullable=True),
        Column("extras", ColumnType.JSON),
    ],
    primary_key=("id",),
)


class WorkerManager:
    """Registry of workers with write-through persistence."""

    def __init__(self, db: Database, id_factory: IdFactory | None = None) -> None:
        self.db = db
        if not db.has_table(_WORKER_SCHEMA.name):
            db.create_table(_WORKER_SCHEMA)
        self._ids = id_factory or IdFactory("w", width=5)
        self._cache: dict[str, Worker] = {}
        for row in db.table(_WORKER_SCHEMA.name).rows():
            self._cache[row["id"]] = _worker_from_row(row)

    # -- registration -----------------------------------------------------------
    def register(
        self, name: str, factors: HumanFactors, joined_at: float = 0.0
    ) -> Worker:
        """Create a worker with a fresh id and persist the profile."""
        worker = Worker(
            id=self._ids.next(), name=name, factors=factors, joined_at=joined_at
        )
        self.db.insert(_WORKER_SCHEMA.name, _worker_to_row(worker))
        self._cache[worker.id] = worker
        return worker

    def update_factors(self, worker_id: str, factors: HumanFactors) -> Worker:
        """Replace a worker's human factors (Figure 4's editable page)."""
        worker = self.get(worker_id).with_factors(factors)
        self.db.update(
            _WORKER_SCHEMA.name, (worker_id,), _worker_to_row(worker)
        )
        self._cache[worker_id] = worker
        return worker

    def remove(self, worker_id: str) -> None:
        self.get(worker_id)  # raise early if unknown
        self.db.delete(_WORKER_SCHEMA.name, (worker_id,))
        del self._cache[worker_id]

    # -- queries --------------------------------------------------------------
    def get(self, worker_id: str) -> Worker:
        worker = self._cache.get(worker_id)
        if worker is None:
            raise PlatformError(f"unknown worker {worker_id!r}")
        return worker

    def maybe(self, worker_id: str) -> Worker | None:
        return self._cache.get(worker_id)

    def all(self) -> list[Worker]:
        return sorted(self._cache.values(), key=lambda w: w.id)

    def ids(self) -> list[str]:
        return sorted(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self.all())

    def with_language(self, language: str, min_proficiency: float = 0.0) -> list[Worker]:
        return [w for w in self.all() if w.factors.speaks(language, min_proficiency)]

    def in_region(self, region: str) -> list[Worker]:
        return [w for w in self.all() if w.factors.region == region]

    def fact_rows(self) -> dict[str, list[tuple]]:
        """CyLog fact rows for every registered worker, merged by predicate."""
        merged: dict[str, list[tuple]] = {}
        for worker in self.all():
            for predicate, rows in worker.factors.as_fact_rows(worker.id).items():
                merged.setdefault(predicate, []).extend(rows)
        return merged


def _worker_to_row(worker: Worker) -> dict:
    factors = worker.factors
    return {
        "id": worker.id,
        "name": worker.name,
        "region": factors.region,
        "reliability": factors.reliability,
        "cost": factors.cost,
        "sns_id": factors.sns_id,
        "joined_at": worker.joined_at,
        "native_languages": sorted(factors.native_languages),
        "languages": dict(factors.languages),
        "skills": dict(factors.skills),
        "coordinates": list(factors.coordinates) if factors.coordinates else None,
        "extras": dict(factors.extras),
    }


def _worker_from_row(row: dict) -> Worker:
    factors = HumanFactors(
        native_languages=frozenset(row["native_languages"]),
        languages=row["languages"],
        region=row["region"],
        coordinates=tuple(row["coordinates"]) if row["coordinates"] else None,
        skills=row["skills"],
        reliability=row["reliability"],
        cost=row["cost"],
        sns_id=row["sns_id"],
        extras=row["extras"],
    )
    return Worker(
        id=row["id"], name=row["name"], factors=factors, joined_at=row["joined_at"]
    )
