"""The Crowd4U facade: every component of Figure 2 wired together.

The platform exposes the two personas of the demo:

**Requesters** register projects (a CyLog project description + desired
human factors + collaboration scheme), watch suggestions when no feasible
team exists, and read results.

**Workers** see the tasks they are eligible for on their user page,
declare interest, undertake (confirm) proposed team memberships, perform
micro-tasks, contribute to joint documents and submit team results.

Time advances through :meth:`step`, which performs one platform round:
CyLog re-evaluation → dynamic task generation → eligibility computation →
team formation attempts → deadline monitoring.

Rounds are *incremental* by default: the platform tracks which workers,
projects and tasks changed since the last round (registrations, factor
edits, fact assertions, constraint updates, interest declarations, team
dissolutions) and only re-derives eligibility / re-attempts team formation
for the (task, worker) pairs whose inputs moved.  ``step(full=True)`` — or
``Crowd4U(incremental=False)`` — is the recompute-everything escape hatch,
and ``step(cross_check=True)`` runs an engine-diff-style oracle that
verifies the incrementally maintained ledger against a from-scratch
recomputation.  Work counters live in :class:`PlatformStats`.

>>> from repro.core import Crowd4U, HumanFactors, TeamConstraints
>>> platform = Crowd4U(seed=1)
>>> worker = platform.register_worker(
...     "ann", HumanFactors(native_languages=frozenset({"en"})))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.affinity import (
    AffinityMatrix,
    AffinityWeights,
    language_overlap,
    region_proximity,
    skill_complementarity,
)
from repro.core.assignment.controller import (
    AssignmentOutcome,
    RequesterSuggestion,
    TaskAssignmentController,
)
from repro.core.assignment.base import AssignerRegistry, default_registry
from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    SchemeRegistry,
    TeamResult,
    default_scheme_registry,
)
from repro.core.collaboration.artifacts import Document
from repro.core.collaboration.coordination import ResultCoordinator
from repro.core.constraints import TeamConstraints
from repro.core.events import Event, EventBus
from repro.core.human_factors import HumanFactors
from repro.core.monitor import CollaborationMonitor
from repro.core.projects import Project, ProjectManager, SchemeKind
from repro.core.relationships import (
    ELIGIBLE_ROOTED,
    RelationshipLedger,
    RelationshipStatus,
)
from repro.core.tasks import OPEN_STATUSES, Task, TaskKind, TaskPool, TaskStatus
from repro.core.teams import TeamRegistry
from repro.core.workers import Worker, WorkerManager
from repro.cylog import CyLogProcessor, TaskRequest
from repro.errors import CollaborationError, PlatformError
from repro.storage import Database, col
from repro.util import IdFactory

#: Stored-value forms for the cached storage queries below.
_ELIGIBLE_ROOTED = tuple(status.value for status in ELIGIBLE_ROOTED)
_OPEN_STATUS_VALUES = tuple(status.value for status in OPEN_STATUSES)


@dataclass
class PlatformStats:
    """Work counters for one :class:`Crowd4U` instance (cumulative).

    The eligibility counters measure how much of the naive
    tasks × workers product each round actually re-derived:
    ``eligibility_pairs_skipped`` is the direct savings of the dirty-tracked
    incremental step over the full recompute.  Feed the counters into a
    metrics collector with :meth:`to_collector` (once per collector — the
    values are cumulative), mirroring ``EngineStats``.
    """

    rounds: int = 0
    eligibility_tasks_full: int = 0
    eligibility_tasks_partial: int = 0
    eligibility_tasks_skipped: int = 0
    eligibility_pairs_checked: int = 0
    eligibility_pairs_skipped: int = 0
    eligibility_revoked: int = 0
    assignment_attempts: int = 0
    assignments_skipped: int = 0
    cross_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "eligibility_tasks_full": self.eligibility_tasks_full,
            "eligibility_tasks_partial": self.eligibility_tasks_partial,
            "eligibility_tasks_skipped": self.eligibility_tasks_skipped,
            "eligibility_pairs_checked": self.eligibility_pairs_checked,
            "eligibility_pairs_skipped": self.eligibility_pairs_skipped,
            "eligibility_revoked": self.eligibility_revoked,
            "assignment_attempts": self.assignment_attempts,
            "assignments_skipped": self.assignments_skipped,
            "cross_checks": self.cross_checks,
        }

    def to_collector(self, collector, prefix: str = "platform") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)


class Crowd4U:
    """One in-process Crowd4U deployment."""

    def __init__(
        self,
        seed: int = 0,
        db: Database | None = None,
        affinity_weights: AffinityWeights | None = None,
        incremental: bool = True,
    ) -> None:
        self.seed = seed
        self.now = 0.0
        self.incremental = incremental
        self.stats = PlatformStats()
        self.db = db or Database()
        self.events = EventBus()
        self.workers = WorkerManager(self.db)
        self.affinity = AffinityMatrix()
        self.affinity_weights = affinity_weights or AffinityWeights()
        self.pool = TaskPool(self.db)
        self.ledger = RelationshipLedger(self.db)
        self.teams = TeamRegistry(self.db)
        self.projects = ProjectManager(self.db)
        self.assigners: AssignerRegistry = default_registry(seed)
        self.schemes: SchemeRegistry = default_scheme_registry()
        self.controller = TaskAssignmentController(
            workers=self.workers,
            ledger=self.ledger,
            affinity=self.affinity,
            pool=self.pool,
            teams=self.teams,
            events=self.events,
            registry=self.assigners,
        )
        self.coordinator = ResultCoordinator(
            db=self.db,
            pool=self.pool,
            teams=self.teams,
            ledger=self.ledger,
            affinity=self.affinity,
            events=self.events,
        )
        self.monitor = CollaborationMonitor(
            pool=self.pool, teams=self.teams, controller=self.controller,
            events=self.events,
        )
        self._processors: dict[str, CyLogProcessor] = {}
        self._active_schemes: dict[str, tuple[CollaborationScheme, CollaborationContext]] = {}
        self._suggestions: dict[str, list[RequesterSuggestion]] = {}
        self._doc_ids = IdFactory("doc", width=5)
        # -- dirty tracking for incremental rounds --------------------------
        #: Append-only log of worker-change events, each tagged with a
        #: strictly increasing sequence number.  A task remembers the
        #: sequence it last accounted for (``_task_seen_seq``) and consumes
        #: only the log suffix past its cursor, so marking a churned worker
        #: is O(1) regardless of pool size and tasks parked in
        #: PROPOSED/ACTIVE catch up when they return to the pending pool.
        self._dirty_seq: int = 0
        self._dirty_worker_log: list[tuple[int, str]] = []
        self._task_seen_seq: dict[str, int] = {}
        #: tasks whose whole eligible set must be re-derived (constraint
        #: updates); new tasks are caught by the missing-fingerprint check.
        self._task_needs_full: set[str] = set()
        #: task -> fingerprint of the eligibility inputs it last saw.
        self._elig_fp: dict[str, Hashable] = {}
        self.events.subscribe("task.active", self._on_task_active)

    # ------------------------------------------------------------------
    # Worker-side API (user pages)
    # ------------------------------------------------------------------
    def register_worker(self, name: str, factors: HumanFactors) -> Worker:
        """Create a worker account; factors flow into every project's CyLog
        processor and the affinity matrix is extended incrementally."""
        worker = self.workers.register(name, factors, joined_at=self.now)
        self._extend_affinity(worker)
        for processor in self._processors.values():
            for predicate, rows in factors.as_fact_rows(worker.id).items():
                processor.add_facts(predicate, rows)
        self._mark_worker_dirty(worker.id)
        self.events.publish("worker.registered", self.now, worker_id=worker.id)
        return worker

    def update_worker_factors(self, worker_id: str, factors: HumanFactors) -> Worker:
        """Apply the worker page's human-factor edits (Figure 4)."""
        worker = self.workers.update_factors(worker_id, factors)
        # Re-inject facts; CyLog fact stores are additive, so eligibility
        # rules see the union of old and new declarations.
        for processor in self._processors.values():
            for predicate, rows in factors.as_fact_rows(worker.id).items():
                processor.add_facts(predicate, rows)
        self._mark_worker_dirty(worker_id)
        # New factors change how assigners screen this worker: re-arm every
        # task where the worker is a live team-formation candidate.
        for status in (RelationshipStatus.INTERESTED, RelationshipStatus.UNDERTAKES):
            for task_id in self.ledger.tasks_with_status(worker_id, status):
                self.controller.mark_dirty(task_id)
        self.events.publish("worker.updated", self.now, worker_id=worker_id)
        return worker

    def eligible_tasks(self, worker_id: str) -> list[Task]:
        """The user page's task list: pending root tasks the worker is
        eligible for (§2.2.1 step 3).

        Served through the storage query cache: repeated renders between
        ledger mutations cost one dict lookup instead of a table scan.
        """
        self.workers.get(worker_id)
        rows = (
            self.db.query("relationship")
            .where(
                (col("worker_id") == worker_id)
                & col("status").in_(_ELIGIBLE_ROOTED)
            )
            .project("task_id")
            .execute_cached()
        )
        related = {row["task_id"] for row in rows}
        return [t for t in self.pool.pending_root_tasks() if t.id in related]

    def declare_interest(self, worker_id: str, task_id: str) -> None:
        """Record InterestedIn (requires eligibility)."""
        self.ledger.declare_interest(worker_id, task_id, self.now)
        # The interested set grew: the task is worth a fresh formation attempt.
        self.controller.mark_dirty(task_id)
        self.events.publish(
            "worker.interested", self.now, worker_id=worker_id, task_id=task_id
        )

    def confirm_membership(self, worker_id: str, task_id: str) -> None:
        """A proposed member undertakes the collaborative task."""
        task = self.pool.get(task_id)
        if task.team_id is None:
            raise PlatformError(f"task {task_id} has no proposed team")
        self.controller.confirm_member(task.team_id, worker_id, self.now)

    def decline_membership(self, worker_id: str, task_id: str) -> None:
        task = self.pool.get(task_id)
        if task.team_id is None:
            raise PlatformError(f"task {task_id} has no proposed team")
        self.controller.decline_member(task.team_id, worker_id, self.now)

    def tasks_for_worker(self, worker_id: str) -> list[Task]:
        """Open micro-tasks addressed to the worker, including JOINT tasks
        addressed to her team.  Both lists come from cached storage queries;
        the JOINT candidate set is worker-independent, so one cache entry
        serves every worker page."""
        rows = (
            self.db.query("task")
            .where(
                (col("assignee") == worker_id)
                & col("status").in_(_OPEN_STATUS_VALUES)
            )
            .project("id")
            .execute_cached()
        )
        addressed = [self.pool.get(row["id"]) for row in rows]
        joint_rows = (
            self.db.query("task")
            .where(
                (col("kind") == TaskKind.JOINT.value)
                & (col("status") == TaskStatus.PENDING.value)
            )
            .project("id")
            .execute_cached()
        )
        for row in joint_rows:
            task = self.pool.get(row["id"])
            if worker_id in task.payload.get("addressed_to", ()):
                addressed.append(task)
        return sorted(addressed, key=lambda t: t.id)

    def submit_micro_result(
        self, task_id: str, worker_id: str, result: dict[str, Any]
    ) -> None:
        """Complete one micro-task; the scheme may generate follow-ups and
        the whole collaboration may finish."""
        task = self.pool.get(task_id)
        if task.kind is TaskKind.JOINT:
            if worker_id not in task.payload.get("addressed_to", ()):
                raise PlatformError(
                    f"worker {worker_id} is not addressed by joint task {task_id}"
                )
            task = self.pool.set_assignee(task_id, worker_id)
        elif task.assignee != worker_id:
            raise PlatformError(
                f"task {task_id} is addressed to {task.assignee!r}, "
                f"not {worker_id!r}"
            )
        if task.parent_task_id is None:
            raise PlatformError(f"task {task_id} is not a scheme micro-task")
        completed = self.pool.complete(task_id, result)
        self.events.publish(
            "micro.completed", self.now,
            task_id=task_id, worker_id=worker_id, task_kind=task.kind.value,
        )
        entry = self._active_schemes.get(task.parent_task_id)
        if entry is None:
            return  # scheme already finished (e.g. duplicate submission path)
        scheme, ctx = entry
        scheme.on_micro_completed(ctx, completed, result, self.now)
        if scheme.is_complete(ctx):
            team_result = scheme.build_result(ctx, submitted_by=worker_id, now=self.now)
            self._finish_collaboration(ctx.root_task, team_result, result)

    def contribute(self, root_task_id: str, worker_id: str, content: str) -> None:
        """Write into the shared document of a simultaneous/hybrid task."""
        entry = self._active_schemes.get(root_task_id)
        if entry is None:
            raise CollaborationError(f"task {root_task_id} has no active scheme")
        scheme, ctx = entry
        contribute = getattr(scheme, "contribute", None)
        if contribute is None:
            raise CollaborationError(
                f"scheme {scheme.kind!r} does not accept parallel contributions"
            )
        contribute(ctx, worker_id, content, self.now)

    # ------------------------------------------------------------------
    # Requester-side API (admin pages)
    # ------------------------------------------------------------------
    def register_project(
        self,
        name: str,
        requester: str,
        cylog_source: str,
        scheme: SchemeKind = SchemeKind.SEQUENTIAL,
        constraints: TeamConstraints | None = None,
        assignment_algorithm: str = "greedy",
        options: dict[str, Any] | None = None,
    ) -> Project:
        """Register a project: parse the CyLog description, inject worker
        facts and start generating tasks (Figure 2, arrow 'register')."""
        constraints = constraints or TeamConstraints()
        project = self.projects.register(
            name=name,
            requester=requester,
            cylog_source=cylog_source,
            scheme=scheme,
            constraints=constraints,
            assignment_algorithm=assignment_algorithm,
            created_at=self.now,
            options=options,
        )
        processor = CyLogProcessor(cylog_source)
        processor.add_demand_listener(
            lambda requests, pid=project.id: self._materialise_requests(pid, requests)
        )
        self._processors[project.id] = processor
        # Inject the whole worker fact base as one batch: the batch exit
        # performs the single evaluation + demand refresh for the project.
        with processor.batch():
            for predicate, rows in self.workers.fact_rows().items():
                processor.add_facts(predicate, rows)
        self.events.publish(
            "project.registered", self.now, project_id=project.id, name=name
        )
        return project

    def post_task(
        self,
        project_id: str,
        instruction: str,
        kind: TaskKind = TaskKind.CUSTOM,
        payload: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> Task:
        """Post a root collaborative task directly (outside CyLog)."""
        project = self.projects.get(project_id)
        if deadline is None and project.constraints.recruitment_deadline is not None:
            deadline = self.now + project.constraints.recruitment_deadline
        task = self.pool.create(
            project_id=project_id,
            kind=kind,
            instruction=instruction,
            payload=dict(payload or {}),
            created_at=self.now,
            deadline=deadline,
        )
        self.controller.mark_dirty(task.id)
        self.events.publish(
            "task.posted", self.now, task_id=task.id, project_id=project_id
        )
        return task

    def update_constraints(
        self, project_id: str, constraints: TeamConstraints
    ) -> Project:
        """Admin form submission: new desired human factors (Figure 3)."""
        project = self.projects.update_constraints(project_id, constraints)
        self._suggestions.pop(project_id, None)
        # Constraints feed both the eligibility screen and team formation:
        # every open root task of the project must re-derive from scratch.
        for task in self.pool.open_tasks(project_id):
            if task.is_root:
                self._task_needs_full.add(task.id)
                self.controller.mark_dirty(task.id)
        self.events.publish(
            "project.constraints_updated", self.now, project_id=project_id
        )
        return project

    def suggestions_for(self, project_id: str) -> list[RequesterSuggestion]:
        """Pending requester feedback (no feasible team situations)."""
        return list(self._suggestions.get(project_id, ()))

    def processor(self, project_id: str) -> CyLogProcessor:
        try:
            return self._processors[project_id]
        except KeyError:
            raise PlatformError(
                f"project {project_id!r} has no CyLog processor"
            ) from None

    def results_for(self, project_id: str) -> list[dict]:
        return self.coordinator.results_for_project(project_id)

    # ------------------------------------------------------------------
    # The platform round
    # ------------------------------------------------------------------
    def step(
        self,
        dt: float = 1.0,
        full: bool | None = None,
        cross_check: bool = False,
    ) -> dict[str, int]:
        """Advance time and run one platform round.

        ``full=True`` forces the recompute-everything round regardless of
        the instance's ``incremental`` setting (``full=False`` forces the
        incremental round); ``cross_check=True`` additionally verifies the
        incremental bookkeeping against a from-scratch eligibility
        recomputation, engine-diff style, raising :class:`PlatformError` on
        divergence.
        """
        self.now += dt
        incremental = self.incremental if full is None else not full
        self.stats.rounds += 1
        generated_before = len(self.pool)
        for processor in self._processors.values():
            processor.run()
        self._refresh_eligibility(incremental)
        if cross_check:
            self._cross_check_eligibility()
        attempts = 0
        proposals = 0
        skipped = 0
        for project in self.projects.active():
            for task in self.pool.pending_root_tasks(project.id):
                if incremental and not self.controller.is_dirty(task.id):
                    skipped += 1
                    self.stats.assignments_skipped += 1
                    continue
                self.controller.clear_dirty(task.id)
                outcome = self._attempt_assignment(project, task)
                attempts += 1
                self.stats.assignment_attempts += 1
                if outcome.proposed:
                    proposals += 1
        monitor_counts = self.monitor.tick(self.now)
        self._prune_round_state()
        return {
            "time": int(self.now),
            "tasks_generated": len(self.pool) - generated_before,
            "assignment_attempts": attempts,
            "assignments_skipped": skipped,
            "teams_proposed": proposals,
            **monitor_counts,
        }

    def run_until_quiet(self, max_steps: int = 1000, dt: float = 1.0) -> int:
        """Step until no open root tasks remain (or the step budget ends);
        returns the number of steps taken."""
        for steps in range(1, max_steps + 1):
            self.step(dt)
            if not any(t.is_root for t in self.pool.open_tasks()):
                return steps
        return max_steps

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _extend_affinity(self, new_worker: Worker) -> None:
        weights = self.affinity_weights
        total = weights.language + weights.region + weights.skill_complementarity
        for other in self.workers.all():
            if other.id == new_worker.id:
                continue
            score = (
                weights.language * language_overlap(new_worker, other)
                + weights.region * region_proximity(new_worker, other, weights.geo_scale_km)
                + weights.skill_complementarity * skill_complementarity(new_worker, other)
            ) / total
            if score > 0.0:
                self.affinity.set(new_worker.id, other.id, score)

    def _materialise_requests(
        self, project_id: str, requests: list[TaskRequest]
    ) -> None:
        """Demand listener: open-predicate demand → tasks in the pool."""
        project = self.projects.get(project_id)
        deadline = None
        if project.constraints.recruitment_deadline is not None:
            deadline = self.now + project.constraints.recruitment_deadline
        for request in requests:
            task = self.pool.create(
                project_id=project_id,
                kind=TaskKind.OPEN_FILL,
                instruction=request.instruction,
                predicate=request.predicate,
                key_values=request.key_values,
                fill_columns=request.fill_columns,
                choices=request.choices,
                created_at=self.now,
                deadline=deadline,
            )
            self.controller.mark_dirty(task.id)
            self.events.publish(
                "task.generated", self.now,
                task_id=task.id, project_id=project_id,
                predicate=request.predicate,
                key=list(request.key_values),
            )

    # -- eligibility (full + dirty-tracked incremental) ---------------------
    def _mark_worker_dirty(self, worker_id: str) -> None:
        """A worker's factors/facts changed: append one event to the dirty
        log; every task consumes the events past its own cursor on its next
        eligibility refresh."""
        self._dirty_seq += 1
        self._dirty_worker_log.append((self._dirty_seq, worker_id))

    def _dirty_workers_since(self, seen_seq: int) -> set[str]:
        """Workers that changed after sequence ``seen_seq``."""
        log = self._dirty_worker_log
        # Events are appended with strictly increasing sequence numbers, so
        # scan back from the tail instead of bisecting a typically-tiny
        # suffix.
        dirty: set[str] = set()
        for index in range(len(log) - 1, -1, -1):
            seq, worker_id = log[index]
            if seq <= seen_seq:
                break
            dirty.add(worker_id)
        return dirty

    def _refresh_eligibility(self, incremental: bool) -> None:
        """Bring the Eligible relationship up to date for every pending root
        task — completely, or only for the pairs whose inputs changed."""
        pending = self.pool.pending_root_tasks()
        n_workers = len(self.workers)
        fp_cache: dict[tuple[str, str], Hashable] = {}
        if not incremental:
            for task in pending:
                self._ensure_eligibility(task)
                self._task_needs_full.discard(task.id)
                self._elig_fp[task.id] = self._eligibility_fingerprint(task, fp_cache)
                self._task_seen_seq[task.id] = self._dirty_seq
                self.stats.eligibility_tasks_full += 1
                self.stats.eligibility_pairs_checked += n_workers
            return
        heads_cache: dict[tuple[str, str], set] = {}
        for task in pending:
            fp = self._eligibility_fingerprint(task, fp_cache)
            dirty = self._dirty_workers_since(self._task_seen_seq.get(task.id, 0))
            if task.id in self._task_needs_full or self._elig_fp.get(task.id) != fp:
                # Never-seen task, changed CyLog derivation, or updated
                # constraints: the whole eligible set must be re-derived.
                self._task_needs_full.discard(task.id)
                self._ensure_eligibility(task)
                self.stats.eligibility_tasks_full += 1
                self.stats.eligibility_pairs_checked += n_workers
            elif dirty:
                self._partial_eligibility(task, dirty, heads_cache)
                self.stats.eligibility_tasks_partial += 1
                self.stats.eligibility_pairs_checked += len(dirty)
                self.stats.eligibility_pairs_skipped += max(0, n_workers - len(dirty))
            else:
                self.stats.eligibility_tasks_skipped += 1
                self.stats.eligibility_pairs_skipped += n_workers
            self._elig_fp[task.id] = fp
            self._task_seen_seq[task.id] = self._dirty_seq

    def _eligible_predicate(
        self, processor: CyLogProcessor | None, task: Task
    ) -> str | None:
        """``eligible_<predicate>/1`` wins over ``eligible/1``; ``None``
        means the constraint screen applies."""
        if processor is None:
            return None
        idb = processor.compiled.program.idb_predicates()
        for name in (f"eligible_{task.predicate}", "eligible"):
            if name in idb:
                return name
        return None

    def _eligibility_fingerprint(
        self, task: Task, fp_cache: dict[tuple[str, str], Hashable]
    ) -> Hashable:
        """A value identifying the CyLog inputs of a task's eligible set.

        For *monotone* programs facts only accumulate, so the relation's
        cardinality is an exact change detector and the per-round comparison
        costs O(1).  With negation or aggregation the relation can shrink or
        swap elements at constant size, so the fingerprint is the relation
        content itself (one snapshot + set compare per project per round).
        Constraint-screen tasks use a constant: their input changes flow
        through ``_task_needs_full`` / the dirty-worker log instead.
        """
        processor = self._processors.get(task.project_id)
        name = self._eligible_predicate(processor, task)
        if name is None:
            return ("screen",)
        key = (task.project_id, name)
        fp = fp_cache.get(key)
        if fp is None:
            if processor.compiled.is_monotone:
                relation = processor.engine.store.maybe(name)
                fp = ("cylog", name, len(relation) if relation is not None else 0)
            else:
                fp = ("cylog-set", name, processor.facts(name))
            fp_cache[key] = fp
        return fp

    def _partial_eligibility(
        self,
        task: Task,
        dirty_workers: set[str],
        heads_cache: dict[tuple[str, str], set],
    ) -> None:
        """Re-derive eligibility for one task restricted to the workers
        whose inputs changed; everyone else's state is provably current."""
        project = self.projects.get(task.project_id)
        processor = self._processors.get(task.project_id)
        name = self._eligible_predicate(processor, task)
        heads: set | None = None
        if name is not None:
            key = (task.project_id, name)
            heads = heads_cache.get(key)
            if heads is None:
                heads = {value[0] for value in processor.facts(name) if value}
                heads_cache[key] = heads
        for worker_id in sorted(dirty_workers):
            worker = self.workers.maybe(worker_id)
            if worker is None:
                eligible = False
            elif heads is not None:
                eligible = worker_id in heads
            else:
                eligible = project.constraints.member_eligible(worker)
            if eligible:
                self.ledger.mark_eligible(worker_id, task.id, self.now)
            elif self.ledger.revoke_eligibility(worker_id, task.id):
                self.stats.eligibility_revoked += 1

    def _ensure_eligibility(self, task: Task) -> None:
        """Re-derive the complete Eligible set for one pending root task:
        mark newly eligible workers, retract stale system-derived rows."""
        project = self.projects.get(task.project_id)
        processor = self._processors.get(task.project_id)
        eligible_ids = self._eligible_worker_ids(project, processor, task)
        eligible = set(eligible_ids)
        for worker_id in eligible_ids:
            self.ledger.mark_eligible(worker_id, task.id, self.now)
        for worker_id in self.ledger.workers_with_status(
            task.id, RelationshipStatus.ELIGIBLE
        ):
            if worker_id not in eligible and self.ledger.revoke_eligibility(
                worker_id, task.id
            ):
                self.stats.eligibility_revoked += 1

    def _cross_check_eligibility(self) -> None:
        """Engine-diff-style oracle: recompute every pending root task's
        eligible set from scratch and verify the incrementally maintained
        ledger agrees.  A worker is *missing* when the full recompute would
        have marked her and the ledger has no relationship at all; a row is
        *stale* when the ledger says Eligible but the recompute disagrees."""
        self.stats.cross_checks += 1
        for task in self.pool.pending_root_tasks():
            project = self.projects.get(task.project_id)
            processor = self._processors.get(task.project_id)
            expected = set(self._eligible_worker_ids(project, processor, task))
            missing = {
                worker_id
                for worker_id in expected
                if self.ledger.status(worker_id, task.id) is None
            }
            stale = (
                set(
                    self.ledger.workers_with_status(
                        task.id, RelationshipStatus.ELIGIBLE
                    )
                )
                - expected
            )
            if missing or stale:
                raise PlatformError(
                    f"incremental eligibility diverged for task {task.id}: "
                    f"missing={sorted(missing)} stale={sorted(stale)}"
                )

    def _prune_round_state(self) -> None:
        """Drop dirty-tracking entries for tasks that can no longer return
        to the pending pool (completed/cancelled/expired), then truncate the
        dirty-worker log prefix every surviving task has already consumed."""
        open_ids = {task.id for task in self.pool.open_tasks()}
        for task_id in [t for t in self._elig_fp if t not in open_ids]:
            del self._elig_fp[task_id]
            self._task_seen_seq.pop(task_id, None)
            self.controller.clear_dirty(task_id)
        self._task_needs_full.intersection_update(open_ids)
        min_seen = min(self._task_seen_seq.values(), default=self._dirty_seq)
        if self._dirty_worker_log and self._dirty_worker_log[0][0] <= min_seen:
            self._dirty_worker_log = [
                entry for entry in self._dirty_worker_log if entry[0] > min_seen
            ]

    def _eligible_worker_ids(
        self,
        project: Project,
        processor: CyLogProcessor | None,
        task: Task,
    ) -> list[str]:
        """CyLog-driven eligibility: ``eligible_<predicate>/1`` wins over
        ``eligible/1``; otherwise the constraint screen applies."""
        name = self._eligible_predicate(processor, task)
        if name is not None:
            known = set(self.workers.ids())
            return sorted(
                value[0]
                for value in processor.facts(name)
                if value and value[0] in known
            )
        return [
            worker.id
            for worker in self.workers.all()
            if project.constraints.member_eligible(worker)
        ]

    def _attempt_assignment(self, project: Project, task: Task) -> AssignmentOutcome:
        outcome = self.controller.try_assign(
            task, project.constraints, project.assignment_algorithm, self.now
        )
        if outcome.suggestion is not None:
            existing = self._suggestions.setdefault(project.id, [])
            if not any(s.task_id == task.id for s in existing):
                existing.append(outcome.suggestion)
        return outcome

    def _on_task_active(self, event: Event) -> None:
        """Every member undertook the task: start the collaboration scheme."""
        task = self.pool.get(event["task_id"])
        project = self.projects.get(task.project_id)
        team = self.teams.get(event["team_id"])
        scheme = self.schemes.create(project.scheme.value)
        document = Document(self._doc_ids.next(), title=task.instruction)
        required_skills = tuple(r.skill for r in project.constraints.skills)

        def worker_skill(worker_id: str) -> float:
            factors = self.workers.get(worker_id).factors
            if required_skills:
                return factors.mean_skill(required_skills)
            return factors.reliability

        ctx = CollaborationContext(
            root_task=task,
            team=team,
            pool=self.pool,
            events=self.events,
            document=document,
            options=dict(project.options),
            worker_skill=worker_skill,
        )
        self._active_schemes[task.id] = (scheme, ctx)
        scheme.start(ctx, self.now)

    def _finish_collaboration(
        self, root_task: Task, team_result: TeamResult, last_micro_result: dict
    ) -> None:
        root_task = self.pool.get(root_task.id)
        quality = float(
            last_micro_result.get("quality", team_result.payload.get("quality", 1.0))
        )
        if root_task.predicate is not None:
            processor = self.processor(root_task.project_id)
            fill_values = team_result.fill_values
            if fill_values is None:
                raise CollaborationError(
                    f"task {root_task.id} fills predicate "
                    f"{root_task.predicate!r} but produced no fill values"
                )
            decl = processor.compiled.open_decls[root_task.predicate]
            key_mapping = dict(zip(decl.key, root_task.key_values))
            processor.supply_fact(root_task.predicate, key_mapping, fill_values)
        self.coordinator.record(team_result, quality, self.now)
        # Recording reinforced the affinity matrix, an input to team scoring
        # for every open formation problem: re-arm all pending root tasks so
        # the incremental round reproduces the full recompute's attempts.
        for pending in self.pool.pending_root_tasks():
            self.controller.mark_dirty(pending.id)
        del self._active_schemes[root_task.id]
        if root_task.predicate is not None:
            # New facts may demand new tasks immediately.
            self.processor(root_task.project_id).run()

    # -- observability ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Cheap structural summary used by pages, examples and benches."""
        return {
            "time": self.now,
            "workers": len(self.workers),
            "projects": len(self.projects),
            "tasks": self.pool.counts(),
            "teams": len(self.teams),
            "relationships": len(self.ledger),
            "affinity_pairs": len(self.affinity),
        }

    def stats_summary(self) -> dict[str, dict[str, int]]:
        """Cumulative serving-path work counters: the platform round's
        dirty-tracking effectiveness plus the storage query cache."""
        return {
            "platform": self.stats.as_dict(),
            "query_cache": self.db.query_cache.stats.as_dict(),
        }

    def collect_stats(self, collector) -> None:
        """Feed every counter into a :class:`repro.metrics.Collector`
        (``EngineStats``-style; call once per collector)."""
        self.stats.to_collector(collector)
        self.db.query_cache.stats.to_collector(collector)
        for project_id, processor in self._processors.items():
            processor.stats.to_collector(
                collector, prefix=f"cylog_engine.{project_id}"
            )
