"""The Crowd4U facade: every component of Figure 2 wired together.

The platform exposes the two personas of the demo:

**Requesters** register projects (a CyLog project description + desired
human factors + collaboration scheme), watch suggestions when no feasible
team exists, and read results.

**Workers** see the tasks they are eligible for on their user page,
declare interest, undertake (confirm) proposed team memberships, perform
micro-tasks, contribute to joint documents and submit team results.

Time advances through :meth:`step`, which performs one platform round:
CyLog re-evaluation → dynamic task generation → eligibility computation →
team formation attempts → deadline monitoring.

Rounds are *incremental* by default: the CyLog engine itself reports what
each evaluation added and removed (``EvaluationResult.added/removed``,
accumulated per project by ``CyLogProcessor.drain_deltas``), so the round
applies exactly those change sets to the Eligible ledger — no fingerprint
guessing.  Constraint-screen projects (no ``eligible`` rule) are driven by
a per-round dirty-worker set, and a task that sat outside the pending pool
(proposed/active) re-derives in full when it returns, since it missed the
change feeds in between.  ``step(full=True)`` — or
``Crowd4U(incremental=False)`` — is the recompute-everything escape hatch,
and ``step(cross_check=True)`` runs an engine-diff-style oracle that
verifies the incrementally maintained ledger against a from-scratch
recomputation.  Work counters live in :class:`PlatformStats`.

Every project's CyLog engine can be hash-sharded and evaluated in
parallel (``Crowd4U(config=RuntimeConfig(shards=8, executor="thread"))``
or GIL-free with ``executor="process"`` — see
:class:`repro.cylog.ShardConfig`): the
round's eligibility maintenance then consumes the engine's change sets
*per shard* — the removed-row membership probe
``relation.lookup((0,), (worker_id,))`` routes straight to the shard
owning the worker id instead of touching a global index — while
snapshots and deltas stay byte-identical to the single-store
configuration.  Joins whose index key misses the shard key prefix go
through the exchange operator (planner-chosen repartitions; disable
with ``exchange=False``) instead of chaining every shard.

>>> from repro.core import Crowd4U, HumanFactors, TeamConstraints
>>> platform = Crowd4U(seed=1)
>>> worker = platform.register_worker(
...     "ann", HumanFactors(native_languages=frozenset({"en"})))
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.config import RuntimeConfig

from repro.core.affinity import (
    AffinityMatrix,
    AffinityWeights,
    language_overlap,
    region_proximity,
    skill_complementarity,
)
from repro.core.assignment.controller import (
    AssignmentOutcome,
    RequesterSuggestion,
    TaskAssignmentController,
)
from repro.core.assignment.base import AssignerRegistry, default_registry
from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    SchemeRegistry,
    TeamResult,
    default_scheme_registry,
)
from repro.core.collaboration.artifacts import Document
from repro.core.collaboration.coordination import ResultCoordinator
from repro.core.constraints import TeamConstraints
from repro.core.events import Event, EventBus
from repro.core.human_factors import HumanFactors
from repro.core.monitor import CollaborationMonitor
from repro.core.projects import Project, ProjectManager, SchemeKind
from repro.core.relationships import (
    ELIGIBLE_ROOTED,
    RelationshipLedger,
    RelationshipStatus,
)
from repro.core.tasks import OPEN_STATUSES, Task, TaskKind, TaskPool, TaskStatus
from repro.core.teams import TeamRegistry, TeamStatus
from repro.core.workers import Worker, WorkerManager
from repro.cylog import CyLogProcessor, TaskRequest
from repro.errors import CollaborationError, PlatformError
from repro.storage import Database, col
from repro.util import IdFactory

#: Stored-value forms for the cached storage queries below.
_ELIGIBLE_ROOTED = tuple(status.value for status in ELIGIBLE_ROOTED)
_OPEN_STATUS_VALUES = tuple(status.value for status in OPEN_STATUSES)


@dataclass
class PlatformStats:
    """Work counters for one :class:`Crowd4U` instance (cumulative).

    The eligibility counters measure how much of the naive
    tasks × workers product each round actually re-derived:
    ``eligibility_pairs_skipped`` is the direct savings of the dirty-tracked
    incremental step over the full recompute.  Feed the counters into a
    metrics collector with :meth:`to_collector` (once per collector — the
    values are cumulative), mirroring ``EngineStats``.
    """

    rounds: int = 0
    eligibility_tasks_full: int = 0
    eligibility_tasks_partial: int = 0
    eligibility_tasks_skipped: int = 0
    eligibility_pairs_checked: int = 0
    eligibility_pairs_skipped: int = 0
    eligibility_revoked: int = 0
    assignment_attempts: int = 0
    assignments_skipped: int = 0
    cross_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "eligibility_tasks_full": self.eligibility_tasks_full,
            "eligibility_tasks_partial": self.eligibility_tasks_partial,
            "eligibility_tasks_skipped": self.eligibility_tasks_skipped,
            "eligibility_pairs_checked": self.eligibility_pairs_checked,
            "eligibility_pairs_skipped": self.eligibility_pairs_skipped,
            "eligibility_revoked": self.eligibility_revoked,
            "assignment_attempts": self.assignment_attempts,
            "assignments_skipped": self.assignments_skipped,
            "cross_checks": self.cross_checks,
        }

    def to_collector(self, collector, prefix: str = "platform") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)


@dataclass(frozen=True)
class RoundDeltas:
    """What one platform round changed in the eligibility surface.

    Published to :meth:`Crowd4U.subscribe_round_deltas` listeners at the
    end of every round's eligibility refresh, so consumers (the delta-mode
    simulation driver, dashboards) can react to exactly what changed
    instead of re-scanning the worker × task product each tick.

    ``eligible_added`` / ``eligible_removed`` map task ids to the workers
    whose *pure Eligible* rows were inserted / revoked this round by the
    incremental maintenance paths.  Tasks in ``full_tasks`` had their whole
    eligible set re-derived (new task, constraints changed, task returned
    to the pending pool, or a ``full=True`` round) — their per-worker
    changes are deliberately *not* enumerated, so subscribers must treat
    every worker of those tasks as potentially changed.  ``dirty_workers``
    is the round's consumed dirty set (factor edits / registrations).
    """

    round_no: int
    time: float
    eligible_added: dict[str, frozenset[str]] = field(default_factory=dict)
    eligible_removed: dict[str, frozenset[str]] = field(default_factory=dict)
    dirty_workers: frozenset[str] = frozenset()
    full_tasks: frozenset[str] = frozenset()


class _RoundRecording:
    """Mutable per-round accumulator behind :class:`RoundDeltas`."""

    __slots__ = ("added", "removed", "full")

    def __init__(self) -> None:
        self.added: dict[str, set[str]] = {}
        self.removed: dict[str, set[str]] = {}
        self.full: set[str] = set()


class Crowd4U:
    """One in-process Crowd4U deployment."""

    def __init__(
        self,
        seed: int = 0,
        db: Database | None = None,
        affinity_weights: AffinityWeights | None = None,
        incremental: bool = True,
        *,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.config = config = config if config is not None else RuntimeConfig()
        self.seed = seed
        self.now = 0.0
        self.incremental = incremental
        self.shard_config = config.to_shard_config()
        self.stats = PlatformStats()
        #: An explicitly supplied database wins; otherwise the config
        #: opens one on its chosen storage backend (restoring persisted
        #: state when the backend has any).
        self.db = db if db is not None else config.build_database()
        self.events = EventBus()
        self.workers = WorkerManager(self.db)
        self.affinity = AffinityMatrix()
        self.affinity_weights = affinity_weights or AffinityWeights()
        self.pool = TaskPool(self.db)
        self.ledger = RelationshipLedger(self.db)
        self.teams = TeamRegistry(self.db)
        self.projects = ProjectManager(self.db)
        self.assigners: AssignerRegistry = default_registry(seed)
        self.schemes: SchemeRegistry = default_scheme_registry()
        self.controller = TaskAssignmentController(
            workers=self.workers,
            ledger=self.ledger,
            affinity=self.affinity,
            pool=self.pool,
            teams=self.teams,
            events=self.events,
            registry=self.assigners,
        )
        self.coordinator = ResultCoordinator(
            db=self.db,
            pool=self.pool,
            teams=self.teams,
            ledger=self.ledger,
            affinity=self.affinity,
            events=self.events,
        )
        self.monitor = CollaborationMonitor(
            pool=self.pool, teams=self.teams, controller=self.controller,
            events=self.events,
        )
        self._processors: dict[str, CyLogProcessor] = {}
        self._active_schemes: dict[str, tuple[CollaborationScheme, CollaborationContext]] = {}
        self._suggestions: dict[str, list[RequesterSuggestion]] = {}
        self._doc_ids = IdFactory("doc", width=5)
        # -- dirty tracking for incremental rounds --------------------------
        #: Workers whose factors/registration changed since the last round;
        #: consumed by the constraint-screen eligibility path (CyLog-driven
        #: eligibility rides the engine's own change sets instead).
        self._dirty_workers: set[str] = set()
        #: tasks whose whole eligible set must be re-derived (constraint
        #: updates); new tasks are caught by the missing round cursor.
        self._task_needs_full: set[str] = set()
        #: task -> the round number its eligibility last consumed.  A task
        #: absent for a round (parked in PROPOSED/ACTIVE, or freshly
        #: created) missed the drained change feeds and re-derives in full.
        self._task_round: dict[str, int] = {}
        #: Round-delta subscription surface (see :meth:`subscribe_round_deltas`).
        #: Recording only happens while at least one listener is registered,
        #: so snapshot-style consumers pay nothing.
        self._round_delta_listeners: list[Callable[[RoundDeltas], None]] = []
        self._recording: _RoundRecording | None = None
        #: Bounded affinity extension: the most recently registered worker
        #: ids, compared against each new registration when
        #: ``AffinityWeights.max_neighbors`` caps the quadratic extension.
        limit = self.affinity_weights.max_neighbors
        self._recent_workers: deque[str] | None = (
            deque(maxlen=limit) if limit else None
        )
        self.pool.on_create = self._publish_task_created
        self.events.subscribe("task.active", self._on_task_active)

    # ------------------------------------------------------------------
    # Worker-side API (user pages)
    # ------------------------------------------------------------------
    def register_worker(self, name: str, factors: HumanFactors) -> Worker:
        """Create a worker account; factors flow into every project's CyLog
        processor and the affinity matrix is extended incrementally."""
        worker = self.workers.register(name, factors, joined_at=self.now)
        self._extend_affinity(worker)
        for processor in self._processors.values():
            for predicate, rows in factors.as_fact_rows(worker.id).items():
                processor.add_facts(predicate, rows)
        self._mark_worker_dirty(worker.id)
        self.events.publish("worker.registered", self.now, worker_id=worker.id)
        return worker

    def update_worker_factors(self, worker_id: str, factors: HumanFactors) -> Worker:
        """Apply the worker page's human-factor edits (Figure 4)."""
        worker = self.workers.update_factors(worker_id, factors)
        # Re-inject facts; CyLog fact stores are additive, so eligibility
        # rules see the union of old and new declarations.
        for processor in self._processors.values():
            for predicate, rows in factors.as_fact_rows(worker.id).items():
                processor.add_facts(predicate, rows)
        self._mark_worker_dirty(worker_id)
        # New factors change how assigners screen this worker: re-arm every
        # task where the worker is a live team-formation candidate.
        for status in (RelationshipStatus.INTERESTED, RelationshipStatus.UNDERTAKES):
            for task_id in self.ledger.tasks_with_status(worker_id, status):
                self.controller.mark_dirty(task_id)
        self.events.publish("worker.updated", self.now, worker_id=worker_id)
        return worker

    def eligible_tasks(self, worker_id: str) -> list[Task]:
        """The user page's task list: pending root tasks the worker is
        eligible for (§2.2.1 step 3).

        Served through the storage query cache: repeated renders between
        ledger mutations cost one dict lookup instead of a table scan.
        """
        self.workers.get(worker_id)
        rows = (
            self.db.query("relationship")
            .where(
                (col("worker_id") == worker_id)
                & col("status").in_(_ELIGIBLE_ROOTED)
            )
            .project("task_id")
            .execute_cached()
        )
        related = {row["task_id"] for row in rows}
        return [t for t in self.pool.pending_root_tasks() if t.id in related]

    def declare_interest(self, worker_id: str, task_id: str) -> None:
        """Record InterestedIn (requires eligibility)."""
        self.ledger.declare_interest(worker_id, task_id, self.now)
        # The interested set grew: the task is worth a fresh formation attempt.
        self.controller.mark_dirty(task_id)
        self.events.publish(
            "worker.interested", self.now, worker_id=worker_id, task_id=task_id
        )

    def confirm_membership(self, worker_id: str, task_id: str) -> None:
        """A proposed member undertakes the collaborative task."""
        task = self.pool.get(task_id)
        if task.team_id is None:
            raise PlatformError(f"task {task_id} has no proposed team")
        self.controller.confirm_member(task.team_id, worker_id, self.now)

    def decline_membership(self, worker_id: str, task_id: str) -> None:
        task = self.pool.get(task_id)
        if task.team_id is None:
            raise PlatformError(f"task {task_id} has no proposed team")
        self.controller.decline_member(task.team_id, worker_id, self.now)

    def tasks_for_worker(self, worker_id: str) -> list[Task]:
        """Open micro-tasks addressed to the worker, including JOINT tasks
        addressed to her team.  Both lists come from cached storage queries;
        the JOINT candidate set is worker-independent, so one cache entry
        serves every worker page."""
        rows = (
            self.db.query("task")
            .where(
                (col("assignee") == worker_id)
                & col("status").in_(_OPEN_STATUS_VALUES)
            )
            .project("id")
            .execute_cached()
        )
        addressed = [self.pool.get(row["id"]) for row in rows]
        joint_rows = (
            self.db.query("task")
            .where(
                (col("kind") == TaskKind.JOINT.value)
                & (col("status") == TaskStatus.PENDING.value)
            )
            .project("id")
            .execute_cached()
        )
        for row in joint_rows:
            task = self.pool.get(row["id"])
            if worker_id in task.payload.get("addressed_to", ()):
                addressed.append(task)
        return sorted(addressed, key=lambda t: t.id)

    def submit_micro_result(
        self, task_id: str, worker_id: str, result: dict[str, Any]
    ) -> None:
        """Complete one micro-task; the scheme may generate follow-ups and
        the whole collaboration may finish."""
        task = self.pool.get(task_id)
        if task.kind is TaskKind.JOINT:
            if worker_id not in task.payload.get("addressed_to", ()):
                raise PlatformError(
                    f"worker {worker_id} is not addressed by joint task {task_id}"
                )
            task = self.pool.set_assignee(task_id, worker_id)
        elif task.assignee != worker_id:
            raise PlatformError(
                f"task {task_id} is addressed to {task.assignee!r}, "
                f"not {worker_id!r}"
            )
        if task.parent_task_id is None:
            raise PlatformError(f"task {task_id} is not a scheme micro-task")
        completed = self.pool.complete(task_id, result)
        self.events.publish(
            "micro.completed", self.now,
            task_id=task_id, worker_id=worker_id, task_kind=task.kind.value,
        )
        entry = self._active_schemes.get(task.parent_task_id)
        if entry is None:
            return  # scheme already finished (e.g. duplicate submission path)
        scheme, ctx = entry
        scheme.on_micro_completed(ctx, completed, result, self.now)
        if scheme.is_complete(ctx):
            team_result = scheme.build_result(ctx, submitted_by=worker_id, now=self.now)
            self._finish_collaboration(ctx.root_task, team_result, result)

    def contribute(self, root_task_id: str, worker_id: str, content: str) -> None:
        """Write into the shared document of a simultaneous/hybrid task."""
        entry = self._active_schemes.get(root_task_id)
        if entry is None:
            raise CollaborationError(f"task {root_task_id} has no active scheme")
        scheme, ctx = entry
        contribute = getattr(scheme, "contribute", None)
        if contribute is None:
            raise CollaborationError(
                f"scheme {scheme.kind!r} does not accept parallel contributions"
            )
        contribute(ctx, worker_id, content, self.now)

    @contextlib.contextmanager
    def batch_writes(self) -> Iterator["Crowd4U"]:
        """Coalesce a burst of worker-facing mutations into one engine
        continuation per project.

        Enters every project processor's :meth:`CyLogProcessor.batch`
        context (in sorted project order, exited in reverse), so worker
        registrations, factor updates and answer submissions performed
        inside the block queue their facts and fold in with a single
        incremental evaluation — and one demand refresh — per project at
        block exit.  The serving front-end's admission drainer wraps each
        drained tick in this; it is equally useful for bulk imports.
        """
        with contextlib.ExitStack() as stack:
            for project_id in sorted(self._processors):
                stack.enter_context(self._processors[project_id].batch())
            yield self

    # ------------------------------------------------------------------
    # Requester-side API (admin pages)
    # ------------------------------------------------------------------
    def register_project(
        self,
        name: str,
        requester: str,
        cylog_source: str,
        scheme: SchemeKind = SchemeKind.SEQUENTIAL,
        constraints: TeamConstraints | None = None,
        assignment_algorithm: str = "greedy",
        options: dict[str, Any] | None = None,
    ) -> Project:
        """Register a project: parse the CyLog description, inject worker
        facts and start generating tasks (Figure 2, arrow 'register')."""
        constraints = constraints or TeamConstraints()
        project = self.projects.register(
            name=name,
            requester=requester,
            cylog_source=cylog_source,
            scheme=scheme,
            constraints=constraints,
            assignment_algorithm=assignment_algorithm,
            created_at=self.now,
            options=options,
        )
        processor = CyLogProcessor(cylog_source, config=self.config)
        processor.add_demand_listener(
            lambda requests, pid=project.id: self._materialise_requests(pid, requests)
        )
        processor.add_revocation_listener(
            lambda requests, pid=project.id: self._retire_requests(pid, requests)
        )
        self._processors[project.id] = processor
        # Inject the whole worker fact base as one batch: the batch exit
        # performs the single evaluation + demand refresh for the project.
        with processor.batch():
            for predicate, rows in self.workers.fact_rows().items():
                processor.add_facts(predicate, rows)
        self.events.publish(
            "project.registered", self.now, project_id=project.id, name=name
        )
        return project

    def post_task(
        self,
        project_id: str,
        instruction: str,
        kind: TaskKind = TaskKind.CUSTOM,
        payload: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> Task:
        """Post a root collaborative task directly (outside CyLog)."""
        project = self.projects.get(project_id)
        if deadline is None and project.constraints.recruitment_deadline is not None:
            deadline = self.now + project.constraints.recruitment_deadline
        task = self.pool.create(
            project_id=project_id,
            kind=kind,
            instruction=instruction,
            payload=dict(payload or {}),
            created_at=self.now,
            deadline=deadline,
        )
        self.controller.mark_dirty(task.id)
        self.events.publish(
            "task.posted", self.now, task_id=task.id, project_id=project_id
        )
        return task

    def update_constraints(
        self, project_id: str, constraints: TeamConstraints
    ) -> Project:
        """Admin form submission: new desired human factors (Figure 3)."""
        project = self.projects.update_constraints(project_id, constraints)
        self._suggestions.pop(project_id, None)
        # Constraints feed both the eligibility screen and team formation:
        # every open root task of the project must re-derive from scratch.
        for task in self.pool.open_tasks(project_id):
            if task.is_root:
                self._task_needs_full.add(task.id)
                self.controller.mark_dirty(task.id)
        self.events.publish(
            "project.constraints_updated", self.now, project_id=project_id
        )
        return project

    def suggestions_for(self, project_id: str) -> list[RequesterSuggestion]:
        """Pending requester feedback (no feasible team situations)."""
        return list(self._suggestions.get(project_id, ()))

    def processor(self, project_id: str) -> CyLogProcessor:
        try:
            return self._processors[project_id]
        except KeyError:
            raise PlatformError(
                f"project {project_id!r} has no CyLog processor"
            ) from None

    def results_for(self, project_id: str) -> list[dict]:
        return self.coordinator.results_for_project(project_id)

    # ------------------------------------------------------------------
    # The platform round
    # ------------------------------------------------------------------
    def step(
        self,
        dt: float = 1.0,
        full: bool | None = None,
        cross_check: bool = False,
    ) -> dict[str, int]:
        """Advance time and run one platform round.

        ``full=True`` forces the recompute-everything round regardless of
        the instance's ``incremental`` setting (``full=False`` forces the
        incremental round); ``cross_check=True`` additionally verifies the
        incremental bookkeeping against a from-scratch eligibility
        recomputation, engine-diff style, raising :class:`PlatformError` on
        divergence.
        """
        self.now += dt
        incremental = self.incremental if full is None else not full
        self.stats.rounds += 1
        generated_before = len(self.pool)
        for processor in self._processors.values():
            processor.run()
        self._refresh_eligibility(incremental)
        if cross_check:
            self._cross_check_eligibility()
        attempts = 0
        proposals = 0
        skipped = 0
        for project in self.projects.active():
            for task in self.pool.pending_root_tasks(project.id):
                if incremental and not self.controller.is_dirty(task.id):
                    skipped += 1
                    self.stats.assignments_skipped += 1
                    continue
                self.controller.clear_dirty(task.id)
                outcome = self._attempt_assignment(project, task)
                attempts += 1
                self.stats.assignment_attempts += 1
                if outcome.proposed:
                    proposals += 1
        monitor_counts = self.monitor.tick(self.now)
        self._prune_round_state()
        return {
            "time": int(self.now),
            "tasks_generated": len(self.pool) - generated_before,
            "assignment_attempts": attempts,
            "assignments_skipped": skipped,
            "teams_proposed": proposals,
            **monitor_counts,
        }

    def run_until_quiet(self, max_steps: int = 1000, dt: float = 1.0) -> int:
        """Step until no open root tasks remain (or the step budget ends);
        returns the number of steps taken."""
        for steps in range(1, max_steps + 1):
            self.step(dt)
            if not any(t.is_root for t in self.pool.open_tasks()):
                return steps
        return max_steps

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def subscribe_round_deltas(self, listener: Callable[[RoundDeltas], None]) -> None:
        """Receive a :class:`RoundDeltas` after every round's eligibility
        refresh.  Registering the first listener turns recording on; with no
        listeners the incremental paths skip all bookkeeping."""
        self._round_delta_listeners.append(listener)

    def _publish_task_created(self, task: Task) -> None:
        """Pool creation hook → ``task.created`` event.

        Unlike ``task.posted`` / ``task.generated`` (root tasks only), this
        fires for *every* task including scheme-generated micro-tasks, so a
        subscriber can maintain an addressed-task index without scanning."""
        self.events.publish(
            "task.created", self.now,
            task_id=task.id, task_kind=task.kind.value,
            assignee=task.assignee, parent_task_id=task.parent_task_id,
        )

    def _extend_affinity(self, new_worker: Worker) -> None:
        weights = self.affinity_weights
        if weights.max_neighbors == 0:
            return
        if self._recent_workers is not None:
            others: list[Worker] = [
                self.workers.get(wid) for wid in self._recent_workers
            ]
            self._recent_workers.append(new_worker.id)
        else:
            others = self.workers.all()
        total = weights.language + weights.region + weights.skill_complementarity
        for other in others:
            if other.id == new_worker.id:
                continue
            score = (
                weights.language * language_overlap(new_worker, other)
                + weights.region * region_proximity(new_worker, other, weights.geo_scale_km)
                + weights.skill_complementarity * skill_complementarity(new_worker, other)
            ) / total
            if score > 0.0:
                self.affinity.set(new_worker.id, other.id, score)

    def _materialise_requests(
        self, project_id: str, requests: list[TaskRequest]
    ) -> None:
        """Demand listener: open-predicate demand → tasks in the pool."""
        project = self.projects.get(project_id)
        deadline = None
        if project.constraints.recruitment_deadline is not None:
            deadline = self.now + project.constraints.recruitment_deadline
        for request in requests:
            task = self.pool.create(
                project_id=project_id,
                kind=TaskKind.OPEN_FILL,
                instruction=request.instruction,
                predicate=request.predicate,
                key_values=request.key_values,
                fill_columns=request.fill_columns,
                choices=request.choices,
                created_at=self.now,
                deadline=deadline,
            )
            self.controller.mark_dirty(task.id)
            self.events.publish(
                "task.generated", self.now,
                task_id=task.id, project_id=project_id,
                predicate=request.predicate,
                key=list(request.key_values),
            )

    def _retire_requests(self, project_id: str, requests: list[TaskRequest]) -> None:
        """Revocation listener: an upstream retraction withdrew open-
        predicate demand before anyone answered it — cancel the tasks it
        materialised.  Only unstarted (PENDING / team-PROPOSED) tasks are
        cancelled: an ACTIVE team is already working and its answer will
        simply land in a relation nothing derives from any more."""
        identities = {(r.predicate, r.key_values) for r in requests}
        for status in (TaskStatus.PENDING, TaskStatus.PROPOSED):
            for task in self.pool.by_status(status, project_id):
                if task.kind is not TaskKind.OPEN_FILL:
                    continue
                if (task.predicate, task.key_values) not in identities:
                    continue
                if task.team_id is not None:
                    self.teams.set_status(task.team_id, TeamStatus.DISSOLVED)
                    self.events.publish(
                        "team.dissolved", self.now,
                        team_id=task.team_id, task_id=task.id,
                        reason="demand retracted",
                    )
                    self.pool.clear_team(task.id)
                self.pool.set_status(task.id, TaskStatus.CANCELLED)
                self.controller.clear_dirty(task.id)
                self.events.publish(
                    "task.cancelled", self.now,
                    task_id=task.id, project_id=project_id,
                    predicate=task.predicate,
                    key=list(task.key_values),
                    reason="demand retracted",
                )

    # -- eligibility (full + delta-driven incremental) ----------------------
    def _mark_worker_dirty(self, worker_id: str) -> None:
        """A worker's factors/facts changed: the constraint-screen path
        re-checks exactly this worker on the next round."""
        self._dirty_workers.add(worker_id)

    def _eligibility_deltas(
        self, processor: CyLogProcessor
    ) -> dict[str, tuple[set[str], set[str]]]:
        """Drain the processor's change sets into per-predicate worker-id
        transitions: ``name -> (now eligible, no longer eligible)``.

        The engine reports tuple-level deltas; a worker leaves the eligible
        set only when *no* supporting tuple with her id remains (checked
        through the relation's key index, one O(1) probe per removed row).
        """
        known = set(self.workers.ids())
        transitions: dict[str, tuple[set[str], set[str]]] = {}
        for name, (added_rows, removed_rows) in processor.drain_deltas().items():
            if name != "eligible" and not name.startswith("eligible_"):
                continue
            added = {row[0] for row in added_rows if row and row[0] in known}
            relation = processor.engine.store.maybe(name)
            removed = {
                row[0]
                for row in removed_rows
                if row
                and row[0] not in added
                and (relation is None or not relation.lookup((0,), (row[0],)))
            }
            transitions[name] = (added, removed)
        return transitions

    def _refresh_eligibility(self, incremental: bool) -> None:
        """Bring the Eligible relationship up to date for every pending root
        task — completely, or by applying the engine-reported change sets
        (plus the dirty-worker set for constraint-screen projects)."""
        pending = self.pool.pending_root_tasks()
        n_workers = len(self.workers)
        round_no = self.stats.rounds
        recording = _RoundRecording() if self._round_delta_listeners else None
        self._recording = recording
        # Drain every project's change feed exactly once per round, whether
        # or not the round consumes it incrementally — the feed is per-run
        # state, not per-task state.
        deltas = {
            project_id: self._eligibility_deltas(processor)
            for project_id, processor in self._processors.items()
        }
        if not incremental:
            for task in pending:
                self._ensure_eligibility(task)
                self._task_needs_full.discard(task.id)
                self._task_round[task.id] = round_no
                if recording is not None:
                    recording.full.add(task.id)
                self.stats.eligibility_tasks_full += 1
                self.stats.eligibility_pairs_checked += n_workers
            self._notify_round_deltas(recording, round_no)
            self._dirty_workers.clear()
            return
        for task in pending:
            if (
                task.id in self._task_needs_full
                or self._task_round.get(task.id) != round_no - 1
            ):
                # Never-seen task, updated constraints, or a task that sat
                # outside the pending pool and missed drained change feeds:
                # the whole eligible set must be re-derived.
                self._task_needs_full.discard(task.id)
                self._ensure_eligibility(task)
                if recording is not None:
                    recording.full.add(task.id)
                self.stats.eligibility_tasks_full += 1
                self.stats.eligibility_pairs_checked += n_workers
            else:
                self._apply_incremental_eligibility(
                    task, deltas.get(task.project_id, {}), n_workers
                )
            self._task_round[task.id] = round_no
        self._notify_round_deltas(recording, round_no)
        self._dirty_workers.clear()

    def _notify_round_deltas(
        self, recording: _RoundRecording | None, round_no: int
    ) -> None:
        self._recording = None
        if recording is None:
            return
        payload = RoundDeltas(
            round_no=round_no,
            time=self.now,
            eligible_added={
                task_id: frozenset(workers)
                for task_id, workers in recording.added.items()
            },
            eligible_removed={
                task_id: frozenset(workers)
                for task_id, workers in recording.removed.items()
            },
            dirty_workers=frozenset(self._dirty_workers),
            full_tasks=frozenset(recording.full),
        )
        for listener in self._round_delta_listeners:
            listener(payload)

    def _apply_incremental_eligibility(
        self,
        task: Task,
        transitions: dict[str, tuple[set[str], set[str]]],
        n_workers: int,
    ) -> None:
        """Apply one round's change sets to one task's Eligible rows."""
        recording = self._recording
        processor = self._processors.get(task.project_id)
        name = self._eligible_predicate(processor, task)
        if name is None:
            # Constraint screen: only dirtied workers can have changed.
            dirty = self._dirty_workers
            if not dirty:
                self.stats.eligibility_tasks_skipped += 1
                self.stats.eligibility_pairs_skipped += n_workers
                return
            project = self.projects.get(task.project_id)
            for worker_id in sorted(dirty):
                worker = self.workers.maybe(worker_id)
                if worker is not None and project.constraints.member_eligible(worker):
                    if (
                        self.ledger.mark_eligible(worker_id, task.id, self.now)
                        and recording is not None
                    ):
                        recording.added.setdefault(task.id, set()).add(worker_id)
                elif self.ledger.revoke_eligibility(worker_id, task.id):
                    self.stats.eligibility_revoked += 1
                    if recording is not None:
                        recording.removed.setdefault(task.id, set()).add(worker_id)
            self.stats.eligibility_tasks_partial += 1
            self.stats.eligibility_pairs_checked += len(dirty)
            self.stats.eligibility_pairs_skipped += max(0, n_workers - len(dirty))
            return
        added, removed = transitions.get(name, (set(), set()))
        # Dirty workers not covered by the engine's delta still need one
        # membership probe: a worker may register *after* the facts that
        # make her eligible were derived.
        stale = self._dirty_workers - added - removed
        changed = len(added) + len(removed) + len(stale)
        if not changed:
            self.stats.eligibility_tasks_skipped += 1
            self.stats.eligibility_pairs_skipped += n_workers
            return
        for worker_id in sorted(added):
            if (
                self.ledger.mark_eligible(worker_id, task.id, self.now)
                and recording is not None
            ):
                recording.added.setdefault(task.id, set()).add(worker_id)
        for worker_id in sorted(removed):
            if self.ledger.revoke_eligibility(worker_id, task.id):
                self.stats.eligibility_revoked += 1
                if recording is not None:
                    recording.removed.setdefault(task.id, set()).add(worker_id)
        if stale:
            relation = processor.engine.store.maybe(name)
            for worker_id in sorted(stale):
                present = relation is not None and bool(
                    relation.lookup((0,), (worker_id,))
                )
                if present:
                    if (
                        self.ledger.mark_eligible(worker_id, task.id, self.now)
                        and recording is not None
                    ):
                        recording.added.setdefault(task.id, set()).add(worker_id)
                elif self.ledger.revoke_eligibility(worker_id, task.id):
                    self.stats.eligibility_revoked += 1
                    if recording is not None:
                        recording.removed.setdefault(task.id, set()).add(worker_id)
        self.stats.eligibility_tasks_partial += 1
        self.stats.eligibility_pairs_checked += changed
        self.stats.eligibility_pairs_skipped += max(0, n_workers - changed)

    def _eligible_predicate(
        self, processor: CyLogProcessor | None, task: Task
    ) -> str | None:
        """``eligible_<predicate>/1`` wins over ``eligible/1``; ``None``
        means the constraint screen applies."""
        if processor is None:
            return None
        idb = processor.compiled.program.idb_predicates()
        for name in (f"eligible_{task.predicate}", "eligible"):
            if name in idb:
                return name
        return None

    def _ensure_eligibility(self, task: Task) -> None:
        """Re-derive the complete Eligible set for one pending root task:
        mark newly eligible workers, retract stale system-derived rows."""
        project = self.projects.get(task.project_id)
        processor = self._processors.get(task.project_id)
        eligible_ids = self._eligible_worker_ids(project, processor, task)
        eligible = set(eligible_ids)
        for worker_id in eligible_ids:
            self.ledger.mark_eligible(worker_id, task.id, self.now)
        for worker_id in self.ledger.workers_with_status(
            task.id, RelationshipStatus.ELIGIBLE
        ):
            if worker_id not in eligible and self.ledger.revoke_eligibility(
                worker_id, task.id
            ):
                self.stats.eligibility_revoked += 1

    def _cross_check_eligibility(self) -> None:
        """Engine-diff-style oracle: recompute every pending root task's
        eligible set from scratch and verify the incrementally maintained
        ledger agrees.  A worker is *missing* when the full recompute would
        have marked her and the ledger has no relationship at all; a row is
        *stale* when the ledger says Eligible but the recompute disagrees."""
        self.stats.cross_checks += 1
        for task in self.pool.pending_root_tasks():
            project = self.projects.get(task.project_id)
            processor = self._processors.get(task.project_id)
            expected = set(self._eligible_worker_ids(project, processor, task))
            missing = {
                worker_id
                for worker_id in expected
                if self.ledger.status(worker_id, task.id) is None
            }
            stale = (
                set(
                    self.ledger.workers_with_status(
                        task.id, RelationshipStatus.ELIGIBLE
                    )
                )
                - expected
            )
            if missing or stale:
                raise PlatformError(
                    f"incremental eligibility diverged for task {task.id}: "
                    f"missing={sorted(missing)} stale={sorted(stale)}"
                )

    def _prune_round_state(self) -> None:
        """Drop round cursors for tasks that can no longer return to the
        pending pool (completed/cancelled/expired)."""
        open_ids = {task.id for task in self.pool.open_tasks()}
        for task_id in [t for t in self._task_round if t not in open_ids]:
            del self._task_round[task_id]
            self.controller.clear_dirty(task_id)
        self._task_needs_full.intersection_update(open_ids)

    def _eligible_worker_ids(
        self,
        project: Project,
        processor: CyLogProcessor | None,
        task: Task,
    ) -> list[str]:
        """CyLog-driven eligibility: ``eligible_<predicate>/1`` wins over
        ``eligible/1``; otherwise the constraint screen applies."""
        name = self._eligible_predicate(processor, task)
        if name is not None:
            known = set(self.workers.ids())
            return sorted(
                value[0]
                for value in processor.facts(name)
                if value and value[0] in known
            )
        return [
            worker.id
            for worker in self.workers.all()
            if project.constraints.member_eligible(worker)
        ]

    def _attempt_assignment(self, project: Project, task: Task) -> AssignmentOutcome:
        outcome = self.controller.try_assign(
            task, project.constraints, project.assignment_algorithm, self.now
        )
        if outcome.suggestion is not None:
            existing = self._suggestions.setdefault(project.id, [])
            if not any(s.task_id == task.id for s in existing):
                existing.append(outcome.suggestion)
        return outcome

    def _on_task_active(self, event: Event) -> None:
        """Every member undertook the task: start the collaboration scheme."""
        task = self.pool.get(event["task_id"])
        project = self.projects.get(task.project_id)
        team = self.teams.get(event["team_id"])
        scheme = self.schemes.create(project.scheme.value)
        document = Document(self._doc_ids.next(), title=task.instruction)
        required_skills = tuple(r.skill for r in project.constraints.skills)

        def worker_skill(worker_id: str) -> float:
            factors = self.workers.get(worker_id).factors
            if required_skills:
                return factors.mean_skill(required_skills)
            return factors.reliability

        ctx = CollaborationContext(
            root_task=task,
            team=team,
            pool=self.pool,
            events=self.events,
            document=document,
            options=dict(project.options),
            worker_skill=worker_skill,
        )
        self._active_schemes[task.id] = (scheme, ctx)
        scheme.start(ctx, self.now)

    def _finish_collaboration(
        self, root_task: Task, team_result: TeamResult, last_micro_result: dict
    ) -> None:
        root_task = self.pool.get(root_task.id)
        quality = float(
            last_micro_result.get("quality", team_result.payload.get("quality", 1.0))
        )
        if root_task.predicate is not None:
            processor = self.processor(root_task.project_id)
            fill_values = team_result.fill_values
            if fill_values is None:
                raise CollaborationError(
                    f"task {root_task.id} fills predicate "
                    f"{root_task.predicate!r} but produced no fill values"
                )
            decl = processor.compiled.open_decls[root_task.predicate]
            key_mapping = dict(zip(decl.key, root_task.key_values))
            processor.supply_fact(root_task.predicate, key_mapping, fill_values)
        self.coordinator.record(team_result, quality, self.now)
        # Recording reinforced the affinity matrix, an input to team scoring
        # for every open formation problem: re-arm all pending root tasks so
        # the incremental round reproduces the full recompute's attempts.
        for pending in self.pool.pending_root_tasks():
            self.controller.mark_dirty(pending.id)
        del self._active_schemes[root_task.id]
        if root_task.predicate is not None:
            # New facts may demand new tasks immediately.
            self.processor(root_task.project_id).run()

    def close(self) -> None:
        """Release every project engine's executor threads and flush the
        storage backend (both no-ops in the default configuration)."""
        for processor in self._processors.values():
            processor.close()
        self.db.close()

    # -- observability ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Cheap structural summary used by pages, examples and benches."""
        return {
            "time": self.now,
            "workers": len(self.workers),
            "projects": len(self.projects),
            "tasks": self.pool.counts(),
            "teams": len(self.teams),
            "relationships": len(self.ledger),
            "affinity_pairs": len(self.affinity),
            "engine_shards": self.shard_config.shards,
            "storage_backend": (
                self.db.backend.name if self.db.backend is not None else "memory"
            ),
        }

    def stats_summary(self) -> dict[str, dict[str, int]]:
        """Cumulative serving-path work counters: the platform round's
        dirty-tracking effectiveness plus the storage query cache."""
        return {
            "platform": self.stats.as_dict(),
            "query_cache": self.db.query_cache.stats.as_dict(),
        }

    def collect_stats(self, collector) -> None:
        """Feed every counter into a :class:`repro.metrics.Collector`
        (``EngineStats``-style; call once per collector)."""
        self.stats.to_collector(collector)
        self.db.query_cache.stats.to_collector(collector)
        for project_id, processor in self._processors.items():
            processor.stats.to_collector(
                collector, prefix=f"cylog_engine.{project_id}"
            )
