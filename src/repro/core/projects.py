"""Projects and the Project Manager of Figure 2.

A requester registers a *project description* written in CyLog together
with the desired human factors (constraints) and the collaboration scheme.
"For each submitted project description, an administration page for the
project is generated" (§2.2.1) — the data model behind that page lives
here; its HTML rendering is in :mod:`repro.forms.admin`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.constraints import TeamConstraints
from repro.errors import PlatformError
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util import IdFactory


class SchemeKind(enum.Enum):
    """The three worker collaboration schemes of §2.3."""

    SEQUENTIAL = "sequential"
    SIMULTANEOUS = "simultaneous"
    HYBRID = "hybrid"


class ProjectStatus(enum.Enum):
    ACTIVE = "active"
    PAUSED = "paused"
    FINISHED = "finished"


@dataclass(frozen=True)
class Project:
    id: str
    name: str
    requester: str
    cylog_source: str
    scheme: SchemeKind
    constraints: TeamConstraints
    assignment_algorithm: str = "greedy"
    status: ProjectStatus = ProjectStatus.ACTIVE
    created_at: float = 0.0
    #: Scheme-specific options (e.g. hybrid stage layout).
    options: dict[str, Any] = field(default_factory=dict)


_SCHEMA = TableSchema(
    "project",
    [
        Column("id", ColumnType.TEXT),
        Column("name", ColumnType.TEXT),
        Column("requester", ColumnType.TEXT),
        Column("cylog_source", ColumnType.TEXT),
        Column("scheme", ColumnType.TEXT),
        Column("assignment_algorithm", ColumnType.TEXT),
        Column("status", ColumnType.TEXT),
        Column("created_at", ColumnType.FLOAT),
        Column("options", ColumnType.JSON),
        Column("constraints", ColumnType.JSON),
    ],
    primary_key=("id",),
)


class ProjectManager:
    """Registry of all projects with persistence."""

    def __init__(self, db: Database, id_factory: IdFactory | None = None) -> None:
        self.db = db
        if not db.has_table(_SCHEMA.name):
            db.create_table(_SCHEMA)
        self._ids = id_factory or IdFactory("proj", width=4)
        self._cache: dict[str, Project] = {}
        for row in db.table(_SCHEMA.name).rows():
            project = _project_from_row(row)
            self._cache[project.id] = project

    def register(
        self,
        name: str,
        requester: str,
        cylog_source: str,
        scheme: SchemeKind,
        constraints: TeamConstraints,
        assignment_algorithm: str = "greedy",
        created_at: float = 0.0,
        options: dict[str, Any] | None = None,
    ) -> Project:
        project = Project(
            id=self._ids.next(),
            name=name,
            requester=requester,
            cylog_source=cylog_source,
            scheme=scheme,
            constraints=constraints,
            assignment_algorithm=assignment_algorithm,
            created_at=created_at,
            options=dict(options or {}),
        )
        self.db.insert(_SCHEMA.name, _project_to_row(project))
        self._cache[project.id] = project
        return project

    def update_constraints(
        self, project_id: str, constraints: TeamConstraints
    ) -> Project:
        """Apply new desired human factors (the admin-form submit action)."""
        project = replace(self.get(project_id), constraints=constraints)
        self.db.update(_SCHEMA.name, (project_id,), _project_to_row(project))
        self._cache[project_id] = project
        return project

    def set_status(self, project_id: str, status: ProjectStatus) -> Project:
        project = replace(self.get(project_id), status=status)
        self.db.update(_SCHEMA.name, (project_id,), _project_to_row(project))
        self._cache[project_id] = project
        return project

    def get(self, project_id: str) -> Project:
        project = self._cache.get(project_id)
        if project is None:
            raise PlatformError(f"unknown project {project_id!r}")
        return project

    def all(self) -> list[Project]:
        return sorted(self._cache.values(), key=lambda p: p.id)

    def active(self) -> list[Project]:
        return [p for p in self.all() if p.status is ProjectStatus.ACTIVE]

    def __len__(self) -> int:
        return len(self._cache)


def constraints_to_dict(constraints: TeamConstraints) -> dict[str, Any]:
    """JSON-serialisable form of the desired human factors."""
    return {
        "min_size": constraints.min_size,
        "critical_mass": constraints.critical_mass,
        "skills": [
            {"skill": r.skill, "min_level": r.min_level, "aggregator": r.aggregator}
            for r in constraints.skills
        ],
        "required_languages": sorted(constraints.required_languages),
        "language_proficiency": constraints.language_proficiency,
        "quality_threshold": constraints.quality_threshold,
        "cost_budget": (
            None if constraints.cost_budget == float("inf") else constraints.cost_budget
        ),
        "region": constraints.region,
        "recruitment_deadline": constraints.recruitment_deadline,
        "confirmation_window": constraints.confirmation_window,
    }


def constraints_from_dict(payload: dict[str, Any]) -> TeamConstraints:
    from repro.core.constraints import SkillRequirement

    return TeamConstraints(
        min_size=payload.get("min_size", 1),
        critical_mass=payload.get("critical_mass", 5),
        skills=tuple(
            SkillRequirement(
                skill=entry["skill"],
                min_level=entry["min_level"],
                aggregator=entry.get("aggregator", "max"),
            )
            for entry in payload.get("skills", [])
        ),
        required_languages=frozenset(payload.get("required_languages", [])),
        language_proficiency=payload.get("language_proficiency", 0.3),
        quality_threshold=payload.get("quality_threshold", 0.0),
        cost_budget=(
            float("inf")
            if payload.get("cost_budget") is None
            else payload["cost_budget"]
        ),
        region=payload.get("region"),
        recruitment_deadline=payload.get("recruitment_deadline"),
        confirmation_window=payload.get("confirmation_window", 50.0),
    )


def _project_to_row(project: Project) -> dict[str, Any]:
    return {
        "id": project.id,
        "name": project.name,
        "requester": project.requester,
        "cylog_source": project.cylog_source,
        "scheme": project.scheme.value,
        "assignment_algorithm": project.assignment_algorithm,
        "status": project.status.value,
        "created_at": project.created_at,
        "options": dict(project.options),
        "constraints": constraints_to_dict(project.constraints),
    }


def _project_from_row(row: dict[str, Any]) -> Project:
    return Project(
        id=row["id"],
        name=row["name"],
        requester=row["requester"],
        cylog_source=row["cylog_source"],
        scheme=SchemeKind(row["scheme"]),
        constraints=constraints_from_dict(row["constraints"]),
        assignment_algorithm=row["assignment_algorithm"],
        status=ProjectStatus(row["status"]),
        created_at=row["created_at"],
        options=row["options"],
    )
