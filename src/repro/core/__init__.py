"""Crowd4U platform core.

Implements the architecture of Figure 2: worker manager (human factors +
affinity matrix), task pool, project manager, relationship ledger
(Eligible / InterestedIn / Undertakes), the task assignment controller with
its team-formation algorithms, the three worker-collaboration schemes, and
the :class:`~repro.core.platform.Crowd4U` facade tying them together.
"""

from repro.core.affinity import AffinityMatrix, AffinityWeights, affinity_from_factors
from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.core.human_factors import HumanFactors
from repro.core.platform import Crowd4U, RoundDeltas
from repro.core.projects import Project, ProjectManager
from repro.core.relationships import RelationshipLedger, RelationshipStatus
from repro.core.tasks import Task, TaskKind, TaskPool, TaskStatus
from repro.core.teams import Team, TeamStatus
from repro.core.workers import Worker, WorkerManager

__all__ = [
    "AffinityMatrix",
    "AffinityWeights",
    "Crowd4U",
    "HumanFactors",
    "Project",
    "ProjectManager",
    "RelationshipLedger",
    "RelationshipStatus",
    "RoundDeltas",
    "SkillRequirement",
    "Task",
    "TaskKind",
    "TaskPool",
    "TaskStatus",
    "Team",
    "TeamConstraints",
    "TeamStatus",
    "Worker",
    "WorkerManager",
    "affinity_from_factors",
]
