"""Deadline monitoring and re-assignment (§2.2.1).

"Once workers undertake a task, Crowd4U monitors their collaboration for
ensuring successful task completion" — and before that, the monitor
enforces the two recruitment-side deadlines:

* **confirmation window**: a proposed team whose members did not all
  undertake in time is dissolved and assignment re-executes;
* **recruitment deadline** (the "expiration time for worker recruitment"
  the requester enters on the admin page, §2.4): a pending task past its
  deadline expires.
"""

from __future__ import annotations

from repro.core.assignment.controller import TaskAssignmentController
from repro.core.events import EventBus
from repro.core.tasks import TaskPool, TaskStatus
from repro.core.teams import TeamRegistry, TeamStatus


class CollaborationMonitor:
    def __init__(
        self,
        pool: TaskPool,
        teams: TeamRegistry,
        controller: TaskAssignmentController,
        events: EventBus,
    ) -> None:
        self.pool = pool
        self.teams = teams
        self.controller = controller
        self.events = events

    def tick(self, now: float) -> dict[str, int]:
        """Run one monitoring sweep; returns counters for observability."""
        dissolved = 0
        expired = 0
        for team in self.teams.all():
            if team.status is TeamStatus.PROPOSED:
                if self.controller.check_confirmation_deadline(team.id, now):
                    dissolved += 1
        for task in self.pool.by_status(TaskStatus.PENDING):
            if task.deadline is not None and now > task.deadline:
                self.pool.set_status(task.id, TaskStatus.EXPIRED)
                self.events.publish(
                    "task.expired", now, task_id=task.id,
                    project_id=task.project_id,
                )
                expired += 1
        return {"teams_dissolved": dissolved, "tasks_expired": expired}
