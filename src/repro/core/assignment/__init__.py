"""Team formation: affinity-maximising clique search under constraints.

[9] (Rahman et al., ICDM 2015) models workers as a complete graph with
pairwise-affinity edge weights; a team is a clique whose size must not
exceed the task's upper critical mass, and assignment means finding the
clique that maximises intra-affinity subject to quality and cost limits.
They prove the optimisation NP-complete and propose practical
approximations — reproduced here as:

* :class:`ExactAssigner` — branch-and-bound optimum (small instances; the
  quality yardstick for bench E7),
* :class:`GreedyAssigner` — multi-seed greedy clique growth,
* :class:`LocalSearchAssigner` — greedy + swap/add/drop hill climbing,
* :class:`GraspAssigner` — randomised construction + local search,
* baselines (:mod:`repro.core.assignment.baselines`) — random, skill-only
  (affinity-blind) and individual (micro-task platforms à la PyBossa).

All assigners share the :class:`AssignmentProblem` / `AssignmentResult`
interface and are looked up through :class:`AssignerRegistry` ("Crowd4U's
declarative and extensible architecture can easily be leveraged to
incorporate … other task assignment algorithms", §3).
"""

from repro.core.assignment.base import (
    AssignerRegistry,
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    default_registry,
)
from repro.core.assignment.baselines import (
    IndividualAssigner,
    RandomAssigner,
    SkillOnlyAssigner,
)
from repro.core.assignment.controller import (
    AssignmentOutcome,
    RequesterSuggestion,
    TaskAssignmentController,
)
from repro.core.assignment.decompose import (
    GridDecomposer,
    SegmentDecomposer,
    SubTaskSpec,
    TopicDecomposer,
    assign_subgroups,
)
from repro.core.assignment.exact import ExactAssigner
from repro.core.assignment.grasp import GraspAssigner
from repro.core.assignment.greedy import GreedyAssigner
from repro.core.assignment.local_search import LocalSearchAssigner

__all__ = [
    "AssignerRegistry",
    "AssignmentOutcome",
    "AssignmentProblem",
    "AssignmentResult",
    "ExactAssigner",
    "GraspAssigner",
    "GreedyAssigner",
    "GridDecomposer",
    "IndividualAssigner",
    "LocalSearchAssigner",
    "RandomAssigner",
    "RequesterSuggestion",
    "SegmentDecomposer",
    "SkillOnlyAssigner",
    "SubTaskSpec",
    "TaskAssignmentController",
    "TeamAssigner",
    "TopicDecomposer",
    "assign_subgroups",
    "default_registry",
]
