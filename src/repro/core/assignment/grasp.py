"""GRASP: greedy randomized adaptive search procedure.

Each iteration builds a team by repeatedly sampling the next member from a
restricted candidate list (the top-α fraction by marginal affinity gain),
then polishes it with :class:`LocalSearchAssigner`.  Randomisation explores
parts of the feasible region deterministic greedy never visits, typically
closing most of the remaining gap to the exact optimum (bench E7).
"""

from __future__ import annotations

from repro.core.assignment.base import (
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    infeasible,
)
from repro.core.assignment.local_search import LocalSearchAssigner
from repro.util.rng import make_rng


class GraspAssigner(TeamAssigner):
    """Randomised multi-start construction + local search."""

    name = "grasp"

    def __init__(
        self, seed: int = 0, iterations: int = 12, alpha: float = 0.3
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.seed = seed
        self.iterations = iterations
        self.alpha = alpha
        self._local = LocalSearchAssigner()

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        if not candidates:
            return infeasible(self.name, note="no screened candidates")
        rng = make_rng(self.seed, "grasp", len(candidates))
        constraints = problem.constraints
        by_id = {w.id: w for w in candidates}
        best: tuple[float, tuple[str, ...]] | None = None
        explored = 0
        for _ in range(self.iterations):
            team: list[str] = [rng.choice(candidates).id]
            cost = by_id[team[0]].factors.cost
            feasible_snapshot: tuple[str, ...] | None = None
            while len(team) < constraints.critical_mass:
                gains = []
                for candidate in candidates:
                    if candidate.id in team:
                        continue
                    if cost + candidate.factors.cost > constraints.cost_budget + 1e-12:
                        continue
                    gains.append(
                        (problem.affinity.marginal_gain(team, candidate.id),
                         candidate.id)
                    )
                explored += len(gains)
                if not gains:
                    break
                gains.sort(reverse=True)
                cutoff = max(1, int(len(gains) * self.alpha))
                _, chosen_id = gains[rng.randrange(cutoff)]
                team.append(chosen_id)
                cost += by_id[chosen_id].factors.cost
                if len(team) >= constraints.min_size and self._feasible(problem, team):
                    feasible_snapshot = tuple(team)
            if feasible_snapshot is None:
                if len(team) >= constraints.min_size and self._feasible(problem, team):
                    feasible_snapshot = tuple(team)
                else:
                    continue
            polished = self._local.improve_from(problem, list(feasible_snapshot))
            if polished.feasible:
                explored += polished.explored
                if best is None or polished.affinity_score > best[0]:
                    best = (polished.affinity_score, polished.team)
        if best is None:
            return infeasible(self.name, explored, note="no feasible construction")
        return self._result(problem, best[1], explored)
