"""Greedy construction followed by hill-climbing local search.

Moves considered in each round, best-improvement order:

* **swap** — replace one member with one outsider,
* **add** — join an outsider (if below the critical mass),
* **drop** — remove a member (if above the minimum size).

Every accepted move must keep the team feasible, so the search walks the
feasible region only.  Terminates at a local optimum or ``max_rounds``.
"""

from __future__ import annotations

from repro.core.assignment.base import (
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    infeasible,
)
from repro.core.assignment.greedy import GreedyAssigner


class LocalSearchAssigner(TeamAssigner):
    """Hill climbing over feasible teams, seeded by greedy."""

    name = "local_search"

    def __init__(self, max_rounds: int = 64) -> None:
        self.max_rounds = max_rounds

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        start = GreedyAssigner().assign(problem)
        if not start.feasible:
            return infeasible(self.name, start.explored, note=start.note)
        team, score, explored = self._improve(
            problem, list(start.team), start.affinity_score, start.explored
        )
        return self._result(problem, team, explored)

    def improve_from(
        self, problem: AssignmentProblem, team: list[str]
    ) -> AssignmentResult:
        """Public hook used by GRASP: improve an existing feasible team."""
        if not self._feasible(problem, team):
            return infeasible(self.name, note="seed team infeasible")
        improved, _, explored = self._improve(
            problem, list(team), problem.score(team), 0
        )
        return self._result(problem, improved, explored)

    def _improve(
        self, problem: AssignmentProblem, team: list[str], score: float, explored: int
    ) -> tuple[tuple[str, ...], float, int]:
        candidates = [w.id for w in problem.screened_workers()]
        for _ in range(self.max_rounds):
            best_move: list[str] | None = None
            best_score = score
            outsiders = [wid for wid in candidates if wid not in team]
            # Swap moves.
            for member in team:
                reduced = [wid for wid in team if wid != member]
                for outsider in outsiders:
                    explored += 1
                    candidate_team = reduced + [outsider]
                    candidate_score = problem.score(candidate_team)
                    if candidate_score > best_score + 1e-12 and self._feasible(
                        problem, candidate_team
                    ):
                        best_move = candidate_team
                        best_score = candidate_score
            # Add moves.
            if len(team) < problem.constraints.critical_mass:
                for outsider in outsiders:
                    explored += 1
                    candidate_team = team + [outsider]
                    candidate_score = problem.score(candidate_team)
                    if candidate_score > best_score + 1e-12 and self._feasible(
                        problem, candidate_team
                    ):
                        best_move = candidate_team
                        best_score = candidate_score
            # Drop moves (affinity can only shrink, but dropping may enable a
            # later better swap; accept only strict improvements, which can
            # happen when a member contributes negative marginal utility via
            # constraints — affinity is non-negative, so drops rarely fire).
            if len(team) > problem.constraints.min_size:
                for member in team:
                    explored += 1
                    candidate_team = [wid for wid in team if wid != member]
                    candidate_score = problem.score(candidate_team)
                    if candidate_score > best_score + 1e-12 and self._feasible(
                        problem, candidate_team
                    ):
                        best_move = candidate_team
                        best_score = candidate_score
            if best_move is None:
                break
            team = best_move
            score = best_score
        return tuple(sorted(team)), score, explored
