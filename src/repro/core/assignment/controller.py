"""The Task Assignment Controller (Figure 2, steps 1–5; §2.2.1).

Workflow reproduced from the paper:

1. the project admin page supplies the desired human factors,
2. those factors reach this controller,
3. user pages record worker interest (*InterestedIn*) via the ledger,
4. the worker manager supplies human factors + the affinity matrix,
5. the controller picks a team of eligible∧interested workers satisfying
   the desired factors, proposes it, and asks each member to join.

"The assignment controller waits for a sufficient number of workers to
show interest … Unless all suggested workers start to perform the
collaborative task by the specified deadline, task assignment is
re-executed to find a new team.  In addition, if none of the possible
teams satisfying human factors accepts the task, Crowd4U suggests to the
requester to update her input."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.affinity import AffinityMatrix
from repro.core.assignment.base import (
    AssignerRegistry,
    AssignmentProblem,
    AssignmentResult,
    default_registry,
)
from repro.core.constraints import TeamConstraints
from repro.core.events import EventBus
from repro.core.relationships import RelationshipLedger
from repro.core.tasks import Task, TaskPool, TaskStatus
from repro.core.teams import Team, TeamRegistry, TeamStatus
from repro.core.workers import WorkerManager


@dataclass(frozen=True)
class RequesterSuggestion:
    """Feedback to the requester when no feasible team exists."""

    task_id: str
    reason: str
    relaxations: tuple[str, ...] = ()
    #: The concrete constraint objects behind each relaxation description,
    #: so a requester (or the simulation driver) can apply one directly.
    relaxed_constraints: tuple[TeamConstraints, ...] = ()

    def best_option(self) -> str | None:
        return self.relaxations[0] if self.relaxations else None

    def best_constraints(self) -> TeamConstraints | None:
        return self.relaxed_constraints[0] if self.relaxed_constraints else None


@dataclass(frozen=True)
class AssignmentOutcome:
    """What one assignment attempt produced."""

    task_id: str
    team: Team | None = None
    waiting: bool = False
    suggestion: RequesterSuggestion | None = None
    result: AssignmentResult | None = None

    @property
    def proposed(self) -> bool:
        return self.team is not None


@dataclass
class TaskAssignmentController:
    workers: WorkerManager
    ledger: RelationshipLedger
    affinity: AffinityMatrix
    pool: TaskPool
    teams: TeamRegistry
    events: EventBus
    registry: AssignerRegistry = field(default_factory=default_registry)
    #: Pending root tasks whose assignment inputs (interested set, team
    #: constraints, candidate factors, affinity scores, forbidden-team
    #: history) changed since the last :meth:`try_assign`.  An attempt on a
    #: task outside this set is guaranteed to reproduce its previous
    #: outcome, so the platform's incremental round skips it; re-arming
    #: happens on interest declarations, constraint updates, factor edits,
    #: affinity reinforcement after a recorded result, and team
    #: dissolutions.
    _reattempt: set[str] = field(default_factory=set, repr=False)

    # -- incremental-round gating ------------------------------------------------
    def mark_dirty(self, task_id: str) -> None:
        """Flag a task as worth (re-)attempting on the next platform round."""
        self._reattempt.add(task_id)

    def clear_dirty(self, task_id: str) -> None:
        self._reattempt.discard(task_id)

    def is_dirty(self, task_id: str) -> bool:
        return task_id in self._reattempt

    # -- step 5: team formation --------------------------------------------------
    def try_assign(
        self,
        task: Task,
        constraints: TeamConstraints,
        algorithm: str,
        now: float,
    ) -> AssignmentOutcome:
        """Attempt team formation for a pending root task.

        Only workers both *Eligible* and *InterestedIn* are candidates; if
        fewer than ``constraints.min_size`` are interested the controller
        keeps waiting (the paper's sufficient-interest gate).
        """
        interested = self.ledger.interested_workers(task.id)
        if len(interested) < constraints.min_size:
            return AssignmentOutcome(task_id=task.id, waiting=True)
        candidates = tuple(self.workers.get(wid) for wid in interested)
        problem = AssignmentProblem(
            workers=candidates,
            affinity=self.affinity,
            constraints=constraints,
            forbidden_teams=frozenset(
                self.teams.previously_dissolved_members(task.id)
            ),
        )
        assigner = self.registry.create(algorithm)
        result = assigner.assign(problem)
        if not result.feasible:
            suggestion = self.suggest_relaxation(task, problem, algorithm)
            self.events.publish(
                "assignment.infeasible",
                now,
                task_id=task.id,
                algorithm=algorithm,
                suggestion=suggestion.reason,
            )
            return AssignmentOutcome(
                task_id=task.id, suggestion=suggestion, result=result
            )
        team = self.teams.propose(
            task_id=task.id,
            members=result.team,
            affinity_score=result.affinity_score,
            algorithm=algorithm,
            proposed_at=now,
            confirm_by=now + constraints.confirmation_window,
        )
        self.pool.assign_team(task.id, team.id)
        self.events.publish(
            "team.proposed",
            now,
            task_id=task.id,
            team_id=team.id,
            members=list(team.members),
            affinity=result.affinity_score,
            algorithm=algorithm,
        )
        return AssignmentOutcome(task_id=task.id, team=team, result=result)

    # -- member confirmations ------------------------------------------------
    def confirm_member(self, team_id: str, worker_id: str, now: float) -> Team:
        """A proposed member undertakes the task (ledger invariant applies)."""
        team = self.teams.get(team_id)
        self.ledger.undertake(worker_id, team.task_id, now)
        team = self.teams.confirm_member(team_id, worker_id)
        self.events.publish(
            "team.member_confirmed",
            now,
            team_id=team_id,
            worker_id=worker_id,
            all_confirmed=team.all_confirmed,
        )
        if team.all_confirmed:
            self.pool.activate(team.task_id)
            self.events.publish(
                "task.active", now, task_id=team.task_id, team_id=team_id
            )
        return team

    def decline_member(self, team_id: str, worker_id: str, now: float) -> Team:
        """A proposed member refuses; the team dissolves immediately and the
        task returns to the pool for re-assignment."""
        team = self.teams.get(team_id)
        self.ledger.decline(worker_id, team.task_id, now)
        return self._dissolve(team, now, reason=f"{worker_id} declined")

    def check_confirmation_deadline(self, team_id: str, now: float) -> Team | None:
        """Dissolve the team if its confirmation window elapsed (§2.2.1:
        're-executed to find a new team')."""
        team = self.teams.get(team_id)
        if team.status is not TeamStatus.PROPOSED:
            return None
        if team.confirm_by is not None and now > team.confirm_by:
            return self._dissolve(team, now, reason="confirmation deadline")
        return None

    def _dissolve(self, team: Team, now: float, reason: str) -> Team:
        team = self.teams.set_status(team.id, TeamStatus.DISSOLVED)
        task = self.pool.get(team.task_id)
        if task.status is TaskStatus.PROPOSED:
            self.pool.clear_team(team.task_id)
        # The forbidden-team history and member states changed: the task is
        # worth re-attempting on the next round ("task assignment is
        # re-executed to find a new team").
        self.mark_dirty(team.task_id)
        # Members who had already undertaken the task remain willing
        # candidates: revert them to Interested for the re-execution.
        from repro.core.relationships import RelationshipStatus

        for member in team.confirmed:
            if (
                self.ledger.status(member, team.task_id)
                is RelationshipStatus.UNDERTAKES
            ):
                self.ledger.declare_interest(member, team.task_id, now)
        self.events.publish(
            "team.dissolved", now, team_id=team.id, task_id=team.task_id,
            reason=reason,
        )
        return team

    # -- requester feedback -------------------------------------------------------
    def suggest_relaxation(
        self, task: Task, problem: AssignmentProblem, algorithm: str
    ) -> RequesterSuggestion:
        """Find single-constraint relaxations that admit a feasible team."""
        assigner = self.registry.create(algorithm)
        working: list[str] = []
        working_constraints: list[TeamConstraints] = []
        original = problem.constraints
        for dimension in original.RELAXATION_DIMENSIONS:
            # Walk one dimension at a time, up to a handful of steps, until a
            # feasible team appears (the requester sees the cumulative change).
            candidate = original
            for _ in range(6):
                relaxed = candidate.relax_dimension(dimension)
                if relaxed is None:
                    break
                candidate = relaxed
                relaxed_problem = AssignmentProblem(
                    workers=problem.workers,
                    affinity=problem.affinity,
                    constraints=candidate,
                    forbidden_teams=problem.forbidden_teams,
                )
                try:
                    feasible = assigner.assign(relaxed_problem).feasible
                except Exception:  # noqa: BLE001 - relaxation may overflow exact
                    break
                if feasible:
                    working.append(original.describe_difference(candidate))
                    working_constraints.append(candidate)
                    break
        reason = (
            "no team of eligible+interested workers satisfies the desired "
            "human factors"
        )
        return RequesterSuggestion(
            task_id=task.id,
            reason=reason,
            relaxations=tuple(working),
            relaxed_constraints=tuple(working_constraints),
        )
