"""Collaboration-unaware baselines.

These exist to measure the paper's central claim — that collaboration-aware
(affinity-driven) assignment produces better teams than what existing
micro-task platforms do (bench E8):

* :class:`RandomAssigner` — random feasible team (lower bound),
* :class:`SkillOnlyAssigner` — pick the top-quality individuals, ignoring
  affinity entirely (what a skill-filtered micro-task queue yields),
* :class:`IndividualAssigner` — a single best worker; the PyBossa/Hive
  fixed-workflow model the paper contrasts with ("micro-tasks … performed
  by individual workers", §1).
"""

from __future__ import annotations

from repro.core.assignment.base import (
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    infeasible,
)
from repro.util.rng import make_rng


class RandomAssigner(TeamAssigner):
    """Sample random screened teams; keep the first feasible one."""

    name = "random"

    def __init__(self, seed: int = 0, attempts: int = 200) -> None:
        self.seed = seed
        self.attempts = attempts

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        if not candidates:
            return infeasible(self.name, note="no screened candidates")
        rng = make_rng(self.seed, "random-assigner", len(candidates))
        constraints = problem.constraints
        explored = 0
        for _ in range(self.attempts):
            size = rng.randint(
                constraints.min_size,
                min(constraints.critical_mass, len(candidates)),
            )
            if size > len(candidates):
                continue
            team = [w.id for w in rng.sample(candidates, size)]
            explored += 1
            if self._feasible(problem, team):
                return self._result(problem, team, explored)
        return infeasible(self.name, explored, note="no feasible random team")


class SkillOnlyAssigner(TeamAssigner):
    """Top-k workers by individual quality; affinity-blind."""

    name = "skill_only"

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        if not candidates:
            return infeasible(self.name, note="no screened candidates")
        constraints = problem.constraints
        ranked = sorted(
            candidates,
            key=lambda w: (-constraints.worker_quality(w), w.factors.cost, w.id),
        )
        explored = 0
        for size in range(constraints.min_size, constraints.critical_mass + 1):
            if size > len(ranked):
                break
            team = [w.id for w in ranked[:size]]
            explored += 1
            if self._feasible(problem, team):
                return self._result(problem, team, explored)
        # Fall back: search any feasible prefix-based variation.
        for size in range(constraints.min_size, constraints.critical_mass + 1):
            for offset in range(1, max(1, len(ranked) - size + 1)):
                team = [w.id for w in ranked[offset:offset + size]]
                if len(team) < size:
                    break
                explored += 1
                if self._feasible(problem, team):
                    return self._result(problem, team, explored)
        return infeasible(self.name, explored, note="no feasible top-k team")


class IndividualAssigner(TeamAssigner):
    """The micro-task model: one best worker, no team, no collaboration."""

    name = "individual"

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        constraints = problem.constraints
        explored = 0
        ranked = sorted(
            candidates,
            key=lambda w: (-constraints.worker_quality(w), w.factors.cost, w.id),
        )
        for worker in ranked:
            explored += 1
            team = [worker.id]
            # The individual baseline ignores min_size by design (it models
            # platforms without teams) but must respect everything else.
            violations = [
                v
                for v in constraints.violations([worker])
                if "below minimum" not in v
            ]
            if not violations and problem.is_allowed(team):
                return self._result(
                    problem, team, explored, note="individual micro-task baseline"
                )
        return infeasible(self.name, explored, note="no individually feasible worker")
