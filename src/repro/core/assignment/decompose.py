"""Task decomposition and sub-group assignment.

"Crowd4U can use any task decomposition algorithm to break a complex task
into micro-tasks" (§1/§2.1) — decomposers are pluggable objects producing
:class:`SubTaskSpec` lists.  Three concrete decomposers cover the demo
scenarios: text segmentation (subtitles), topic sections (journalism) and
a region × period grid (surveillance).

For parallel tasks, §2.2 prescribes: "we decompose it into a set of
independent sub-tasks … then identify groups for each sub-task who edit
simultaneously on their allocated section, with collaboration across the
sub-groups … to effectively merge the sections".
:func:`assign_subgroups` implements that: disjoint greedy teams per
sub-task plus a designated *liaison* per group (the member with the
highest affinity towards the other groups) for the merge step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.assignment.base import AssignmentProblem, AssignmentResult
from repro.core.assignment.greedy import GreedyAssigner
from repro.errors import AssignmentError


@dataclass(frozen=True)
class SubTaskSpec:
    """One micro-task produced by decomposition."""

    key: str
    instruction: str
    payload: dict[str, Any] = field(default_factory=dict)


class TaskDecomposer(abc.ABC):
    """Strategy interface: complex task → ordered micro-task specs."""

    @abc.abstractmethod
    def decompose(self, payload: dict[str, Any]) -> list[SubTaskSpec]:
        """Split the complex-task payload into sub-task specs."""


class SegmentDecomposer(TaskDecomposer):
    """Split running text into fixed-size segments (subtitle generation).

    ``payload["text"]`` is split into chunks of at most ``segment_words``
    words, preserving order; each chunk becomes one sub-task.
    """

    def __init__(self, segment_words: int = 12) -> None:
        if segment_words < 1:
            raise AssignmentError("segment_words must be positive")
        self.segment_words = segment_words

    def decompose(self, payload: dict[str, Any]) -> list[SubTaskSpec]:
        words = str(payload.get("text", "")).split()
        if not words:
            return []
        chunks = [
            " ".join(words[i:i + self.segment_words])
            for i in range(0, len(words), self.segment_words)
        ]
        return [
            SubTaskSpec(
                key=f"seg{i:03d}",
                instruction=f"Process segment {i + 1}/{len(chunks)}",
                payload={"text": chunk, "position": i},
            )
            for i, chunk in enumerate(chunks)
        ]


class TopicDecomposer(TaskDecomposer):
    """One sub-task per topic section (citizen journalism)."""

    def decompose(self, payload: dict[str, Any]) -> list[SubTaskSpec]:
        topics = list(payload.get("topics", []))
        return [
            SubTaskSpec(
                key=f"topic-{i:02d}",
                instruction=f"Write the section on {topic!r}",
                payload={"topic": topic, "position": i},
            )
            for i, topic in enumerate(topics)
        ]


class GridDecomposer(TaskDecomposer):
    """Region × period grid (surveillance fact collection)."""

    def decompose(self, payload: dict[str, Any]) -> list[SubTaskSpec]:
        regions = list(payload.get("regions", []))
        periods = list(payload.get("periods", []))
        specs: list[SubTaskSpec] = []
        for r_index, region in enumerate(regions):
            for p_index, period in enumerate(periods):
                specs.append(
                    SubTaskSpec(
                        key=f"cell-{r_index:02d}-{p_index:02d}",
                        instruction=(
                            f"Collect facts for region {region!r} "
                            f"during {period!r}"
                        ),
                        payload={"region": region, "period": period},
                    )
                )
        return specs


@dataclass(frozen=True)
class SubGroupAssignment:
    """Result of partitioning workers over parallel sub-tasks."""

    groups: tuple[tuple[str, ...], ...]     # groups[i] works sub-task i
    liaisons: tuple[str, ...]               # one member per group (merge step)
    total_affinity: float
    leftover: tuple[str, ...]               # unassigned workers


def assign_subgroups(
    problem: AssignmentProblem,
    n_subtasks: int,
    group_size: int | None = None,
) -> SubGroupAssignment:
    """Partition candidates into ``n_subtasks`` disjoint affinity-dense teams.

    Greedy sequential strategy: form the densest team for sub-task 0 with a
    :class:`GreedyAssigner`, remove its members from the pool, repeat.  The
    liaison of each group is the member with the highest summed affinity to
    all *other* groups' members; liaisons coordinate the merge.
    """
    if n_subtasks < 1:
        raise AssignmentError("n_subtasks must be at least 1")
    constraints = problem.constraints
    size = group_size or max(
        constraints.min_size,
        min(constraints.critical_mass, len(problem.workers) // n_subtasks or 1),
    )
    pool = list(problem.workers)
    groups: list[tuple[str, ...]] = []
    total = 0.0
    greedy = GreedyAssigner()
    for _ in range(n_subtasks):
        if not pool:
            groups.append(())
            continue
        sub_problem = AssignmentProblem(
            workers=tuple(pool),
            affinity=problem.affinity,
            constraints=_sized(constraints, min(size, len(pool))),
            forbidden_teams=problem.forbidden_teams,
        )
        result: AssignmentResult = greedy.assign(sub_problem)
        if not result.feasible:
            groups.append(())
            continue
        groups.append(result.team)
        total += result.affinity_score
        taken = set(result.team)
        pool = [w for w in pool if w.id not in taken]
    liaisons = _pick_liaisons(problem, groups)
    return SubGroupAssignment(
        groups=tuple(groups),
        liaisons=liaisons,
        total_affinity=total,
        leftover=tuple(sorted(w.id for w in pool)),
    )


def _sized(constraints, size: int):
    from dataclasses import replace

    size = max(1, size)
    return replace(
        constraints,
        min_size=min(constraints.min_size, size),
        critical_mass=size,
    )


def _pick_liaisons(
    problem: AssignmentProblem, groups: Sequence[tuple[str, ...]]
) -> tuple[str, ...]:
    liaisons: list[str] = []
    for index, group in enumerate(groups):
        if not group:
            liaisons.append("")
            continue
        others = [
            member
            for other_index, other in enumerate(groups)
            if other_index != index
            for member in other
        ]
        if not others:
            liaisons.append(sorted(group)[0])
            continue
        liaisons.append(
            max(
                sorted(group),
                key=lambda member: sum(
                    problem.affinity.get(member, other) for other in others
                ),
            )
        )
    return tuple(liaisons)
