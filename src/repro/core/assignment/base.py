"""Shared interface of every team-formation algorithm."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.affinity import AffinityMatrix
from repro.core.constraints import TeamConstraints
from repro.core.workers import Worker
from repro.errors import AssignmentError


@dataclass(frozen=True)
class AssignmentProblem:
    """One team-formation instance.

    ``workers`` are the candidates — on the platform these are the workers
    who are *Eligible for and InterestedIn* the task (§2.2.1 step 5).
    ``forbidden_teams`` excludes exact member sets that already failed
    (dissolved teams must not be re-proposed).
    """

    workers: tuple[Worker, ...]
    affinity: AffinityMatrix
    constraints: TeamConstraints
    forbidden_teams: frozenset[frozenset[str]] = frozenset()

    def __post_init__(self) -> None:
        ids = [w.id for w in self.workers]
        if len(set(ids)) != len(ids):
            raise AssignmentError("duplicate workers in assignment problem")

    def worker_by_id(self, worker_id: str) -> Worker:
        for worker in self.workers:
            if worker.id == worker_id:
                return worker
        raise AssignmentError(f"worker {worker_id!r} not in problem")

    def screened_workers(self) -> tuple[Worker, ...]:
        """Candidates passing the per-member screen (language / region)."""
        return tuple(
            w for w in self.workers if self.constraints.member_eligible(w)
        )

    def is_allowed(self, team: Sequence[str]) -> bool:
        return frozenset(team) not in self.forbidden_teams

    def score(self, team: Sequence[str]) -> float:
        """The objective: intra-team affinity (sum over internal pairs)."""
        return self.affinity.intra_affinity(team)


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one assigner run."""

    team: tuple[str, ...]
    affinity_score: float
    feasible: bool
    algorithm: str
    explored: int = 0  # nodes / candidate teams examined (observability)
    note: str = ""

    @property
    def size(self) -> int:
        return len(self.team)


def infeasible(algorithm: str, explored: int = 0, note: str = "") -> AssignmentResult:
    return AssignmentResult(
        team=(), affinity_score=0.0, feasible=False, algorithm=algorithm,
        explored=explored, note=note,
    )


class TeamAssigner(abc.ABC):
    """Base class of all team-formation algorithms."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        """Return the best feasible team found (or an infeasible result)."""

    def _feasible(self, problem: AssignmentProblem, team: Sequence[str]) -> bool:
        if not problem.is_allowed(team):
            return False
        workers = [problem.worker_by_id(wid) for wid in team]
        return problem.constraints.is_satisfied_by(workers)

    def _result(
        self, problem: AssignmentProblem, team: Sequence[str], explored: int,
        note: str = "",
    ) -> AssignmentResult:
        ordered = tuple(sorted(team))
        return AssignmentResult(
            team=ordered,
            affinity_score=problem.score(ordered),
            feasible=True,
            algorithm=self.name,
            explored=explored,
            note=note,
        )


@dataclass
class AssignerRegistry:
    """Name → assigner factory; the extensibility hook of §3."""

    _factories: dict[str, Callable[[], TeamAssigner]] = field(default_factory=dict)

    def register(self, name: str, factory: Callable[[], TeamAssigner]) -> None:
        if name in self._factories:
            raise AssignmentError(f"assigner {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str) -> TeamAssigner:
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise AssignmentError(
                f"unknown assignment algorithm {name!r} (known: {known})"
            ) from None
        return factory()

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_registry(seed: int = 0) -> AssignerRegistry:
    """Registry pre-loaded with every built-in algorithm."""
    from repro.core.assignment.baselines import (
        IndividualAssigner,
        RandomAssigner,
        SkillOnlyAssigner,
    )
    from repro.core.assignment.exact import ExactAssigner
    from repro.core.assignment.grasp import GraspAssigner
    from repro.core.assignment.greedy import GreedyAssigner
    from repro.core.assignment.local_search import LocalSearchAssigner

    registry = AssignerRegistry()
    registry.register("exact", ExactAssigner)
    registry.register("greedy", GreedyAssigner)
    registry.register("local_search", LocalSearchAssigner)
    registry.register("grasp", lambda: GraspAssigner(seed=seed))
    registry.register("random", lambda: RandomAssigner(seed=seed))
    registry.register("skill_only", SkillOnlyAssigner)
    registry.register("individual", IndividualAssigner)
    return registry


def candidate_sizes(constraints: TeamConstraints) -> Iterable[int]:
    """Team sizes permitted by the constraints, smallest first."""
    return range(constraints.min_size, constraints.critical_mass + 1)
