"""Multi-seed greedy clique growth — the workhorse approximation.

Following the practical algorithms of [9]: seed a team with each screened
worker (and implicitly the best pair through growth), repeatedly add the
candidate with the largest marginal affinity gain while the budget and
critical mass allow, and record every feasible intermediate team.  The
best feasible team over all seeds wins.  Complexity O(n² · ucm) per seed
set, comfortably real-time at platform scale (bench E6).
"""

from __future__ import annotations

from repro.core.assignment.base import (
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    infeasible,
)


class GreedyAssigner(TeamAssigner):
    """Grow a team greedily from every seed worker."""

    name = "greedy"

    def __init__(self, max_seeds: int | None = None) -> None:
        #: Cap on the number of seeds (None = every screened worker).
        self.max_seeds = max_seeds

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        if not candidates:
            return infeasible(self.name, note="no screened candidates")
        constraints = problem.constraints
        affinity = problem.affinity
        by_id = {w.id: w for w in candidates}
        seeds = candidates
        if self.max_seeds is not None and len(seeds) > self.max_seeds:
            # Keep the seeds with the highest affinity degree.
            degree = {
                w.id: sum(affinity.get(w.id, o.id) for o in candidates if o is not w)
                for w in candidates
            }
            seeds = sorted(candidates, key=lambda w: -degree[w.id])[: self.max_seeds]

        best: tuple[float, tuple[str, ...]] | None = None
        explored = 0
        for seed in seeds:
            team = [seed.id]
            cost = seed.factors.cost
            if cost > constraints.cost_budget + 1e-12:
                continue
            while len(team) < constraints.critical_mass:
                explored += 1
                best_gain = float("-inf")
                best_candidate = None
                for candidate in candidates:
                    if candidate.id in team:
                        continue
                    if cost + candidate.factors.cost > constraints.cost_budget + 1e-12:
                        continue
                    gain = affinity.marginal_gain(team, candidate.id)
                    if gain > best_gain:
                        best_gain = gain
                        best_candidate = candidate
                if best_candidate is None:
                    break
                team.append(best_candidate.id)
                cost += best_candidate.factors.cost
                if len(team) >= constraints.min_size:
                    members = [by_id[wid] for wid in team]
                    if problem.is_allowed(team) and constraints.is_satisfied_by(members):
                        score = problem.score(team)
                        if best is None or score > best[0]:
                            best = (score, tuple(sorted(team)))
            # A singleton seed may already be feasible (min_size == 1).
            if len(team) == 1 and constraints.min_size == 1:
                members = [by_id[team[0]]]
                if problem.is_allowed(team) and constraints.is_satisfied_by(members):
                    score = problem.score(team)
                    if best is None or score > best[0]:
                        best = (score, tuple(team))
        if best is None:
            return infeasible(self.name, explored, note="no feasible team grown")
        return self._result(problem, best[1], explored)
