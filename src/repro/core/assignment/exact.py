"""Exact team formation by branch-and-bound subset search.

[9] proves affinity-maximising team formation NP-complete, so the exact
algorithm is exponential; it exists as the optimality yardstick for the
approximation-quality experiment (E7) and for small live instances.  The
search enumerates subsets of the screened candidates in a fixed order with
two prunings:

* **bound pruning** — current affinity plus an optimistic bound on the
  edges still addable cannot beat the incumbent;
* **budget pruning** — cost is monotone in members, so a partial team over
  budget is dead (quality and skills are monotone *upwards* and therefore
  checked at feasibility time, not pruned on).
"""

from __future__ import annotations

from repro.core.assignment.base import (
    AssignmentProblem,
    AssignmentResult,
    TeamAssigner,
    infeasible,
)
from repro.errors import AssignmentError


class ExactAssigner(TeamAssigner):
    """Optimal branch-and-bound clique search."""

    name = "exact"

    def __init__(self, max_candidates: int = 26) -> None:
        self.max_candidates = max_candidates

    def assign(self, problem: AssignmentProblem) -> AssignmentResult:
        candidates = sorted(problem.screened_workers(), key=lambda w: w.id)
        if len(candidates) > self.max_candidates:
            raise AssignmentError(
                f"exact assigner refuses {len(candidates)} candidates "
                f"(> {self.max_candidates}); use an approximate algorithm"
            )
        constraints = problem.constraints
        affinity = problem.affinity
        ids = [w.id for w in candidates]
        costs = [w.factors.cost for w in candidates]
        n = len(ids)
        # Sorted edge weights for the optimistic bound.
        all_edges = sorted(
            (
                affinity.get(ids[i], ids[j])
                for i in range(n)
                for j in range(i + 1, n)
            ),
            reverse=True,
        )

        best_team: tuple[str, ...] | None = None
        best_score = float("-inf")
        explored = 0

        def optimistic_bound(current_score: float, size: int, start: int) -> float:
            """Upper bound: add the globally heaviest edges for every pair
            that could still be formed."""
            remaining_slots = constraints.critical_mass - size
            if remaining_slots <= 0:
                return current_score
            available = n - start
            addable = min(remaining_slots, available)
            # New pairs: among added members + between added and current.
            new_pairs = addable * (addable - 1) // 2 + addable * size
            return current_score + sum(all_edges[:new_pairs])

        def visit(start: int, team: list[int], score: float, cost: float) -> None:
            nonlocal best_team, best_score, explored
            explored += 1
            size = len(team)
            if size >= constraints.min_size:
                member_ids = [ids[i] for i in team]
                if problem.is_allowed(member_ids):
                    workers = [candidates[i] for i in team]
                    if constraints.is_satisfied_by(workers) and score > best_score:
                        best_score = score
                        best_team = tuple(sorted(member_ids))
            if size >= constraints.critical_mass:
                return
            if optimistic_bound(score, size, start) <= best_score:
                return
            for index in range(start, n):
                new_cost = cost + costs[index]
                if new_cost > constraints.cost_budget + 1e-12:
                    continue
                gain = sum(affinity.get(ids[index], ids[m]) for m in team)
                team.append(index)
                visit(index + 1, team, score + gain, new_cost)
                team.pop()

        visit(0, [], 0.0, 0.0)
        if best_team is None:
            return infeasible(self.name, explored, note="no feasible team")
        return self._result(problem, best_team, explored)
