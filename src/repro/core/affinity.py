"""The worker affinity matrix (paper §2.2).

The affinity matrix "maintains the information on how a pair of workers is
expected to work well".  We implement it as a symmetric sparse matrix in
[0, 1], plus:

* :func:`affinity_from_factors` — build initial affinities from human
  factors (shared languages, geographic proximity — "if workers live in the
  same geographic area, their affinity value is larger" — and skill
  complementarity),
* :meth:`AffinityMatrix.reinforce` — learn from observed collaboration
  outcomes via an exponential moving average,
* team-level *intra-affinity* aggregations used by the assignment
  algorithms of [9] (sum over internal pairs, or density).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.workers import Worker
from repro.errors import PlatformError
from repro.util.text import clamp


def _pair(a: str, b: str) -> tuple[str, str]:
    if a == b:
        raise PlatformError(f"affinity is defined between distinct workers, got {a!r} twice")
    return (a, b) if a < b else (b, a)


class AffinityMatrix:
    """Symmetric sparse worker-to-worker affinity in [0, 1]."""

    def __init__(self, default: float = 0.0) -> None:
        self.default = clamp(default, 0.0, 1.0)
        self._values: dict[tuple[str, str], float] = {}

    def set(self, a: str, b: str, value: float) -> None:
        self._values[_pair(a, b)] = clamp(value, 0.0, 1.0)

    def get(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._values.get(_pair(a, b), self.default)

    def pairs(self) -> Iterator[tuple[str, str, float]]:
        for (a, b), value in sorted(self._values.items()):
            yield a, b, value

    def __len__(self) -> int:
        return len(self._values)

    # -- team aggregations -------------------------------------------------------
    def intra_affinity(self, team: Sequence[str]) -> float:
        """Sum of pairwise affinities inside ``team`` (the clique weight
        maximised by the assignment algorithms)."""
        members = list(team)
        total = 0.0
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                total += self.get(a, b)
        return total

    def density(self, team: Sequence[str]) -> float:
        """Mean pairwise affinity (0.0 for singleton teams)."""
        size = len(team)
        if size < 2:
            return 0.0
        return self.intra_affinity(team) / (size * (size - 1) / 2)

    def min_pair(self, team: Sequence[str]) -> float:
        """Weakest internal link (1.0 for singleton teams)."""
        members = list(team)
        if len(members) < 2:
            return 1.0
        return min(
            self.get(a, b)
            for i, a in enumerate(members)
            for b in members[i + 1:]
        )

    def marginal_gain(self, team: Sequence[str], candidate: str) -> float:
        """Affinity added by joining ``candidate`` to ``team``."""
        return sum(self.get(member, candidate) for member in team)

    # -- learning -------------------------------------------------------------
    def reinforce(
        self, team: Sequence[str], outcome_quality: float, learning_rate: float = 0.2
    ) -> None:
        """Blend observed collaboration quality into every internal pair.

        ``outcome_quality`` in [0, 1]; EMA with the given learning rate, so
        repeated successful collaborations raise affinity (the "comfort
        level" of workers who worked well together).
        """
        outcome_quality = clamp(outcome_quality, 0.0, 1.0)
        members = list(team)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                current = self.get(a, b)
                updated = (1 - learning_rate) * current + learning_rate * outcome_quality
                self.set(a, b, updated)


@dataclass(frozen=True)
class AffinityWeights:
    """Mixing weights for the initial, factor-based affinity.

    The three components mirror the paper's examples: language overlap
    (translation), geographic proximity (surveillance — same region ⇒
    larger affinity) and skill complementarity (diverse teams cover more of
    a task's skill needs).  Weights need not sum to one; the result is
    normalised.
    """

    language: float = 1.0
    region: float = 1.0
    skill_complementarity: float = 1.0
    geo_scale_km: float = 500.0
    #: Bound on incremental matrix extension: a newly registered worker is
    #: compared against at most this many of the most recently registered
    #: workers (``None`` = all of them, the exact quadratic construction;
    #: ``0`` disables factor-based initial affinity entirely).  Million-
    #: worker populations need a bound — the full pairwise extension is
    #: O(n²) over registrations — and team scoring degrades gracefully:
    #: unseen pairs fall back to the matrix default and learned
    #: reinforcement still applies.
    max_neighbors: int | None = None

    def __post_init__(self) -> None:
        if min(self.language, self.region, self.skill_complementarity) < 0:
            raise PlatformError("affinity weights must be non-negative")
        if self.language + self.region + self.skill_complementarity <= 0:
            raise PlatformError("at least one affinity weight must be positive")
        if self.max_neighbors is not None and self.max_neighbors < 0:
            raise PlatformError("max_neighbors must be None or >= 0")


def language_overlap(a: Worker, b: Worker) -> float:
    """Proficiency-weighted Jaccard overlap of the two language sets."""
    langs = set(a.factors.languages) | set(b.factors.languages)
    if not langs:
        return 0.0
    shared = 0.0
    for lang in langs:
        pa = a.factors.languages.get(lang, 0.0)
        pb = b.factors.languages.get(lang, 0.0)
        shared += min(pa, pb)
    return shared / len(langs)


def region_proximity(a: Worker, b: Worker, geo_scale_km: float = 500.0) -> float:
    """1.0 for the same region; otherwise exponential decay with great-circle
    distance when coordinates are known, else 0.0."""
    if a.factors.region and a.factors.region == b.factors.region:
        return 1.0
    if a.factors.coordinates and b.factors.coordinates:
        distance = _haversine_km(a.factors.coordinates, b.factors.coordinates)
        return math.exp(-distance / geo_scale_km)
    return 0.0


def skill_complementarity(a: Worker, b: Worker) -> float:
    """How much the pair's skill profiles complete each other.

    For every skill either worker has, take the pair's best level; average
    it, then discount by profile similarity so identical profiles score
    lower than complementary ones.
    """
    skills = set(a.factors.skills) | set(b.factors.skills)
    if not skills:
        return 0.0
    best_sum = 0.0
    overlap_sum = 0.0
    for skill in skills:
        la = a.factors.skill_level(skill)
        lb = b.factors.skill_level(skill)
        best_sum += max(la, lb)
        overlap_sum += min(la, lb)
    coverage = best_sum / len(skills)
    redundancy = overlap_sum / len(skills)
    return clamp(coverage - 0.5 * redundancy, 0.0, 1.0)


def affinity_from_factors(
    workers: Iterable[Worker], weights: AffinityWeights | None = None
) -> AffinityMatrix:
    """Build the initial affinity matrix from worker human factors."""
    weights = weights or AffinityWeights()
    total = weights.language + weights.region + weights.skill_complementarity
    matrix = AffinityMatrix()
    roster = sorted(workers, key=lambda w: w.id)
    for i, a in enumerate(roster):
        for b in roster[i + 1:]:
            score = (
                weights.language * language_overlap(a, b)
                + weights.region * region_proximity(a, b, weights.geo_scale_km)
                + weights.skill_complementarity * skill_complementarity(a, b)
            ) / total
            if score > 0.0:
                matrix.set(a.id, b.id, score)
    return matrix


def _haversine_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * 6371.0 * math.asin(math.sqrt(h))
