"""Worker human factors (paper §2.2, Figure 4).

Human factors combine *declared* attributes (native languages, location —
entered when creating a Crowd4U account) with *computed* ones (skill levels
learned from previously performed tasks, reliability).  They feed three
mechanisms:

* eligibility rules evaluated by the CyLog processor,
* the worker affinity matrix (e.g. same-region workers get higher affinity
  for surveillance tasks),
* team-formation constraints (skill minimums, quality, cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import PlatformError


def _check_unit(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise PlatformError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class HumanFactors:
    """Immutable snapshot of one worker's human factors.

    ``languages`` maps language code to proficiency in [0, 1]; native
    languages are automatically included at proficiency 1.0.  ``skills``
    maps skill name (e.g. ``"translation-fr"``, ``"reporting"``) to a level
    in [0, 1].  ``cost`` is the (possibly zero — Crowd4U is volunteer-based)
    cost of engaging the worker for one task.  ``extras`` carries
    application-specific factors, exposed to CyLog eligibility rules.
    """

    native_languages: frozenset[str] = frozenset()
    languages: Mapping[str, float] = field(default_factory=dict)
    region: str = ""
    coordinates: tuple[float, float] | None = None
    skills: Mapping[str, float] = field(default_factory=dict)
    reliability: float = 1.0
    cost: float = 0.0
    sns_id: str | None = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        merged = {lang: _check_unit(f"languages[{lang}]", prof)
                  for lang, prof in dict(self.languages).items()}
        for native in self.native_languages:
            merged[native] = 1.0
        object.__setattr__(self, "languages", dict(merged))
        object.__setattr__(
            self,
            "skills",
            {name: _check_unit(f"skills[{name}]", level)
             for name, level in dict(self.skills).items()},
        )
        _check_unit("reliability", self.reliability)
        if self.cost < 0:
            raise PlatformError(f"cost must be non-negative, got {self.cost!r}")
        object.__setattr__(self, "extras", dict(self.extras))

    # -- queries ----------------------------------------------------------
    def speaks(self, language: str, min_proficiency: float = 0.0) -> bool:
        """Whether the worker speaks ``language`` at the given level."""
        return self.languages.get(language, 0.0) >= max(min_proficiency, 1e-9)

    def is_native(self, language: str) -> bool:
        return language in self.native_languages

    def skill_level(self, skill: str) -> float:
        """Declared/learned level for ``skill`` (0.0 when unknown)."""
        return self.skills.get(skill, 0.0)

    def mean_skill(self, skills: tuple[str, ...]) -> float:
        """Mean level over ``skills`` (0.0 for an empty tuple)."""
        if not skills:
            return 0.0
        return sum(self.skill_level(s) for s in skills) / len(skills)

    # -- evolution ----------------------------------------------------------
    def with_skill(self, skill: str, level: float) -> "HumanFactors":
        """Return a copy with one skill updated (used by skill estimation)."""
        skills = dict(self.skills)
        skills[skill] = _check_unit(f"skills[{skill}]", level)
        return replace(self, skills=skills)

    def with_reliability(self, reliability: float) -> "HumanFactors":
        return replace(self, reliability=_check_unit("reliability", reliability))

    def with_sns_id(self, sns_id: str) -> "HumanFactors":
        return replace(self, sns_id=sns_id)

    def as_fact_rows(self, worker_id: str) -> dict[str, list[tuple]]:
        """Render the factors as CyLog fact rows, keyed by predicate.

        These are the facts the platform injects so that project
        descriptions can express eligibility declaratively::

            eligible(W) :- worker_native(W, "en").
        """
        rows: dict[str, list[tuple]] = {
            "worker": [(worker_id,)],
            "worker_region": [(worker_id, self.region)],
            "worker_reliability": [(worker_id, self.reliability)],
        }
        rows["worker_language"] = [
            (worker_id, language, proficiency)
            for language, proficiency in sorted(self.languages.items())
        ]
        rows["worker_native"] = [
            (worker_id, language) for language in sorted(self.native_languages)
        ]
        rows["worker_skill"] = [
            (worker_id, skill, level) for skill, level in sorted(self.skills.items())
        ]
        rows["worker_extra"] = [
            (worker_id, key, str(value)) for key, value in sorted(self.extras.items())
        ]
        return rows
