"""The three explicit worker↔task relationships (paper §2.2).

    (1) *Eligible* — computed by the CyLog processor from the project
        description and worker human factors.
    (2) *InterestedIn* — declared by the worker on her user page.
    (3) *Undertakes* — the worker confirms she performs the task; legal
        **only when the worker is Eligible for that task** (the paper's
        stated invariant, enforced here).

We additionally track *Declined* (a proposed worker refused or timed out)
and *Completed* for bookkeeping.  The ledger is persisted in the storage
engine and indexed both ways (by worker and by task).
"""

from __future__ import annotations

import enum

from repro.errors import RelationshipError
from repro.storage import Column, ColumnType, Database, TableSchema


class RelationshipStatus(enum.Enum):
    ELIGIBLE = "eligible"
    INTERESTED = "interested"
    UNDERTAKES = "undertakes"
    DECLINED = "declined"
    COMPLETED = "completed"


#: Statuses that imply the worker is currently eligible for the task
#: (Eligible-rooted): the deeper worker-declared states all require — and
#: preserve — eligibility.  Shared by the ledger's queries and the
#: platform's cached worker-page query.
ELIGIBLE_ROOTED = (
    RelationshipStatus.ELIGIBLE,
    RelationshipStatus.INTERESTED,
    RelationshipStatus.UNDERTAKES,
)

#: Legal transitions; ``None`` is the initial (absent) state.
_LEGAL_TRANSITIONS: dict[RelationshipStatus | None, set[RelationshipStatus]] = {
    None: {RelationshipStatus.ELIGIBLE},
    RelationshipStatus.ELIGIBLE: {
        RelationshipStatus.INTERESTED,
        RelationshipStatus.UNDERTAKES,  # direct undertake is allowed: still Eligible
        RelationshipStatus.DECLINED,
    },
    RelationshipStatus.INTERESTED: {
        RelationshipStatus.UNDERTAKES,
        RelationshipStatus.DECLINED,
    },
    RelationshipStatus.UNDERTAKES: {
        RelationshipStatus.COMPLETED,
        # A confirmed member whose team dissolved (another member declined or
        # timed out) drops back to Interested and remains a candidate when
        # assignment re-executes (§2.2.1).
        RelationshipStatus.INTERESTED,
        RelationshipStatus.DECLINED,
    },
    RelationshipStatus.DECLINED: {RelationshipStatus.INTERESTED},  # change of mind
    RelationshipStatus.COMPLETED: set(),
}

_SCHEMA = TableSchema(
    "relationship",
    [
        Column("worker_id", ColumnType.TEXT),
        Column("task_id", ColumnType.TEXT),
        Column("status", ColumnType.TEXT),
        Column("updated_at", ColumnType.FLOAT),
    ],
    primary_key=("worker_id", "task_id"),
)


class RelationshipLedger:
    """Persistent store of every (worker, task) relationship."""

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.has_table(_SCHEMA.name):
            db.create_table(_SCHEMA)
            db.table(_SCHEMA.name).create_index(("task_id", "status"))
            db.table(_SCHEMA.name).create_index(("worker_id", "status"))
        self._cache: dict[tuple[str, str], RelationshipStatus] = {}
        for row in db.table(_SCHEMA.name).rows():
            self._cache[(row["worker_id"], row["task_id"])] = RelationshipStatus(
                row["status"]
            )

    # -- state machine ---------------------------------------------------------
    def status(self, worker_id: str, task_id: str) -> RelationshipStatus | None:
        return self._cache.get((worker_id, task_id))

    def _transition(
        self,
        worker_id: str,
        task_id: str,
        target: RelationshipStatus,
        now: float,
    ) -> None:
        current = self.status(worker_id, task_id)
        if target is current:
            return  # idempotent
        legal = _LEGAL_TRANSITIONS[current]
        if target not in legal:
            origin = current.value if current else "absent"
            raise RelationshipError(
                f"illegal transition {origin} -> {target.value} for "
                f"(worker {worker_id}, task {task_id})"
            )
        if current is None:
            self.db.insert(
                _SCHEMA.name,
                {
                    "worker_id": worker_id,
                    "task_id": task_id,
                    "status": target.value,
                    "updated_at": now,
                },
            )
        else:
            self.db.update(
                _SCHEMA.name,
                (worker_id, task_id),
                {"status": target.value, "updated_at": now},
            )
        self._cache[(worker_id, task_id)] = target

    # -- the three paper relationships ------------------------------------------
    def mark_eligible(self, worker_id: str, task_id: str, now: float = 0.0) -> bool:
        """Record that the CyLog processor judged the worker eligible.

        Returns True when a new row was inserted (the worker had no
        relationship with the task before); a worker already in any state
        is left untouched and False is returned — the signal the platform's
        round-delta recording uses to report genuinely new eligibility.
        """
        if self.status(worker_id, task_id) is None:
            self._transition(worker_id, task_id, RelationshipStatus.ELIGIBLE, now)
            return True
        return False

    def revoke_eligibility(self, worker_id: str, task_id: str) -> bool:
        """Forget a *pure* Eligible relationship whose inputs no longer hold.

        Eligibility is system-derived, so when the deriving facts change
        (worker factors edited, constraints tightened) the platform retracts
        it.  Worker-declared states — Interested and deeper — survive factor
        changes and are never revoked here.  Returns True when a row was
        removed.
        """
        if self._cache.get((worker_id, task_id)) is not RelationshipStatus.ELIGIBLE:
            return False
        self.db.delete(_SCHEMA.name, (worker_id, task_id))
        del self._cache[(worker_id, task_id)]
        return True

    def declare_interest(self, worker_id: str, task_id: str, now: float = 0.0) -> None:
        """Worker declares interest; requires prior eligibility."""
        current = self.status(worker_id, task_id)
        if current is None:
            raise RelationshipError(
                f"worker {worker_id} is not eligible for task {task_id}; "
                "cannot declare interest"
            )
        self._transition(worker_id, task_id, RelationshipStatus.INTERESTED, now)

    def undertake(self, worker_id: str, task_id: str, now: float = 0.0) -> None:
        """Worker confirms performing the task.

        Enforces the paper's invariant: the pair may enter *Undertakes*
        only from an Eligible-rooted state.
        """
        current = self.status(worker_id, task_id)
        if current is None or current is RelationshipStatus.DECLINED:
            raise RelationshipError(
                f"worker {worker_id} cannot undertake task {task_id}: "
                f"not eligible (status: {current.value if current else 'absent'})"
            )
        self._transition(worker_id, task_id, RelationshipStatus.UNDERTAKES, now)

    def decline(self, worker_id: str, task_id: str, now: float = 0.0) -> None:
        self._transition(worker_id, task_id, RelationshipStatus.DECLINED, now)

    def complete(self, worker_id: str, task_id: str, now: float = 0.0) -> None:
        self._transition(worker_id, task_id, RelationshipStatus.COMPLETED, now)

    # -- queries --------------------------------------------------------------
    def workers_with_status(
        self, task_id: str, status: RelationshipStatus
    ) -> list[str]:
        rows = self.db.table(_SCHEMA.name).lookup(
            ("task_id", "status"), (task_id, status.value)
        )
        return sorted(row["worker_id"] for row in rows)

    def eligible_workers(self, task_id: str) -> list[str]:
        """Workers currently in any Eligible-rooted state for the task."""
        eligible: list[str] = []
        for status in ELIGIBLE_ROOTED:
            eligible.extend(self.workers_with_status(task_id, status))
        return sorted(eligible)

    def interested_workers(self, task_id: str) -> list[str]:
        return self.workers_with_status(task_id, RelationshipStatus.INTERESTED)

    def undertaking_workers(self, task_id: str) -> list[str]:
        return self.workers_with_status(task_id, RelationshipStatus.UNDERTAKES)

    def tasks_with_status(
        self, worker_id: str, status: RelationshipStatus
    ) -> list[str]:
        rows = self.db.table(_SCHEMA.name).lookup(
            ("worker_id", "status"), (worker_id, status.value)
        )
        return sorted(row["task_id"] for row in rows)

    def counts_for_task(self, task_id: str) -> dict[str, int]:
        return {
            status.value: len(self.workers_with_status(task_id, status))
            for status in RelationshipStatus
        }

    def __len__(self) -> int:
        return len(self._cache)
