"""Hybrid collaboration (§2.3): interleaving sequential and simultaneous.

"Crowd4U allows to interleave the two result coordination schemes in a
complex data flow.  For example, surveillance and correction tasks are
executed as a sequential collaboration while the testimonials are provided
simultaneously."

The hybrid scheme splits the confirmed team into named *stages*, each
running its own sub-scheme over its sub-team concurrently.  Stage layout
comes from the project options::

    options = {"stages": [
        {"name": "facts", "scheme": "sequential", "fraction": 0.5},
        {"name": "testimonials", "scheme": "simultaneous", "fraction": 0.5},
    ]}

The hybrid result merges every stage's artefact; it completes when all
stages complete.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    TeamResult,
)
from repro.core.collaboration.sequential import SequentialScheme
from repro.core.collaboration.simultaneous import SimultaneousScheme
from repro.core.tasks import Task
from repro.errors import CollaborationError

_DEFAULT_STAGES = [
    {"name": "facts", "scheme": "sequential", "fraction": 0.5},
    {"name": "testimonials", "scheme": "simultaneous", "fraction": 0.5},
]


class HybridScheme(CollaborationScheme):
    kind = "hybrid"

    def __init__(self) -> None:
        self._sub_schemes: dict[str, CollaborationScheme] = {}
        self._sub_contexts: dict[str, CollaborationContext] = {}

    # -- team partitioning ----------------------------------------------------
    def _stages(self, ctx: CollaborationContext) -> list[dict[str, Any]]:
        stages = ctx.options.get("stages") or _DEFAULT_STAGES
        if len(stages) < 1:
            raise CollaborationError("hybrid scheme needs at least one stage")
        return stages

    def _split_team(
        self, ctx: CollaborationContext, stages: list[dict[str, Any]]
    ) -> dict[str, tuple[str, ...]]:
        """Deterministically split members across stages by declared
        fractions (every stage gets at least one member when possible)."""
        members = sorted(ctx.team.members, key=lambda wid: -ctx.worker_skill(wid))
        total = len(members)
        allocation: dict[str, tuple[str, ...]] = {}
        cursor = 0
        for index, stage in enumerate(stages):
            if index == len(stages) - 1:
                share = total - cursor  # remainder to the last stage
            else:
                fraction = float(stage.get("fraction", 1.0 / len(stages)))
                share = max(1, round(total * fraction)) if total - cursor > 0 else 0
                share = min(share, total - cursor - (len(stages) - index - 1))
                share = max(share, 0)
            allocation[stage["name"]] = tuple(members[cursor:cursor + share])
            cursor += share
        return allocation

    def _sub_context(
        self, ctx: CollaborationContext, stage_name: str, sub_members: tuple[str, ...]
    ) -> CollaborationContext:
        sub_team = replace(
            ctx.team,
            id=f"{ctx.team.id}:{stage_name}",
            members=sub_members,
            confirmed=frozenset(sub_members),
        )
        return CollaborationContext(
            root_task=ctx.root_task,
            team=sub_team,
            pool=ctx.pool,
            events=ctx.events,
            document=ctx.document,
            options=ctx.options,
            worker_skill=ctx.worker_skill,
        )

    # -- scheme interface -----------------------------------------------------
    def start(self, ctx: CollaborationContext, now: float) -> list[Task]:
        stages = self._stages(ctx)
        allocation = self._split_team(ctx, stages)
        ctx.pool.update_payload(
            ctx.root_task.id,
            scheme=self.kind,
            stage_allocation={k: list(v) for k, v in allocation.items()},
            stage_done={stage["name"]: False for stage in stages},
        )
        tasks: list[Task] = []
        for stage in stages:
            name = stage["name"]
            members = allocation[name]
            if not members:
                self._mark_stage_done(ctx, name, now)
                continue
            sub_scheme = self._make_sub_scheme(stage)
            sub_ctx = self._sub_context(ctx, name, members)
            self._sub_schemes[name] = sub_scheme
            self._sub_contexts[name] = sub_ctx
            for task in sub_scheme.start(sub_ctx, now):
                tasks.append(self._tag(ctx, task, name))
        ctx.events.publish(
            "scheme.hybrid.started", now,
            task_id=ctx.root_task.id,
            stages={name: list(members) for name, members in allocation.items()},
        )
        return tasks

    def _make_sub_scheme(self, stage: dict[str, Any]) -> CollaborationScheme:
        scheme_name = stage.get("scheme", "sequential")
        if scheme_name == "sequential":
            sub_scheme: CollaborationScheme = SequentialScheme(
                passes=int(stage.get("passes", 1))
            )
        elif scheme_name == "simultaneous":
            sub_scheme = SimultaneousScheme()
        else:
            raise CollaborationError(
                f"hybrid stage {stage.get('name')!r}: unknown sub-scheme "
                f"{scheme_name!r}"
            )
        # Namespace the sub-scheme's payload/document keys by stage so two
        # stages of the same kind never collide.
        sub_scheme.payload_prefix = f"{stage['name']}."
        return sub_scheme

    def _tag(self, ctx: CollaborationContext, task: Task, stage_name: str) -> Task:
        return ctx.pool.update_payload(task.id, hybrid_stage=stage_name)

    def on_micro_completed(
        self, ctx: CollaborationContext, task: Task, result: dict[str, Any], now: float
    ) -> list[Task]:
        stage_name = task.payload.get("hybrid_stage")
        if stage_name is None or stage_name not in self._sub_schemes:
            raise CollaborationError(
                f"micro-task {task.id} carries no known hybrid stage"
            )
        sub_scheme = self._sub_schemes[stage_name]
        sub_ctx = self._sub_contexts[stage_name]
        follow_ups = [
            self._tag(ctx, follow_up, stage_name)
            for follow_up in sub_scheme.on_micro_completed(sub_ctx, task, result, now)
        ]
        if not follow_ups and self._stage_is_complete(stage_name):
            self._mark_stage_done(ctx, stage_name, now)
        return follow_ups

    def _stage_is_complete(self, stage_name: str) -> bool:
        sub_scheme = self._sub_schemes.get(stage_name)
        sub_ctx = self._sub_contexts.get(stage_name)
        if sub_scheme is None or sub_ctx is None:
            return True
        return sub_scheme.is_complete(sub_ctx)

    def _mark_stage_done(
        self, ctx: CollaborationContext, stage_name: str, now: float
    ) -> None:
        root = ctx.refresh_root()
        stage_done = dict(root.payload.get("stage_done", {}))
        stage_done[stage_name] = True
        ctx.pool.update_payload(root.id, stage_done=stage_done)
        ctx.events.publish(
            "scheme.hybrid.stage_done", now,
            task_id=root.id, stage=stage_name,
        )

    def contribute(
        self, ctx: CollaborationContext, worker_id: str, content: str, now: float
    ) -> None:
        """Route a parallel contribution to the member's simultaneous stage."""
        for stage_name, sub_ctx in self._sub_contexts.items():
            sub_scheme = self._sub_schemes[stage_name]
            if worker_id in sub_ctx.team.members and isinstance(
                sub_scheme, SimultaneousScheme
            ):
                sub_scheme.contribute(sub_ctx, worker_id, content, now)
                return
        raise CollaborationError(
            f"worker {worker_id} has no simultaneous stage to contribute to"
        )

    def is_complete(self, ctx: CollaborationContext) -> bool:
        root = ctx.refresh_root()
        stage_done = root.payload.get("stage_done")
        if not stage_done:
            return False
        return all(stage_done.values())

    def build_result(
        self, ctx: CollaborationContext, submitted_by: str, now: float
    ) -> TeamResult:
        root = ctx.refresh_root()
        stage_payloads: dict[str, Any] = {}
        for stage_name, sub_scheme in self._sub_schemes.items():
            sub_ctx = self._sub_contexts[stage_name]
            stage_result = sub_scheme.build_result(sub_ctx, submitted_by, now)
            stage_payloads[stage_name] = stage_result.payload
        text = ctx.document.merged_text()
        payload: dict[str, Any] = {
            "text": text,
            "stages": stage_payloads,
            "contributors": ctx.document.contributors(),
            "revisions": ctx.document.revision_count(),
        }
        fill = self._fill_values_from_answer(ctx, root.payload.get("answer"), text)
        if fill is not None:
            payload["fill_values"] = fill
        return TeamResult(
            task_id=root.id,
            team_id=ctx.team.id,
            payload=payload,
            submitted_by=submitted_by,
            time=now,
        )
