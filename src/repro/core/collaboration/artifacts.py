"""Shared artefacts produced by collaborating teams.

The paper delegates the communication channel to external tools (Google
Docs in Figure 5) while Crowd4U controls task generation and result
recording.  :class:`Document` is the in-library stand-in for that shared
artefact: ordered sections, full revision history, per-worker
contribution accounting.  The substitution preserves the control flow the
demo exercises (who may edit, when the result is submitted, how it is
credited) — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CollaborationError


@dataclass(frozen=True)
class Revision:
    """One edit of one section."""

    author: str
    before: str
    after: str
    time: float
    note: str = ""


@dataclass
class Section:
    """A keyed part of the shared document."""

    key: str
    heading: str = ""
    text: str = ""
    revisions: list[Revision] = field(default_factory=list)

    @property
    def last_author(self) -> str | None:
        return self.revisions[-1].author if self.revisions else None


class Document:
    """An ordered, revision-tracked collaborative document."""

    def __init__(self, doc_id: str, title: str = "") -> None:
        self.id = doc_id
        self.title = title
        self._sections: dict[str, Section] = {}
        self._order: list[str] = []

    # -- structure ----------------------------------------------------------
    def add_section(self, key: str, heading: str = "") -> Section:
        if key in self._sections:
            raise CollaborationError(f"section {key!r} already exists")
        section = Section(key=key, heading=heading)
        self._sections[key] = section
        self._order.append(key)
        return section

    def ensure_section(self, key: str, heading: str = "") -> Section:
        if key in self._sections:
            return self._sections[key]
        return self.add_section(key, heading)

    def section(self, key: str) -> Section:
        try:
            return self._sections[key]
        except KeyError:
            raise CollaborationError(f"no section {key!r} in document {self.id}") from None

    @property
    def section_keys(self) -> tuple[str, ...]:
        return tuple(self._order)

    # -- editing -----------------------------------------------------------
    def edit(
        self, key: str, author: str, new_text: str, time: float, note: str = ""
    ) -> Revision:
        """Replace a section's text, recording the revision."""
        section = self.section(key)
        revision = Revision(
            author=author, before=section.text, after=new_text, time=time, note=note
        )
        section.revisions.append(revision)
        section.text = new_text
        return revision

    def append_text(
        self, key: str, author: str, extra_text: str, time: float, note: str = ""
    ) -> Revision:
        """Append to a section (simultaneous contributors extend their part)."""
        section = self.section(key)
        combined = (section.text + "\n" + extra_text).strip("\n")
        return self.edit(key, author, combined, time, note)

    # -- accounting ---------------------------------------------------------
    def merged_text(self) -> str:
        """The whole document in section order (the merge step of §2.2)."""
        parts: list[str] = []
        for key in self._order:
            section = self._sections[key]
            if section.heading:
                parts.append(f"## {section.heading}")
            if section.text:
                parts.append(section.text)
        return "\n\n".join(parts)

    def contributors(self) -> dict[str, int]:
        """worker id → number of revisions authored."""
        counts: dict[str, int] = {}
        for section in self._sections.values():
            for revision in section.revisions:
                counts[revision.author] = counts.get(revision.author, 0) + 1
        return counts

    def revision_count(self) -> int:
        return sum(len(s.revisions) for s in self._sections.values())

    def history(self) -> list[tuple[str, Revision]]:
        """All revisions as (section key, revision), in time order."""
        entries = [
            (key, revision)
            for key, section in self._sections.items()
            for revision in section.revisions
        ]
        entries.sort(key=lambda pair: pair[1].time)
        return entries

    def __len__(self) -> int:
        return len(self._sections)
