"""Worker collaboration schemes for result coordination (paper §2.3).

Three schemes ensure effective result coordination once a team undertakes
a task:

* **sequential** — members improve each other's contribution through
  dynamically generated follow-up tasks (text translation);
* **simultaneous** — the platform first solicits each member's SNS id,
  then generates the joint task for all members, who contribute in
  parallel; one member submits and the result is credited to the team
  (citizen journalism, Figure 5);
* **hybrid** — interleaves the two in a complex dataflow (surveillance:
  sequential fact collection + simultaneous testimonials).

Schemes are pluggable through :class:`SchemeRegistry` (§3's extensibility
claim).
"""

from repro.core.collaboration.artifacts import Document, Revision, Section
from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    SchemeRegistry,
    TeamResult,
    default_scheme_registry,
)
from repro.core.collaboration.hybrid import HybridScheme
from repro.core.collaboration.sequential import SequentialScheme
from repro.core.collaboration.simultaneous import SimultaneousScheme

__all__ = [
    "CollaborationContext",
    "CollaborationScheme",
    "Document",
    "HybridScheme",
    "Revision",
    "SchemeRegistry",
    "Section",
    "SequentialScheme",
    "SimultaneousScheme",
    "TeamResult",
    "default_scheme_registry",
]
