"""Result coordination bookkeeping (§2.3).

When a collaboration finishes, the coordinator:

* completes the root task with the team's payload,
* records the result in the ``team_result`` relation **credited to the
  team** ("submitted by one of the team members, but recorded as the
  result produced by the team"),
* moves every member's relationship to *Completed*,
* reinforces the affinity matrix with the observed outcome quality, so
  successful teams become more likely to be re-formed.
"""

from __future__ import annotations

from repro.core.affinity import AffinityMatrix
from repro.core.collaboration.base import TeamResult
from repro.core.events import EventBus
from repro.core.relationships import RelationshipLedger, RelationshipStatus
from repro.core.tasks import TaskPool
from repro.core.teams import TeamRegistry, TeamStatus
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util import IdFactory

_SCHEMA = TableSchema(
    "team_result",
    [
        Column("id", ColumnType.TEXT),
        Column("task_id", ColumnType.TEXT),
        Column("team_id", ColumnType.TEXT),
        Column("project_id", ColumnType.TEXT),
        Column("submitted_by", ColumnType.TEXT),
        Column("time", ColumnType.FLOAT),
        Column("quality", ColumnType.FLOAT),
        Column("payload", ColumnType.JSON),
    ],
    primary_key=("id",),
)


class ResultCoordinator:
    """Finalises collaborative tasks and feeds outcomes back into the
    platform's learning loops."""

    def __init__(
        self,
        db: Database,
        pool: TaskPool,
        teams: TeamRegistry,
        ledger: RelationshipLedger,
        affinity: AffinityMatrix,
        events: EventBus,
    ) -> None:
        self.db = db
        if not db.has_table(_SCHEMA.name):
            db.create_table(_SCHEMA)
        self.pool = pool
        self.teams = teams
        self.ledger = ledger
        self.affinity = affinity
        self.events = events
        self._ids = IdFactory("res", width=6)

    def record(self, result: TeamResult, quality: float, now: float) -> str:
        """Finalise one collaborative task; returns the result row id."""
        task = self.pool.get(result.task_id)
        self.pool.complete(result.task_id, result.payload)
        team = self.teams.get(result.team_id)
        self.teams.set_status(team.id, TeamStatus.FINISHED)
        for member in team.members:
            if self.ledger.status(member, task.id) is RelationshipStatus.UNDERTAKES:
                self.ledger.complete(member, task.id, now)
        if len(team.members) > 1:
            self.affinity.reinforce(team.members, quality)
        row_id = self._ids.next()
        self.db.insert(
            _SCHEMA.name,
            {
                "id": row_id,
                "task_id": result.task_id,
                "team_id": result.team_id,
                "project_id": task.project_id,
                "submitted_by": result.submitted_by,
                "time": result.time,
                "quality": quality,
                "payload": dict(result.payload),
            },
        )
        self.events.publish(
            "task.completed",
            now,
            task_id=task.id,
            team_id=team.id,
            project_id=task.project_id,
            submitted_by=result.submitted_by,
            quality=quality,
        )
        return row_id

    def results_for_project(self, project_id: str) -> list[dict]:
        return [
            row
            for row in self.db.table(_SCHEMA.name).rows()
            if row["project_id"] == project_id
        ]
