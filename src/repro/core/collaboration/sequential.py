"""Sequential collaboration (§2.3): an improvement chain.

"The team members collaborate with each other through the tasks
dynamically generated based on other members' task results.  For example,
after a worker translates a sentence into another language, a task for
checking the result is dynamically generated, and the result is sent to
another team member."

Implementation: members are ordered by task-relevant skill (strongest
drafts first); member 1 receives a DRAFT micro-task, every later member
receives a REVIEW micro-task carrying the predecessor's output.  Each
review may *improve* the text (its result replaces the draft).  After the
last member, the chain result becomes the team result.  Multiple passes
are supported via the ``passes`` option.
"""

from __future__ import annotations

from typing import Any

from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    TeamResult,
)
from repro.core.tasks import Task, TaskKind
from repro.errors import CollaborationError


class SequentialScheme(CollaborationScheme):
    kind = "sequential"

    def __init__(self, passes: int = 1) -> None:
        if passes < 1:
            raise CollaborationError("passes must be >= 1")
        self.passes = passes

    # -- ordering -------------------------------------------------------------
    def _chain(self, ctx: CollaborationContext) -> list[str]:
        members = list(ctx.team.members)
        members.sort(key=lambda wid: (-ctx.worker_skill(wid), wid))
        return members * self.passes

    # -- scheme interface ------------------------------------------------------
    def start(self, ctx: CollaborationContext, now: float) -> list[Task]:
        chain = self._chain(ctx)
        ctx.pool.update_payload(
            ctx.root_task.id,
            **{
                self._key("chain"): chain,
                self._key("chain_position"): 0,
                self._key("scheme"): self.kind,
            },
        )
        ctx.document.ensure_section(self._key("body"), heading=ctx.root_task.instruction)
        first = ctx.pool.create(
            project_id=ctx.root_task.project_id,
            kind=TaskKind.DRAFT,
            instruction=ctx.root_task.instruction,
            assignee=chain[0],
            team_id=ctx.team.id,
            parent_task_id=ctx.root_task.id,
            payload={"step": 0, "previous_text": ""},
            created_at=now,
            choices=ctx.root_task.choices,
        )
        ctx.events.publish(
            "scheme.sequential.started", now,
            task_id=ctx.root_task.id, chain=chain,
        )
        return [first]

    def on_micro_completed(
        self, ctx: CollaborationContext, task: Task, result: dict[str, Any], now: float
    ) -> list[Task]:
        root = ctx.refresh_root()
        chain: list[str] = list(root.payload[self._key("chain")])
        position = int(root.payload[self._key("chain_position")])
        text = str(result.get("text", ""))
        answer = result.get("answer")
        ctx.document.edit(
            self._key("body"),
            author=task.assignee or "unknown",
            new_text=text,
            time=now,
            note=f"step {position}",
        )
        updates: dict[str, Any] = {self._key("chain_position"): position + 1}
        if answer is not None:
            updates[self._key("answer")] = answer
        ctx.pool.update_payload(root.id, **updates)
        next_position = position + 1
        if next_position >= len(chain):
            return []  # chain finished; platform will collect the result
        follow_up = ctx.pool.create(
            project_id=root.project_id,
            kind=TaskKind.REVIEW,
            instruction=(
                "Check and improve the previous contribution for: "
                f"{root.instruction}"
            ),
            assignee=chain[next_position],
            team_id=ctx.team.id,
            parent_task_id=root.id,
            payload={"step": next_position, "previous_text": text},
            created_at=now,
            choices=root.choices,
        )
        ctx.events.publish(
            "scheme.sequential.follow_up", now,
            task_id=root.id, step=next_position, assignee=chain[next_position],
        )
        return [follow_up]

    def is_complete(self, ctx: CollaborationContext) -> bool:
        root = ctx.refresh_root()
        chain = root.payload.get(self._key("chain"))
        if chain is None:
            return False
        return int(root.payload.get(self._key("chain_position"), 0)) >= len(chain)

    def build_result(
        self, ctx: CollaborationContext, submitted_by: str, now: float
    ) -> TeamResult:
        root = ctx.refresh_root()
        text = ctx.document.section(self._key("body")).text
        payload: dict[str, Any] = {
            "text": text,
            "revisions": ctx.document.revision_count(),
            "contributors": ctx.document.contributors(),
        }
        fill = self._fill_values_from_answer(ctx, root.payload.get(self._key("answer")), text)
        if fill is not None:
            payload["fill_values"] = fill
        return TeamResult(
            task_id=root.id,
            team_id=ctx.team.id,
            payload=payload,
            submitted_by=submitted_by,
            time=now,
        )
