"""Simultaneous collaboration (§2.3, Figure 5).

"Crowd4U first assigns the task to solicit her SNS ID (e.g., Google
account) to communicate with other members in the team.  After all the
members are in the 'undertakes' status, the collaborative task is
generated and assigned to all the members with the list of obtained IDs.
The members work together with any collaboration tool (e.g., Google docs).
The result of the collaborative task is submitted by one of the team
members, but recorded as the result produced by the team."

Stage 1 creates one SOLICIT_SNS micro-task per member; stage 2 creates a
single JOINT task addressed to the whole team carrying the collected SNS
ids.  Members contribute in parallel to their own section of the shared
document; any member's submission finalises the team result.
"""

from __future__ import annotations

from typing import Any

from repro.core.collaboration.base import (
    CollaborationContext,
    CollaborationScheme,
    TeamResult,
)
from repro.core.tasks import Task, TaskKind
from repro.errors import CollaborationError


class SimultaneousScheme(CollaborationScheme):
    kind = "simultaneous"

    # -- scheme interface -----------------------------------------------------
    def start(self, ctx: CollaborationContext, now: float) -> list[Task]:
        ctx.pool.update_payload(
            ctx.root_task.id,
            **{
                self._key("scheme"): self.kind,
                self._key("sns_ids"): {},
                self._key("joint_task_id"): None,
                self._key("submitted"): False,
            },
        )
        tasks = []
        for member in ctx.team.members:
            tasks.append(
                ctx.pool.create(
                    project_id=ctx.root_task.project_id,
                    kind=TaskKind.SOLICIT_SNS,
                    instruction=(
                        "Provide your SNS account id so your team can "
                        "communicate (e.g. a Google account)"
                    ),
                    assignee=member,
                    team_id=ctx.team.id,
                    parent_task_id=ctx.root_task.id,
                    payload={},
                    created_at=now,
                )
            )
        ctx.events.publish(
            "scheme.simultaneous.started", now,
            task_id=ctx.root_task.id, members=list(ctx.team.members),
        )
        return tasks

    def on_micro_completed(
        self, ctx: CollaborationContext, task: Task, result: dict[str, Any], now: float
    ) -> list[Task]:
        root = ctx.refresh_root()
        if task.kind is TaskKind.SOLICIT_SNS:
            sns_ids = dict(root.payload.get(self._key("sns_ids"), {}))
            sns_ids[task.assignee or "unknown"] = str(
                result.get("sns_id", f"{task.assignee}@example.org")
            )
            ctx.pool.update_payload(root.id, **{self._key("sns_ids"): sns_ids})
            if set(sns_ids) == set(ctx.team.members):
                return [self._create_joint_task(ctx, sns_ids, now)]
            return []
        if task.kind is TaskKind.JOINT:
            # The submitting member completed the joint task on behalf of the
            # team (contributions were recorded through ``contribute``).
            ctx.pool.update_payload(
                root.id,
                **{
                    self._key("submitted"): True,
                    self._key("submitted_by"): task.assignee,
                },
            )
            return []
        raise CollaborationError(
            f"simultaneous scheme cannot handle micro-task kind {task.kind}"
        )

    def _create_joint_task(
        self, ctx: CollaborationContext, sns_ids: dict[str, str], now: float
    ) -> Task:
        root = ctx.refresh_root()
        for member in ctx.team.members:
            ctx.document.ensure_section(
                self._key(f"part-{member}"), heading=f"Contribution of {member}"
            )
        joint = ctx.pool.create(
            project_id=root.project_id,
            kind=TaskKind.JOINT,
            instruction=root.instruction,
            # The joint task is addressed to every member; whoever submits
            # becomes its formal assignee at completion time.
            assignee=None,
            team_id=ctx.team.id,
            parent_task_id=root.id,
            payload={
                "addressed_to": list(ctx.team.members),
                "sns_ids": dict(sorted(sns_ids.items())),
            },
            created_at=now,
            choices=root.choices,
        )
        ctx.pool.update_payload(root.id, **{self._key("joint_task_id"): joint.id})
        ctx.events.publish(
            "scheme.simultaneous.joint_created", now,
            task_id=root.id, joint_task_id=joint.id,
            sns_ids=dict(sorted(sns_ids.items())),
        )
        return joint

    # -- parallel contributions ---------------------------------------------
    def contribute(
        self,
        ctx: CollaborationContext,
        worker_id: str,
        content: str,
        now: float,
    ) -> None:
        """One member writes into her section of the shared document."""
        if worker_id not in ctx.team.members:
            raise CollaborationError(
                f"worker {worker_id} is not on team {ctx.team.id}"
            )
        root = ctx.refresh_root()
        if root.payload.get(self._key("joint_task_id")) is None:
            raise CollaborationError(
                "joint task not yet created; SNS solicitation still running"
            )
        ctx.document.append_text(self._key(f"part-{worker_id}"), worker_id, content, now)
        ctx.events.publish(
            "scheme.simultaneous.contribution", now,
            task_id=root.id, worker_id=worker_id, length=len(content),
        )

    def is_complete(self, ctx: CollaborationContext) -> bool:
        root = ctx.refresh_root()
        return bool(root.payload.get(self._key("submitted")))

    def build_result(
        self, ctx: CollaborationContext, submitted_by: str, now: float
    ) -> TeamResult:
        root = ctx.refresh_root()
        text = ctx.document.merged_text()
        payload: dict[str, Any] = {
            "text": text,
            "sns_ids": root.payload.get(self._key("sns_ids"), {}),
            "contributors": ctx.document.contributors(),
            "revisions": ctx.document.revision_count(),
        }
        fill = self._fill_values_from_answer(ctx, root.payload.get(self._key("answer")), text)
        if fill is not None:
            payload["fill_values"] = fill
        return TeamResult(
            task_id=root.id,
            team_id=ctx.team.id,
            payload=payload,
            submitted_by=submitted_by,
            time=now,
        )
