"""Common machinery of the collaboration schemes."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.collaboration.artifacts import Document
from repro.core.events import EventBus
from repro.core.tasks import Task, TaskPool
from repro.core.teams import Team
from repro.errors import CollaborationError


@dataclass
class CollaborationContext:
    """Everything a scheme needs to run one team's collaboration."""

    root_task: Task
    team: Team
    pool: TaskPool
    events: EventBus
    document: Document
    #: Extra options from the project (e.g. hybrid stage layout).
    options: dict[str, Any] = field(default_factory=dict)
    #: Worker id → human factors lookup for ordering decisions.
    worker_skill: Callable[[str], float] = lambda worker_id: 0.0

    def refresh_root(self) -> Task:
        """Re-read the root task (payload may have been updated)."""
        self.root_task = self.pool.get(self.root_task.id)
        return self.root_task


@dataclass(frozen=True)
class TeamResult:
    """The coordinated result of one collaborative task (§2.3): submitted by
    one member, *recorded as produced by the team*."""

    task_id: str
    team_id: str
    payload: dict[str, Any]
    submitted_by: str
    time: float

    @property
    def fill_values(self) -> dict[str, Any] | None:
        return self.payload.get("fill_values")


class CollaborationScheme(abc.ABC):
    """One result-coordination scheme driving a confirmed team."""

    kind: str = "abstract"

    #: Prefix for root-task payload keys and document section keys.  The
    #: hybrid scheme sets a distinct prefix per stage so two sub-schemes of
    #: the same kind never clobber each other's state.
    payload_prefix: str = ""

    def _key(self, name: str) -> str:
        return f"{self.payload_prefix}{name}"

    @abc.abstractmethod
    def start(self, ctx: CollaborationContext, now: float) -> list[Task]:
        """Generate the initial micro-task(s) for the team."""

    @abc.abstractmethod
    def on_micro_completed(
        self, ctx: CollaborationContext, task: Task, result: dict[str, Any], now: float
    ) -> list[Task]:
        """React to a completed micro-task; return follow-up micro-tasks
        ("tasks dynamically generated based on other members' results")."""

    @abc.abstractmethod
    def is_complete(self, ctx: CollaborationContext) -> bool:
        """Whether the collaboration produced its final result."""

    @abc.abstractmethod
    def build_result(
        self, ctx: CollaborationContext, submitted_by: str, now: float
    ) -> TeamResult:
        """Assemble the team result after :meth:`is_complete` turns true."""

    # -- shared helpers ------------------------------------------------------
    def _fill_values_from_answer(
        self, ctx: CollaborationContext, answer: Any, text: str
    ) -> dict[str, Any] | None:
        """Map the final artefact onto the root task's open-predicate fill
        columns: an explicit typed ``answer`` wins; otherwise the document
        text fills a single text column."""
        columns = ctx.root_task.fill_columns
        if not columns:
            return None
        if isinstance(answer, dict):
            return dict(answer)
        if answer is not None and len(columns) == 1:
            return {columns[0]: answer}
        if len(columns) == 1:
            return {columns[0]: text}
        raise CollaborationError(
            f"cannot map result onto fill columns {columns!r}; supply an "
            "'answer' dict in the final micro-task result"
        )


class SchemeRegistry:
    """Name → scheme factory (the §3 extensibility hook)."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], CollaborationScheme]] = {}

    def register(self, name: str, factory: Callable[[], CollaborationScheme]) -> None:
        if name in self._factories:
            raise CollaborationError(f"scheme {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str) -> CollaborationScheme:
        try:
            return self._factories[name]()
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise CollaborationError(
                f"unknown collaboration scheme {name!r} (known: {known})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_scheme_registry() -> SchemeRegistry:
    from repro.core.collaboration.hybrid import HybridScheme
    from repro.core.collaboration.sequential import SequentialScheme
    from repro.core.collaboration.simultaneous import SimultaneousScheme

    registry = SchemeRegistry()
    registry.register("sequential", SequentialScheme)
    registry.register("simultaneous", SimultaneousScheme)
    registry.register("hybrid", HybridScheme)
    return registry
