"""Platform event bus and audit trail.

Every notable platform action (task generated, interest declared, team
proposed, collaboration finished, …) is published as an :class:`Event`.
Subscribers power the monitor, the benches' observability and the tests'
assertions about *when* things happened.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    seq: int
    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


Listener = Callable[[Event], None]


class EventBus:
    """Synchronous pub/sub with a bounded in-memory audit log."""

    def __init__(self, max_log: int = 100_000) -> None:
        self._seq = itertools.count()
        self._listeners: dict[str | None, list[Listener]] = {}
        self._log: list[Event] = []
        self.max_log = max_log

    def subscribe(self, kind: str | None, listener: Listener) -> None:
        """Subscribe to one event kind, or to everything with ``kind=None``."""
        self._listeners.setdefault(kind, []).append(listener)

    def publish(self, kind: str, time: float, **payload: Any) -> Event:
        event = Event(seq=next(self._seq), time=time, kind=kind, payload=payload)
        if len(self._log) < self.max_log:
            self._log.append(event)
        for listener in self._listeners.get(kind, ()):
            listener(event)
        for listener in self._listeners.get(None, ()):
            listener(event)
        return event

    def log(self, kind: str | None = None) -> list[Event]:
        """The audit trail, optionally filtered by kind."""
        if kind is None:
            return list(self._log)
        return [event for event in self._log if event.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for event in self._log if event.kind == kind)

    def clear(self) -> None:
        self._log.clear()
