"""Simulated crowd: the substitute for crowd4u.org's live volunteers.

The paper demonstrates Crowd4U with real workers; offline we drive the
*same public platform API* with a seeded, discrete-event crowd:

* :mod:`population` — generate worker profiles from configurable
  language / region / skill distributions,
* :mod:`behavior` — per-worker stochastic behaviour: interest, acceptance,
  response latency, answer production and quality,
* :mod:`outcomes` — the collaboration outcome model (affinity synergy,
  upper-critical-mass degradation) following [9]'s modelling assumptions,
* :mod:`skill_estimation` — Beta-posterior worker skill learning from
  team outcomes, following [10],
* :mod:`driver` — the event loop that makes simulated workers browse
  their user pages, declare interest, confirm memberships, perform
  micro-tasks and submit team results until the platform is quiescent.

Every component derives its randomness from one base seed, so experiment
runs are exactly reproducible.
"""

from repro.sim.behavior import BehaviorConfig, BehaviorModel
from repro.sim.clock import TickTimer, VirtualClock
from repro.sim.driver import SimulationDriver, SimulationReport
from repro.sim.outcomes import OutcomeModel, OutcomeConfig
from repro.sim.population import (
    ChurnConfig,
    ChurnProcess,
    PopulationConfig,
    generate_factors,
    populate,
    zipf_weights,
)
from repro.sim.skill_estimation import BetaSkillEstimator

__all__ = [
    "BehaviorConfig",
    "BehaviorModel",
    "BetaSkillEstimator",
    "ChurnConfig",
    "ChurnProcess",
    "OutcomeConfig",
    "OutcomeModel",
    "PopulationConfig",
    "SimulationDriver",
    "SimulationReport",
    "TickTimer",
    "VirtualClock",
    "generate_factors",
    "populate",
    "zipf_weights",
]
