"""Collaboration outcome model.

Quantifies "the synergistic effect caused by worker collaboration and of
other human factors affecting collaboration effectiveness and outcome
quality" (§1), following the modelling ingredients of [9]:

* **base competence** — noisy-or aggregation of member skill (one member
  succeeding suffices to carry the artefact),
* **affinity synergy** — teams with high internal affinity coordinate
  better; synergy scales with mean pairwise affinity,
* **upper critical mass** — beyond the task's critical mass every extra
  member *reduces* effectiveness (coordination overhead), which is what
  makes the UCM constraint meaningful (ablation E14),
* **scheme fit** — sequential chains benefit from review depth,
  simultaneous teams from parallel coverage; the hybrid averages both.

The model is deterministic given its inputs except for a small seeded
noise term, so benches can average a handful of repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.affinity import AffinityMatrix
from repro.core.workers import Worker
from repro.util.rng import make_rng
from repro.util.text import clamp


@dataclass(frozen=True)
class OutcomeConfig:
    """Weights of the outcome model."""

    #: Maximum relative boost from perfect internal affinity.
    synergy_gain: float = 0.35
    #: Relative penalty per member beyond the upper critical mass.
    overload_penalty: float = 0.15
    #: Relative gain per review step in sequential chains (diminishing).
    review_gain: float = 0.10
    #: Standard deviation of the noise term.
    noise: float = 0.03


class OutcomeModel:
    """Computes outcome quality in [0, 1] for one finished collaboration."""

    def __init__(self, config: OutcomeConfig | None = None, seed: int = 0) -> None:
        self.config = config or OutcomeConfig()
        self.seed = seed

    # -- components ----------------------------------------------------------
    def base_competence(
        self, workers: Sequence[Worker], skills: Sequence[str]
    ) -> float:
        """Noisy-or of member competence over the task's skills."""
        if not workers:
            return 0.0
        failure = 1.0
        for worker in workers:
            if skills:
                level = worker.factors.mean_skill(tuple(skills))
            else:
                level = worker.factors.reliability
            failure *= 1.0 - clamp(level * worker.factors.reliability, 0.0, 1.0)
        return 1.0 - failure

    def synergy(self, team: Sequence[str], affinity: AffinityMatrix) -> float:
        """Multiplier ≥ 1 growing with internal affinity density."""
        density = affinity.density(team)
        return 1.0 + self.config.synergy_gain * density

    def overload(self, team_size: int, critical_mass: int) -> float:
        """Multiplier ≤ 1 punishing teams beyond the critical mass."""
        excess = max(0, team_size - critical_mass)
        return (1.0 - self.config.overload_penalty) ** excess

    def scheme_factor(self, scheme: str, team_size: int) -> float:
        """Scheme-specific shape: review depth vs parallel coverage."""
        if scheme == "sequential":
            reviews = max(0, team_size - 1)
            return 1.0 + self.config.review_gain * math.log1p(reviews)
        if scheme == "simultaneous":
            return 1.0 + 0.05 * math.log1p(team_size)
        if scheme == "hybrid":
            return (
                self.scheme_factor("sequential", team_size // 2 or 1)
                + self.scheme_factor("simultaneous", team_size - (team_size // 2))
            ) / 2.0
        return 1.0

    # -- the model ------------------------------------------------------------
    def quality(
        self,
        workers: Sequence[Worker],
        affinity: AffinityMatrix,
        skills: Sequence[str],
        critical_mass: int,
        scheme: str = "sequential",
        trial: int = 0,
    ) -> float:
        """Outcome quality in [0, 1] for one collaboration instance."""
        team_ids = [w.id for w in workers]
        base = self.base_competence(workers, skills)
        value = (
            base
            * self.synergy(team_ids, affinity)
            * self.overload(len(workers), critical_mass)
            * self.scheme_factor(scheme, len(workers))
        )
        rng = make_rng(self.seed, "outcome", tuple(sorted(team_ids)), trial)
        value += rng.gauss(0.0, self.config.noise)
        return clamp(value, 0.0, 1.0)
