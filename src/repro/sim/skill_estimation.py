"""Worker skill estimation from team-based task outcomes (after [10]).

The platform only observes *team* outcomes, yet needs per-worker skill
estimates for future eligibility and assignment ("computed by the system
based on previously performed tasks", §2.4).  Following the spirit of
Rahman et al., PVLDB 2015 [10], we maintain a Beta posterior per
(worker, skill) and distribute each team outcome to members weighted by
their observed contribution share (revision counts), so free-riders gain
less credit than active contributors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.util.text import clamp


@dataclass
class _Posterior:
    alpha: float = 1.0
    beta: float = 1.0

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def observations(self) -> float:
        return self.alpha + self.beta - 2.0


@dataclass
class BetaSkillEstimator:
    """Beta-posterior skill tracker over team outcomes."""

    #: Pseudo-count weight of one fully-credited observation.
    observation_weight: float = 2.0
    _posteriors: dict[tuple[str, str], _Posterior] = field(default_factory=dict)

    def _posterior(self, worker_id: str, skill: str) -> _Posterior:
        return self._posteriors.setdefault((worker_id, skill), _Posterior())

    # -- updates -----------------------------------------------------------
    def observe_team_outcome(
        self,
        members: Sequence[str],
        skill: str,
        quality: float,
        contributions: Mapping[str, int] | None = None,
    ) -> None:
        """Credit one team outcome to its members.

        ``quality`` in [0, 1] is the observed outcome; each member's
        posterior shifts towards it with strength proportional to her
        contribution share (uniform when no accounting is available).
        """
        quality = clamp(quality, 0.0, 1.0)
        members = list(members)
        if not members:
            return
        if contributions:
            total = sum(max(0, contributions.get(m, 0)) for m in members)
        else:
            total = 0
        for member in members:
            if total > 0:
                share = max(0, (contributions or {}).get(member, 0)) / total
            else:
                share = 1.0 / len(members)
            weight = self.observation_weight * share * len(members)
            posterior = self._posterior(member, skill)
            posterior.alpha += weight * quality
            posterior.beta += weight * (1.0 - quality)

    def observe_individual(
        self, worker_id: str, skill: str, quality: float
    ) -> None:
        """Credit one individually-performed task (e.g. qualification test)."""
        quality = clamp(quality, 0.0, 1.0)
        posterior = self._posterior(worker_id, skill)
        posterior.alpha += self.observation_weight * quality
        posterior.beta += self.observation_weight * (1.0 - quality)

    # -- queries ------------------------------------------------------------
    def estimate(self, worker_id: str, skill: str) -> float:
        """Posterior mean skill (0.5 prior when unobserved)."""
        return self._posterior(worker_id, skill).mean

    def confidence(self, worker_id: str, skill: str) -> float:
        """How many weighted observations back the estimate."""
        return self._posterior(worker_id, skill).observations

    def known_workers(self) -> set[str]:
        return {worker_id for worker_id, _ in self._posteriors}

    def snapshot(self) -> dict[tuple[str, str], float]:
        """(worker, skill) → posterior mean for every tracked pair."""
        return {key: p.mean for key, p in self._posteriors.items()}
