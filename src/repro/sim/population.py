"""Worker population generation.

Profiles mirror the human factors the real platform records (Figure 4):
native language, other languages with proficiencies, region (with
coordinates for geo affinity), per-skill levels, reliability, and an SNS
id.  Distributions are configurable; defaults give a plausibly diverse
multilingual volunteer crowd.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.human_factors import HumanFactors
from repro.core.workers import Worker
from repro.util.rng import make_rng
from repro.util.text import clamp

#: region name -> (latitude, longitude)
_DEFAULT_REGIONS: dict[str, tuple[float, float]] = {
    "tsukuba": (36.08, 140.11),
    "tokyo": (35.68, 139.69),
    "paris": (48.86, 2.35),
    "grenoble": (45.19, 5.72),
    "dallas": (32.78, -96.80),
    "newark": (40.74, -74.17),
    "doha": (25.29, 51.53),
}

_DEFAULT_LANGUAGES = ("en", "ja", "fr", "ar", "es")


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for the generated crowd."""

    languages: tuple[str, ...] = _DEFAULT_LANGUAGES
    regions: dict[str, tuple[float, float]] = field(
        default_factory=lambda: dict(_DEFAULT_REGIONS)
    )
    skills: tuple[str, ...] = ("translation", "reporting", "observation")
    #: Beta distribution parameters for skill levels.
    skill_alpha: float = 2.0
    skill_beta: float = 2.0
    #: Mean number of non-native languages per worker.
    extra_languages: float = 1.2
    min_reliability: float = 0.55
    #: Probability a worker volunteers for free (cost 0).
    volunteer_fraction: float = 0.8
    max_cost: float = 2.0


def generate_factors(
    seed: int, index: int, config: PopulationConfig | None = None
) -> HumanFactors:
    """Deterministically generate one worker's human factors."""
    config = config or PopulationConfig()
    rng = make_rng(seed, "population", index)
    native = rng.choice(config.languages)
    languages: dict[str, float] = {}
    n_extra = min(
        len(config.languages) - 1,
        max(0, int(rng.expovariate(1.0 / max(config.extra_languages, 1e-9)))),
    )
    others = [lang for lang in config.languages if lang != native]
    for lang in rng.sample(others, n_extra):
        languages[lang] = round(clamp(rng.betavariate(2.0, 3.0), 0.05, 1.0), 3)
    region = rng.choice(sorted(config.regions))
    coordinates = config.regions[region]
    skills = {
        skill: round(
            clamp(rng.betavariate(config.skill_alpha, config.skill_beta), 0.0, 1.0), 3
        )
        for skill in config.skills
    }
    reliability = round(rng.uniform(config.min_reliability, 1.0), 3)
    cost = 0.0
    if rng.random() > config.volunteer_fraction:
        cost = round(rng.uniform(0.1, config.max_cost), 2)
    return HumanFactors(
        native_languages=frozenset({native}),
        languages=languages,
        region=region,
        coordinates=coordinates,
        skills=skills,
        reliability=reliability,
        cost=cost,
        sns_id=f"worker{index}@crowd4u.example",
    )


def populate(
    platform,
    count: int,
    seed: int = 0,
    config: PopulationConfig | None = None,
    name_prefix: str = "worker",
) -> list[Worker]:
    """Register ``count`` generated workers on the platform."""
    return [
        platform.register_worker(
            f"{name_prefix}{index:04d}", generate_factors(seed, index, config)
        )
        for index in range(count)
    ]
