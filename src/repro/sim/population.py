"""Worker population generation and churn.

Profiles mirror the human factors the real platform records (Figure 4):
native language, other languages with proficiencies, region (with
coordinates for geo affinity), per-skill levels, reliability, and an SNS
id.  Distributions are configurable; defaults give a plausibly diverse
multilingual volunteer crowd.

Real crowds are *skewed*: a few languages/regions dominate, arrivals come
in bursts, and participation follows heavy tails.  ``region_skew`` /
``language_skew`` put Zipf weights on the categorical draws, and
:class:`ChurnProcess` generates seeded per-tick arrival cohorts and
departure sets so scenario packs can play million-worker populations with
realistic turnover.  Everything remains a pure function of (seed, labels)
— the property the sim-diff oracle's reproducibility rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.human_factors import HumanFactors
from repro.core.workers import Worker
from repro.util.rng import make_rng
from repro.util.text import clamp


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalised Zipf weights ``rank^-s`` for ranks 1..n.

    ``s = 0`` degenerates to the uniform distribution.  (The generators
    below only take the weighted path when a skew is actually set, so the
    default configuration keeps the historical rng call sequence and stays
    bit-identical for existing seeds.)
    """
    if n <= 0:
        return []
    if s < 0:
        raise ValueError(f"zipf exponent must be >= 0, got {s!r}")
    raw = [(rank + 1) ** -s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]

#: region name -> (latitude, longitude)
_DEFAULT_REGIONS: dict[str, tuple[float, float]] = {
    "tsukuba": (36.08, 140.11),
    "tokyo": (35.68, 139.69),
    "paris": (48.86, 2.35),
    "grenoble": (45.19, 5.72),
    "dallas": (32.78, -96.80),
    "newark": (40.74, -74.17),
    "doha": (25.29, 51.53),
}

_DEFAULT_LANGUAGES = ("en", "ja", "fr", "ar", "es")


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for the generated crowd."""

    languages: tuple[str, ...] = _DEFAULT_LANGUAGES
    regions: dict[str, tuple[float, float]] = field(
        default_factory=lambda: dict(_DEFAULT_REGIONS)
    )
    skills: tuple[str, ...] = ("translation", "reporting", "observation")
    #: Beta distribution parameters for skill levels.
    skill_alpha: float = 2.0
    skill_beta: float = 2.0
    #: Mean number of non-native languages per worker.
    extra_languages: float = 1.2
    min_reliability: float = 0.55
    #: Probability a worker volunteers for free (cost 0).
    volunteer_fraction: float = 0.8
    max_cost: float = 2.0
    #: Zipf exponents for the categorical draws (0 = uniform, the
    #: historical behaviour).  With a positive exponent the first
    #: language / the alphabetically-first region dominate, as in real
    #: crowds where a handful of locales hold most of the workers.
    language_skew: float = 0.0
    region_skew: float = 0.0


def generate_factors(
    seed: int, index: int, config: PopulationConfig | None = None
) -> HumanFactors:
    """Deterministically generate one worker's human factors."""
    config = config or PopulationConfig()
    rng = make_rng(seed, "population", index)
    if config.language_skew > 0:
        native = rng.choices(
            config.languages,
            weights=zipf_weights(len(config.languages), config.language_skew),
        )[0]
    else:
        native = rng.choice(config.languages)
    languages: dict[str, float] = {}
    n_extra = min(
        len(config.languages) - 1,
        max(0, int(rng.expovariate(1.0 / max(config.extra_languages, 1e-9)))),
    )
    others = [lang for lang in config.languages if lang != native]
    for lang in rng.sample(others, n_extra):
        languages[lang] = round(clamp(rng.betavariate(2.0, 3.0), 0.05, 1.0), 3)
    region_names = sorted(config.regions)
    if config.region_skew > 0:
        region = rng.choices(
            region_names,
            weights=zipf_weights(len(region_names), config.region_skew),
        )[0]
    else:
        region = rng.choice(region_names)
    coordinates = config.regions[region]
    skills = {
        skill: round(
            clamp(rng.betavariate(config.skill_alpha, config.skill_beta), 0.0, 1.0), 3
        )
        for skill in config.skills
    }
    reliability = round(rng.uniform(config.min_reliability, 1.0), 3)
    cost = 0.0
    if rng.random() > config.volunteer_fraction:
        cost = round(rng.uniform(0.1, config.max_cost), 2)
    return HumanFactors(
        native_languages=frozenset({native}),
        languages=languages,
        region=region,
        coordinates=coordinates,
        skills=skills,
        reliability=reliability,
        cost=cost,
        sns_id=f"worker{index}@crowd4u.example",
    )


def populate(
    platform,
    count: int,
    seed: int = 0,
    config: PopulationConfig | None = None,
    name_prefix: str = "worker",
) -> list[Worker]:
    """Register ``count`` generated workers on the platform."""
    return [
        platform.register_worker(
            f"{name_prefix}{index:04d}", generate_factors(seed, index, config)
        )
        for index in range(count)
    ]


# ---------------------------------------------------------------------------
# Churn: skewed arrivals and departures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChurnConfig:
    """Per-tick arrival/departure process for a living crowd."""

    #: Mean new workers per tick (Poisson).
    arrival_rate: float = 0.0
    #: Zipf exponent over burst multipliers: most ticks draw the 1x rate,
    #: a heavy-tailed few draw up to ``burst_levels``x (flash crowds).
    #: 0 disables bursting.
    arrival_burst_skew: float = 0.0
    burst_levels: int = 5
    #: Per-tick fraction of the active crowd that departs (1.0 = everyone).
    departure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or not 0.0 <= self.departure_rate <= 1.0:
            raise ValueError(
                "arrival_rate must be >= 0 and departure_rate in [0, 1]"
            )
        if self.burst_levels < 1:
            raise ValueError("burst_levels must be >= 1")


def _poisson(rng, lam: float) -> int:
    """Seeded Poisson draw (Knuth for small rates, normal approx above)."""
    if lam <= 0:
        return 0
    if lam > 30:
        return max(0, round(rng.gauss(lam, lam ** 0.5)))
    import math

    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


class ChurnProcess:
    """Seeded arrival cohorts and departure sets, one draw bundle per tick.

    Draws depend only on ``(seed, "churn", kind, tick)`` — never on call
    order — so a delta-mode and a snapshot-mode run of the same scenario
    see the exact same churn schedule.
    """

    def __init__(self, seed: int, config: ChurnConfig | None = None) -> None:
        self.seed = seed
        self.config = config or ChurnConfig()

    def arrivals(self, tick: int) -> int:
        """How many workers join at ``tick``."""
        cfg = self.config
        if cfg.arrival_rate <= 0:
            return 0
        rng = make_rng(self.seed, "churn", "arrive", tick)
        multiplier = 1
        if cfg.arrival_burst_skew > 0 and cfg.burst_levels > 1:
            levels = list(range(1, cfg.burst_levels + 1))
            weights = zipf_weights(len(levels), cfg.arrival_burst_skew)
            multiplier = rng.choices(levels, weights=weights)[0]
        return _poisson(rng, cfg.arrival_rate * multiplier)

    def departures(self, tick: int, active_ids: Sequence[str]) -> list[str]:
        """Which of ``active_ids`` leave at ``tick`` (sorted)."""
        cfg = self.config
        roster = sorted(active_ids)
        if not roster or cfg.departure_rate <= 0:
            return []
        if cfg.departure_rate >= 1.0:
            return roster
        rng = make_rng(self.seed, "churn", "depart", tick)
        count = min(len(roster), _poisson(rng, cfg.departure_rate * len(roster)))
        return sorted(rng.sample(roster, count))
