"""A trivially simple virtual clock for discrete-event simulation."""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically advancing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float = 1.0) -> float:
        """Move time forward by ``dt`` (must be positive)."""
        if dt <= 0:
            raise SimulationError(f"clock can only move forward, got dt={dt!r}")
        self._now += dt
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualClock now={self._now:.2f}>"
