"""A trivially simple virtual clock, plus wall-clock tick statistics."""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically advancing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float = 1.0) -> float:
        """Move time forward by ``dt`` (must be positive)."""
        if dt <= 0:
            raise SimulationError(f"clock can only move forward, got dt={dt!r}")
        self._now += dt
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualClock now={self._now:.2f}>"


class TickTimer:
    """Summarise per-tick wall-clock samples into trajectory metrics.

    Scenario packs feed :attr:`SimulationDriver.tick_seconds` in and
    report ticks/s and tail latency in their ``BENCH_E15*`` records.
    """

    def __init__(self, samples: list[float] | None = None) -> None:
        self.samples: list[float] = list(samples or [])

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.samples)

    def mean_ms(self) -> float:
        if not self.samples:
            return 0.0
        return 1000.0 * self.total_seconds / len(self.samples)

    def percentile_ms(self, q: float) -> float:
        """Nearest-rank percentile of the tick latency, in milliseconds."""
        if not self.samples:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise SimulationError(f"percentile must be in (0, 100], got {q!r}")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
        return 1000.0 * ordered[rank]

    def p99_ms(self) -> float:
        return self.percentile_ms(99.0)

    def ticks_per_second(self) -> float:
        total = self.total_seconds
        if total <= 0.0:
            return 0.0
        return len(self.samples) / total
