"""The simulation event loop.

The driver plays every worker of the platform through the *public* worker
API — the same calls a browser session would make — until the platform is
quiescent:

1. browse the user page: declare interest in eligible tasks,
2. react to proposed team memberships: undertake or decline,
3. perform addressed micro-tasks after a personal response latency,
4. on JOINT tasks: every member contributes, then one member submits on
   behalf of the team (Figure 5's flow),
5. optionally auto-apply the platform's requester suggestions when team
   formation is infeasible (so unattended experiments converge).

Two execution modes share every decision helper:

* **delta mode** (the default) rides the platform's change feeds instead
  of re-scanning the worker × task product each tick.  Interest rolls are
  driven by :class:`~repro.core.platform.RoundDeltas` (newly eligible
  workers wake exactly the pairs whose outcome could change), membership
  answers by ``team.proposed`` events, and micro-task work by a
  ``task.created``-fed addressed index.  Per-tick cost is proportional to
  what changed, not to the population — the property that makes
  10^5–10^6-worker scenario packs tractable.
* **snapshot mode** (``delta=False``) is the original full-scan loop,
  kept as the lockstep oracle: the ``sim-diff`` CI job runs randomized
  scenarios in both modes and requires identical reports and
  byte-identical storage dumps.

Equivalence rests on two facts.  First, every stochastic decision derives
from :func:`repro.util.rng.make_rng` labels — (seed, worker, task, visit)
— so an outcome depends only on *which* rolls happen, never on engine
scan order; both modes consume each roll key at most once and iterate
candidates in sorted order, so the platform-mutation sequences coincide.
Second, delta mode's wake sets always *cover* the pairs snapshot mode
would net-process (over-waking is filtered by the shared status checks;
the danger is only under-waking, guarded by the revisit-boundary full
scan, the platform's ``full_tasks`` re-derive reporting, and self-wakes
on the driver's own declines).

Final micro-task results carry a team-level ``quality`` computed by the
:class:`~repro.sim.outcomes.OutcomeModel`, which then drives affinity
reinforcement and skill estimation — closing the paper's learning loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.relationships import RelationshipStatus
from repro.core.tasks import Task, TaskKind, TaskStatus
from repro.core.teams import TeamStatus
from repro.sim.behavior import BehaviorModel
from repro.sim.outcomes import OutcomeModel
from repro.sim.skill_estimation import BetaSkillEstimator

#: Optional scenario hook: (worker, task) -> result dict or None for default.
AnswerFn = Callable[[Any, Task], dict[str, Any] | None]

#: Interest-roll statuses that never re-roll (worker already committed).
_SETTLED = (
    RelationshipStatus.INTERESTED,
    RelationshipStatus.UNDERTAKES,
    RelationshipStatus.COMPLETED,
)


@dataclass
class SimulationReport:
    """Aggregate outcome of one simulation run."""

    steps: int = 0
    interest_declared: int = 0
    confirmations: int = 0
    declines: int = 0
    micro_completed: int = 0
    contributions: int = 0
    team_results: int = 0
    tasks_expired: int = 0
    relaxations_applied: int = 0
    quiescent: bool = False
    qualities: list[float] = field(default_factory=list)

    @property
    def mean_quality(self) -> float:
        if not self.qualities:
            return 0.0
        return sum(self.qualities) / len(self.qualities)


class SimulationDriver:
    """Drives one platform instance with simulated workers."""

    #: Steps between repeated visits to the user page (a worker who passed
    #: on a task earlier may pick it up on a later visit).  Delta mode
    #: performs its one full interest scan per window at each boundary.
    revisit_period: float = 8.0

    def __init__(
        self,
        platform,
        behavior: BehaviorModel | None = None,
        outcome_model: OutcomeModel | None = None,
        skill_estimator: BetaSkillEstimator | None = None,
        answer_fn: AnswerFn | None = None,
        auto_relax: bool = True,
        seed: int = 0,
        delta: bool = True,
        revisit_period: float | None = None,
    ) -> None:
        self.platform = platform
        self.behavior = behavior or BehaviorModel(seed=seed)
        self.outcomes = outcome_model or OutcomeModel(seed=seed)
        self.skills = skill_estimator or BetaSkillEstimator()
        self.answer_fn = answer_fn
        self.auto_relax = auto_relax
        self.delta = delta
        if revisit_period is not None:
            self.revisit_period = float(revisit_period)
        self.report = SimulationReport()
        #: Wall-clock seconds per tick (for scenario-pack trajectories).
        self.tick_seconds: list[float] = []
        #: Indexes into :attr:`tick_seconds` that were revisit boundaries
        #: (full interest scans) — benches exclude them when comparing
        #: steady-state delta vs snapshot cost, since the boundary scan is
        #: identical work in both modes.
        self.boundary_ticks: list[int] = []
        self._ready_at: dict[tuple[str, str], float] = {}
        self._joint_contributed: dict[str, set[str]] = {}
        self._interest_rolled: set[tuple[str, str, int]] = set()
        self._confirm_rolled: set[tuple[str, str]] = set()
        #: Workers who left the crowd (attrition): they stop browsing,
        #: answering proposals and performing tasks — in both modes.
        self._inactive: set[str] = set()
        self._last_visit: int | None = None
        platform.events.subscribe("task.completed", self._on_completed)
        platform.events.subscribe("task.expired", self._on_expired)
        if delta:
            # -- change-feed state (delta mode only) ----------------------
            #: task -> workers whose interest roll may have a fresh outcome.
            #: Entries persist until consumed while the task is pending.
            self._interest_wake: dict[str, set[str]] = {}
            #: tasks whose whole candidate set must be re-scanned (platform
            #: full re-derives, driver-side declines/dissolutions).
            self._full_scan: set[str] = set()
            #: live team proposals awaiting member answers.
            self._proposed: set[str] = set()
            #: worker -> addressed open micro-task candidates (superset of
            #: the worker page; lazily pruned as tasks close).
            self._addressed: dict[str, set[str]] = {}
            platform.subscribe_round_deltas(self._on_round_deltas)
            platform.events.subscribe("task.created", self._on_created)
            platform.events.subscribe("team.proposed", self._on_team_proposed)
            platform.events.subscribe("task.active", self._on_task_active)
            platform.events.subscribe("team.dissolved", self._on_team_dissolved)
            self._bootstrap_indexes()

    # -- event hooks ----------------------------------------------------------
    def _on_completed(self, event) -> None:
        self.report.team_results += 1
        quality = float(event.payload.get("quality", 1.0))
        self.report.qualities.append(quality)
        team = self.platform.teams.get(event["team_id"])
        project = self.platform.projects.get(event["project_id"])
        skills = tuple(r.skill for r in project.constraints.skills) or ("general",)
        task = self.platform.pool.get(event["task_id"])
        contributions = (task.result or {}).get("contributors")
        for skill in skills:
            self.skills.observe_team_outcome(
                team.members, skill, quality, contributions
            )

    def _on_expired(self, event) -> None:
        self.report.tasks_expired += 1

    def _on_round_deltas(self, deltas) -> None:
        for task_id, workers in deltas.eligible_added.items():
            self._interest_wake.setdefault(task_id, set()).update(workers)
        self._full_scan.update(deltas.full_tasks)

    def _on_created(self, event) -> None:
        task_id = event["task_id"]
        assignee = event.payload.get("assignee")
        if assignee is not None:
            self._addressed.setdefault(assignee, set()).add(task_id)
        if event.payload.get("task_kind") == TaskKind.JOINT.value:
            task = self.platform.pool.get(task_id)
            for member in task.payload.get("addressed_to", ()):
                self._addressed.setdefault(member, set()).add(task_id)

    def _on_team_proposed(self, event) -> None:
        self._proposed.add(event["task_id"])

    def _on_task_active(self, event) -> None:
        self._proposed.discard(event["task_id"])

    def _on_team_dissolved(self, event) -> None:
        # The root task returned to the pending pool; candidates whose roll
        # keys went unconsumed while it was parked must be re-scanned.
        task_id = event["task_id"]
        self._proposed.discard(task_id)
        self._full_scan.add(task_id)

    def _bootstrap_indexes(self) -> None:
        """Seed the delta indexes from current platform state, so a driver
        attached to a warm platform doesn't miss pre-existing work."""
        for task in self.platform.pool.all():
            if not task.is_open:
                continue
            if task.status is TaskStatus.PROPOSED and task.team_id is not None:
                self._proposed.add(task.id)
            if task.assignee is not None:
                self._addressed.setdefault(task.assignee, set()).add(task.id)
            if task.kind is TaskKind.JOINT:
                for member in task.payload.get("addressed_to", ()):
                    self._addressed.setdefault(member, set()).add(task.id)

    # -- attrition -------------------------------------------------------------
    def deactivate_worker(self, worker_id: str) -> None:
        """Model churn: the worker stops acting from the next phase on.

        The platform keeps her registration and relationships (she may
        still be listed as eligible); she simply never rolls again.
        """
        self._inactive.add(worker_id)

    @property
    def inactive_workers(self) -> frozenset[str]:
        return frozenset(self._inactive)

    # -- main loop -----------------------------------------------------------
    def tick(self, dt: float = 1.0) -> None:
        """One platform round plus all four worker phases.

        Scenario packs call this directly so they can interleave fact
        injection, churn and serving traffic between rounds; :meth:`run`
        is the plain repeat-until-quiescent loop on top.
        """
        started = time.perf_counter()
        self.platform.step(dt)
        visit = int(self.platform.now // self.revisit_period)
        boundary = visit != self._last_visit
        if boundary:
            self._last_visit = visit
            self.boundary_ticks.append(len(self.tick_seconds))
            # Roll keys embed the visit number and time only moves forward:
            # keys from earlier visits are never consulted again.
            self._interest_rolled.clear()
        if self.delta:
            self._declare_interests_delta(visit, boundary)
            self._answer_membership_proposals_delta()
            self._perform_micro_tasks_delta()
        else:
            self._declare_interests(visit)
            self._answer_membership_proposals()
            self._perform_micro_tasks()
        if self.auto_relax:
            self._apply_suggestions()
        self.report.steps += 1
        self.tick_seconds.append(time.perf_counter() - started)

    def run(self, max_steps: int = 300, dt: float = 1.0) -> SimulationReport:
        """Run until quiescence or the step budget is exhausted."""
        for _ in range(max_steps):
            self.tick(dt)
            if self._quiet():
                self.report.quiescent = True
                break
        return self.report

    def _quiet(self) -> bool:
        return not self.platform.pool.open_tasks()

    # -- phase 1: interest ------------------------------------------------------
    def _roll_interest(self, task: Task, worker_ids: list[str], visit: int) -> None:
        """Roll the interest decision for each candidate (sorted by caller).

        The status screen makes over-waking harmless: a woken worker whose
        pair cannot act (already interested/undertaking, revoked, declined
        inside the current visit window) is skipped exactly as the full
        scan would skip her.
        """
        ledger = self.platform.ledger
        for worker_id in worker_ids:
            if worker_id in self._inactive:
                continue
            status = ledger.status(worker_id, task.id)
            if status is None or status in _SETTLED:
                continue
            if status is RelationshipStatus.DECLINED and visit == 0:
                continue
            roll_key = (worker_id, task.id, visit)
            if roll_key in self._interest_rolled:
                continue
            self._interest_rolled.add(roll_key)
            worker = self.platform.workers.get(worker_id)
            if self.behavior.wants_task(worker, task, visit):
                self.platform.declare_interest(worker_id, task.id)
                self.report.interest_declared += 1

    def _scan_task_interest(self, task: Task, visit: int) -> None:
        """Full candidate scan for one task (snapshot mode and delta-mode
        boundaries/full re-derives)."""
        candidates = set(self.platform.ledger.eligible_workers(task.id))
        if visit > 0:
            # Declined workers may change their mind on a later visit.
            candidates.update(
                self.platform.ledger.workers_with_status(
                    task.id, RelationshipStatus.DECLINED
                )
            )
        self._roll_interest(task, sorted(candidates), visit)

    def _declare_interests(self, visit: int) -> None:
        for task in self.platform.pool.pending_root_tasks():
            self._scan_task_interest(task, visit)

    def _declare_interests_delta(self, visit: int, boundary: bool) -> None:
        if boundary:
            # Every (worker, task, visit) roll key is fresh: one full scan,
            # identical to snapshot mode's boundary tick, then the wake
            # backlog is moot.
            self._declare_interests(visit)
            self._interest_wake.clear()
            self._full_scan.clear()
            return
        if not self._interest_wake and not self._full_scan:
            return
        pending = {t.id: t for t in self.platform.pool.pending_root_tasks()}
        for task_id in sorted(set(self._interest_wake) | self._full_scan):
            task = pending.get(task_id)
            if task is None:
                # Parked (proposed/active) tasks keep their wakes until
                # they return to the pending pool; closed tasks drop them.
                known = self.platform.pool.maybe(task_id)
                if known is None or not known.is_open:
                    self._interest_wake.pop(task_id, None)
                    self._full_scan.discard(task_id)
                continue
            if task_id in self._full_scan:
                self._full_scan.discard(task_id)
                self._interest_wake.pop(task_id, None)
                self._scan_task_interest(task, visit)
            else:
                woken = self._interest_wake.pop(task_id)
                self._roll_interest(task, sorted(woken), visit)

    # -- phase 2: confirmations -------------------------------------------------
    def _answer_team(self, task: Task) -> None:
        team = self.platform.teams.get(task.team_id)
        if team.status is not TeamStatus.PROPOSED:
            return
        for member in team.members:
            if member in self._inactive:
                continue
            roll_key = (member, team.id)
            if member in team.confirmed or roll_key in self._confirm_rolled:
                continue
            self._confirm_rolled.add(roll_key)
            worker = self.platform.workers.get(member)
            if self.behavior.accepts_membership(worker, task):
                self.platform.confirm_membership(member, task.id)
                self.report.confirmations += 1
            else:
                self.platform.decline_membership(member, task.id)
                self.report.declines += 1
                if self.delta:
                    # The dissolution event already queued a full re-scan;
                    # belt and braces for platforms without the event.
                    self._full_scan.add(task.id)
                break  # the team dissolved; stop processing it

    def _answer_membership_proposals(self) -> None:
        for task in self.platform.pool.by_status(TaskStatus.PROPOSED):
            if task.team_id is None:
                continue
            self._answer_team(task)

    def _answer_membership_proposals_delta(self) -> None:
        for task_id in sorted(self._proposed):
            task = self.platform.pool.maybe(task_id)
            if (
                task is None
                or task.status is not TaskStatus.PROPOSED
                or task.team_id is None
            ):
                self._proposed.discard(task_id)
                continue
            self._answer_team(task)

    # -- phase 3: micro-tasks ---------------------------------------------------
    def _act_on_task(self, worker, task: Task, now: float) -> None:
        ready_key = (worker.id, task.id)
        if ready_key not in self._ready_at:
            delay = self.behavior.response_delay(worker, task)
            self._ready_at[ready_key] = task.created_at + delay
        if now < self._ready_at[ready_key]:
            return
        if task.kind is TaskKind.JOINT:
            self._handle_joint(worker, task)
        else:
            self._submit_micro(worker, task)

    def _perform_micro_tasks(self) -> None:
        now = self.platform.now
        for worker in self.platform.workers.all():
            if worker.id in self._inactive:
                continue
            for task in self.platform.tasks_for_worker(worker.id):
                self._act_on_task(worker, task, now)

    def _is_listed(self, worker_id: str, task: Task) -> bool:
        """Mirror of :meth:`Crowd4U.tasks_for_worker` membership."""
        if task.assignee == worker_id and task.is_open:
            return True
        return (
            task.kind is TaskKind.JOINT
            and task.status is TaskStatus.PENDING
            and worker_id in task.payload.get("addressed_to", ())
        )

    def _perform_micro_tasks_delta(self) -> None:
        now = self.platform.now
        pool = self.platform.pool
        # Single increasing-id pass, like snapshot mode's workers.all()
        # sweep — but only over workers that hold addressed candidates.
        # Submitting can create follow-up tasks for *later* workers (the
        # scheme's next stage); re-selecting the minimum unprocessed key
        # each round picks those up exactly as the full sweep would.
        cursor = ""
        while True:
            remaining = [w for w in self._addressed if w > cursor]
            if not remaining:
                break
            worker_id = min(remaining)
            cursor = worker_id
            task_ids = self._addressed[worker_id]
            if worker_id in self._inactive:
                continue
            worker = self.platform.workers.get(worker_id)
            for task_id in sorted(task_ids):
                task = pool.maybe(task_id)
                if task is None or not task.is_open:
                    task_ids.discard(task_id)
                    continue
                if not self._is_listed(worker_id, task):
                    continue
                self._act_on_task(worker, task, now)
            if not task_ids:
                del self._addressed[worker_id]

    def _submit_micro(self, worker, task: Task) -> None:
        result = None
        if self.answer_fn is not None:
            result = self.answer_fn(worker, task)
        if result is None:
            skill = self._project_skill(task)
            result = self.behavior.produce_result(worker, task, skill)
        if task.kind in (TaskKind.DRAFT, TaskKind.REVIEW, TaskKind.JOINT):
            result.setdefault("quality", self._team_quality(task))
        self.platform.submit_micro_result(task.id, worker.id, result)
        self.report.micro_completed += 1

    def _handle_joint(self, worker, task: Task) -> None:
        members = list(task.payload.get("addressed_to", ()))
        contributed = self._joint_contributed.setdefault(task.id, set())
        if worker.id not in contributed:
            content = None
            if self.answer_fn is not None:
                answer = self.answer_fn(worker, task)
                if answer is not None:
                    content = str(answer.get("text", ""))
            if content is None:
                content = f"[{worker.id}] joint contribution"
            self.platform.contribute(task.parent_task_id, worker.id, content)
            contributed.add(worker.id)
            self.report.contributions += 1
        if set(members) <= contributed:
            # Most reliable member submits on behalf of the team.
            submitter = max(
                members,
                key=lambda wid: self.platform.workers.get(wid).factors.reliability,
            )
            result: dict[str, Any] = {"quality": self._team_quality(task)}
            self.platform.submit_micro_result(task.id, submitter, result)
            self.report.micro_completed += 1

    def _project_skill(self, task: Task) -> str | None:
        project = self.platform.projects.get(task.project_id)
        skills = project.constraints.skills
        return skills[0].skill if skills else None

    def _team_quality(self, task: Task) -> float:
        """Team outcome quality from the outcome model."""
        if task.team_id is None:
            return 0.5
        team = self.platform.teams.get(task.team_id.split(":")[0])
        project = self.platform.projects.get(task.project_id)
        workers = [self.platform.workers.get(wid) for wid in team.members]
        return self.outcomes.quality(
            workers=workers,
            affinity=self.platform.affinity,
            skills=tuple(r.skill for r in project.constraints.skills),
            critical_mass=project.constraints.critical_mass,
            scheme=project.scheme.value,
        )

    # -- phase 4: requester auto-relaxation ---------------------------------------
    def _apply_suggestions(self) -> None:
        for project in self.platform.projects.active():
            suggestions = self.platform.suggestions_for(project.id)
            for suggestion in suggestions:
                constraints = suggestion.best_constraints()
                if constraints is not None:
                    self.platform.update_constraints(project.id, constraints)
                    self.report.relaxations_applied += 1
                    break
