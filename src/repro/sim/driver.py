"""The simulation event loop.

The driver plays every worker of the platform through the *public* worker
API — the same calls a browser session would make — until the platform is
quiescent:

1. browse the user page: declare interest in eligible tasks,
2. react to proposed team memberships: undertake or decline,
3. perform addressed micro-tasks after a personal response latency,
4. on JOINT tasks: every member contributes, then one member submits on
   behalf of the team (Figure 5's flow),
5. optionally auto-apply the platform's requester suggestions when team
   formation is infeasible (so unattended experiments converge).

Final micro-task results carry a team-level ``quality`` computed by the
:class:`~repro.sim.outcomes.OutcomeModel`, which then drives affinity
reinforcement and skill estimation — closing the paper's learning loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.tasks import Task, TaskKind, TaskStatus
from repro.core.teams import TeamStatus
from repro.sim.behavior import BehaviorModel
from repro.sim.outcomes import OutcomeModel
from repro.sim.skill_estimation import BetaSkillEstimator

#: Optional scenario hook: (worker, task) -> result dict or None for default.
AnswerFn = Callable[[Any, Task], dict[str, Any] | None]


@dataclass
class SimulationReport:
    """Aggregate outcome of one simulation run."""

    steps: int = 0
    interest_declared: int = 0
    confirmations: int = 0
    declines: int = 0
    micro_completed: int = 0
    contributions: int = 0
    team_results: int = 0
    tasks_expired: int = 0
    relaxations_applied: int = 0
    quiescent: bool = False
    qualities: list[float] = field(default_factory=list)

    @property
    def mean_quality(self) -> float:
        if not self.qualities:
            return 0.0
        return sum(self.qualities) / len(self.qualities)


class SimulationDriver:
    """Drives one platform instance with simulated workers."""

    def __init__(
        self,
        platform,
        behavior: BehaviorModel | None = None,
        outcome_model: OutcomeModel | None = None,
        skill_estimator: BetaSkillEstimator | None = None,
        answer_fn: AnswerFn | None = None,
        auto_relax: bool = True,
        seed: int = 0,
    ) -> None:
        self.platform = platform
        self.behavior = behavior or BehaviorModel(seed=seed)
        self.outcomes = outcome_model or OutcomeModel(seed=seed)
        self.skills = skill_estimator or BetaSkillEstimator()
        self.answer_fn = answer_fn
        self.auto_relax = auto_relax
        self.report = SimulationReport()
        self._ready_at: dict[tuple[str, str], float] = {}
        self._joint_contributed: dict[str, set[str]] = {}
        self._interest_rolled: set[tuple[str, str]] = set()
        self._confirm_rolled: set[tuple[str, str]] = set()
        platform.events.subscribe("task.completed", self._on_completed)
        platform.events.subscribe("task.expired", self._on_expired)

    # -- event hooks ----------------------------------------------------------
    def _on_completed(self, event) -> None:
        self.report.team_results += 1
        quality = float(event.payload.get("quality", 1.0))
        self.report.qualities.append(quality)
        team = self.platform.teams.get(event["team_id"])
        project = self.platform.projects.get(event["project_id"])
        skills = tuple(r.skill for r in project.constraints.skills) or ("general",)
        task = self.platform.pool.get(event["task_id"])
        contributions = (task.result or {}).get("contributors")
        for skill in skills:
            self.skills.observe_team_outcome(
                team.members, skill, quality, contributions
            )

    def _on_expired(self, event) -> None:
        self.report.tasks_expired += 1

    # -- main loop -----------------------------------------------------------
    def run(self, max_steps: int = 300, dt: float = 1.0) -> SimulationReport:
        """Run until quiescence or the step budget is exhausted."""
        for _ in range(max_steps):
            self.platform.step(dt)
            self._declare_interests()
            self._answer_membership_proposals()
            self._perform_micro_tasks()
            if self.auto_relax:
                self._apply_suggestions()
            self.report.steps += 1
            if self._quiet():
                self.report.quiescent = True
                break
        return self.report

    def _quiet(self) -> bool:
        return not self.platform.pool.open_tasks()

    # -- phase 1: interest ------------------------------------------------------
    #: Steps between repeated visits to the user page (a worker who passed
    #: on a task earlier may pick it up on a later visit).
    revisit_period: float = 8.0

    def _declare_interests(self) -> None:
        from repro.core.relationships import RelationshipStatus

        visit = int(self.platform.now // self.revisit_period)
        for task in self.platform.pool.pending_root_tasks():
            candidates = set(self.platform.ledger.eligible_workers(task.id))
            if visit > 0:
                # Declined workers may change their mind on a later visit.
                candidates.update(
                    self.platform.ledger.workers_with_status(
                        task.id, RelationshipStatus.DECLINED
                    )
                )
            for worker_id in sorted(candidates):
                status = self.platform.ledger.status(worker_id, task.id)
                if status in (
                    RelationshipStatus.INTERESTED,
                    RelationshipStatus.UNDERTAKES,
                    RelationshipStatus.COMPLETED,
                ):
                    continue
                roll_key = (worker_id, task.id, visit)
                if roll_key in self._interest_rolled:
                    continue
                self._interest_rolled.add(roll_key)
                worker = self.platform.workers.get(worker_id)
                if self.behavior.wants_task(worker, task, visit):
                    self.platform.declare_interest(worker_id, task.id)
                    self.report.interest_declared += 1

    # -- phase 2: confirmations -------------------------------------------------
    def _answer_membership_proposals(self) -> None:
        for task in self.platform.pool.by_status(TaskStatus.PROPOSED):
            if task.team_id is None:
                continue
            team = self.platform.teams.get(task.team_id)
            if team.status is not TeamStatus.PROPOSED:
                continue
            for member in team.members:
                roll_key = (member, team.id)
                if member in team.confirmed or roll_key in self._confirm_rolled:
                    continue
                self._confirm_rolled.add(roll_key)
                worker = self.platform.workers.get(member)
                if self.behavior.accepts_membership(worker, task):
                    self.platform.confirm_membership(member, task.id)
                    self.report.confirmations += 1
                else:
                    self.platform.decline_membership(member, task.id)
                    self.report.declines += 1
                    break  # the team dissolved; stop processing it

    # -- phase 3: micro-tasks ---------------------------------------------------
    def _perform_micro_tasks(self) -> None:
        now = self.platform.now
        for worker in self.platform.workers.all():
            for task in self.platform.tasks_for_worker(worker.id):
                ready_key = (worker.id, task.id)
                if ready_key not in self._ready_at:
                    delay = self.behavior.response_delay(worker, task)
                    self._ready_at[ready_key] = task.created_at + delay
                if now < self._ready_at[ready_key]:
                    continue
                if task.kind is TaskKind.JOINT:
                    self._handle_joint(worker, task)
                else:
                    self._submit_micro(worker, task)

    def _submit_micro(self, worker, task: Task) -> None:
        result = None
        if self.answer_fn is not None:
            result = self.answer_fn(worker, task)
        if result is None:
            skill = self._project_skill(task)
            result = self.behavior.produce_result(worker, task, skill)
        if task.kind in (TaskKind.DRAFT, TaskKind.REVIEW, TaskKind.JOINT):
            result.setdefault("quality", self._team_quality(task))
        self.platform.submit_micro_result(task.id, worker.id, result)
        self.report.micro_completed += 1

    def _handle_joint(self, worker, task: Task) -> None:
        members = list(task.payload.get("addressed_to", ()))
        contributed = self._joint_contributed.setdefault(task.id, set())
        if worker.id not in contributed:
            content = None
            if self.answer_fn is not None:
                answer = self.answer_fn(worker, task)
                if answer is not None:
                    content = str(answer.get("text", ""))
            if content is None:
                content = f"[{worker.id}] joint contribution"
            self.platform.contribute(task.parent_task_id, worker.id, content)
            contributed.add(worker.id)
            self.report.contributions += 1
        if set(members) <= contributed:
            # Most reliable member submits on behalf of the team.
            submitter = max(
                members,
                key=lambda wid: self.platform.workers.get(wid).factors.reliability,
            )
            result: dict[str, Any] = {"quality": self._team_quality(task)}
            self.platform.submit_micro_result(task.id, submitter, result)
            self.report.micro_completed += 1

    def _project_skill(self, task: Task) -> str | None:
        project = self.platform.projects.get(task.project_id)
        skills = project.constraints.skills
        return skills[0].skill if skills else None

    def _team_quality(self, task: Task) -> float:
        """Team outcome quality from the outcome model."""
        if task.team_id is None:
            return 0.5
        team = self.platform.teams.get(task.team_id.split(":")[0])
        project = self.platform.projects.get(task.project_id)
        workers = [self.platform.workers.get(wid) for wid in team.members]
        return self.outcomes.quality(
            workers=workers,
            affinity=self.platform.affinity,
            skills=tuple(r.skill for r in project.constraints.skills),
            critical_mass=project.constraints.critical_mass,
            scheme=project.scheme.value,
        )

    # -- phase 4: requester auto-relaxation ---------------------------------------
    def _apply_suggestions(self) -> None:
        for project in self.platform.projects.active():
            suggestions = self.platform.suggestions_for(project.id)
            for suggestion in suggestions:
                constraints = suggestion.best_constraints()
                if constraints is not None:
                    self.platform.update_constraints(project.id, constraints)
                    self.report.relaxations_applied += 1
                    break
