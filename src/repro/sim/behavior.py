"""Per-worker behaviour models.

Every decision a live volunteer makes on the platform — *shall I declare
interest? shall I accept the proposed team? how long until I respond?
what do I answer?* — gets a seeded stochastic counterpart here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.tasks import Task, TaskKind
from repro.core.workers import Worker
from repro.util.rng import make_rng
from repro.util.text import clamp


@dataclass(frozen=True)
class BehaviorConfig:
    """Crowd-level behaviour knobs."""

    #: Base probability of declaring interest in an eligible task per visit.
    base_interest: float = 0.55
    #: Extra interest when the task matches the worker's best skill.
    skill_interest_boost: float = 0.3
    #: Probability of confirming a proposed membership (scaled by reliability).
    accept_rate: float = 0.9
    #: Mean simulated steps before a worker acts on a micro-task.
    mean_latency: float = 1.5
    #: Pareto shape for a per-draw heavy-tail latency multiplier; 0 keeps
    #: the pure exponential (historical behaviour).  Smaller positive
    #: values mean heavier tails — real crowds have a skewed minority of
    #: very slow responders.
    latency_skew: float = 0.0
    #: Probability a worker improves (rather than rubber-stamps) in reviews.
    improve_rate: float = 0.8


class BehaviorModel:
    """Seeded behaviour: all draws derive from (seed, worker, task, kind)."""

    def __init__(self, config: BehaviorConfig | None = None, seed: int = 0) -> None:
        self.config = config or BehaviorConfig()
        self.seed = seed

    # -- recruitment decisions ---------------------------------------------
    def wants_task(self, worker: Worker, task: Task, visit: int = 0) -> bool:
        """Does the worker declare interest when she sees the task?

        ``visit`` distinguishes repeated visits to the user page: a worker
        who passed on a task earlier may pick it up on a later visit.
        """
        probability = self.config.base_interest
        best_skill = max(worker.factors.skills.values(), default=0.0)
        probability += self.config.skill_interest_boost * best_skill
        rng = make_rng(self.seed, "interest", worker.id, task.id, visit)
        return rng.random() < clamp(probability, 0.0, 1.0)

    def accepts_membership(self, worker: Worker, task: Task) -> bool:
        """Does a proposed member undertake the task?"""
        probability = self.config.accept_rate * worker.factors.reliability
        rng = make_rng(self.seed, "accept", worker.id, task.id)
        return rng.random() < clamp(probability, 0.0, 1.0)

    def response_delay(self, worker: Worker, task: Task) -> float:
        """Steps before the worker acts on an addressed micro-task."""
        rng = make_rng(self.seed, "latency", worker.id, task.id)
        delay = rng.expovariate(1.0 / max(self.config.mean_latency, 1e-9))
        if self.config.latency_skew > 0:
            # Heavy-tailed multiplier >= 1: most workers are unaffected, a
            # Zipf-like minority responds much later.
            delay *= rng.paretovariate(self.config.latency_skew)
        return delay

    # -- task answers -----------------------------------------------------------
    def answer_quality(self, worker: Worker, skill: str | None) -> float:
        """The worker's personal contribution quality for one micro-task."""
        level = (
            worker.factors.skill_level(skill)
            if skill
            else worker.factors.reliability
        )
        rng = make_rng(self.seed, "quality", worker.id, skill or "-")
        return clamp(rng.gauss(level, 0.08), 0.0, 1.0)

    def produce_result(
        self, worker: Worker, task: Task, skill: str | None = None
    ) -> dict[str, Any]:
        """Generate a generic micro-task result payload.

        Scenario drivers may override per-kind answer functions; this
        default produces plausible text/choice answers with a quality
        signal derived from the worker's skill.
        """
        rng = make_rng(self.seed, "answer", worker.id, task.id)
        quality = self.answer_quality(worker, skill)
        if task.kind is TaskKind.SOLICIT_SNS:
            return {"sns_id": worker.factors.sns_id or f"{worker.id}@sns"}
        if task.choices:
            # Pick the "first" choice with probability = quality (models a
            # correct yes/accept judgement), else a random other choice.
            if rng.random() < quality or len(task.choices) == 1:
                answer = task.choices[0]
            else:
                answer = rng.choice(task.choices[1:])
            return {"answer": answer, "quality": quality}
        previous = str(task.payload.get("previous_text", ""))
        if previous and rng.random() < self.config.improve_rate:
            text = f"{previous} [improved by {worker.id}]"
        elif previous:
            text = previous
        else:
            text = f"[{worker.id}] work on: {task.instruction[:40]}"
        return {"text": text, "quality": quality}
