"""Runtime configuration for platform, processor and server construction.

:class:`RuntimeConfig` gathers every knob that used to travel as separate
keyword arguments on ``Crowd4U(...)`` and ``CyLogProcessor(...)`` —
storage backend, sharding/executor layout, the exchange operator, the
support-index memory budget and the serving front-end — into one
validated value object:

>>> from repro import Crowd4U, RuntimeConfig
>>> platform = Crowd4U(config=RuntimeConfig(shards=4, executor="thread"))

``config=`` is the only spelling: the per-knob keywords deprecated in
the PR-6 redesign have been removed.  The serving slice nests as a
frozen :class:`~repro.serving.config.ServingConfig`
(``RuntimeConfig(serving=ServingConfig(port=8080))``), and
:meth:`RuntimeConfig.build_server` is the one way to construct a
:class:`~repro.serving.server.PlatformServer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.serving.config import ServingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cylog.sharding import ShardConfig
    from repro.serving.server import PlatformServer
    from repro.storage.database import Database

_BACKENDS = ("memory", "wal", "sqlite")
_EXECUTORS = ("serial", "thread", "process")
_REPLICA_MODES = ("full", "pruned", "shared")


@dataclass(frozen=True)
class RuntimeConfig:
    """One value object describing how a deployment runs.

    Storage: ``backend`` picks the durability layer (``"memory"``,
    ``"wal"`` or ``"sqlite"``; see :mod:`repro.storage.backends`) and
    ``path`` the WAL directory / SQLite file — required for the durable
    backends.  ``backend_options`` is forwarded to the backend
    constructor (e.g. ``{"compact_every": 1000}``).

    Evaluation: ``shards`` / ``executor`` / ``max_workers`` /
    ``exchange`` configure the CyLog engine exactly like
    :class:`~repro.cylog.sharding.ShardConfig`.  ``replica_mode``
    selects the process-worker replica layout — ``"full"`` (every worker
    holds a complete replica store), ``"pruned"`` (each worker holds only
    the (relation, shard) partitions its tasks probe, backfilled lazily)
    or ``"shared"`` (pruned subscriptions with baseline partitions mapped
    from ``multiprocessing.shared_memory`` instead of copied through
    pipes).  All three are bit-identical; the knob trades replica memory
    and sync bytes only.  Ignored unless ``executor="process"``.

    Memory: ``support_budget`` caps how many support entries the
    incremental engine's provenance index may hold; past the cap the
    engine degrades affected strata to recompute-on-removal instead of
    growing without bound (``None`` means unbounded).

    Serving: ``serving`` is the nested frozen
    :class:`~repro.serving.config.ServingConfig` — bind address,
    admission batch window, queue depth and backpressure thresholds for
    the HTTP front-end built by :meth:`build_server`.
    """

    backend: str = "memory"
    path: str | Path | None = None
    backend_options: dict[str, Any] = field(default_factory=dict)
    shards: int = 1
    executor: str = "serial"
    max_workers: int | None = None
    exchange: bool = True
    replica_mode: str = "full"
    support_budget: int | None = None
    serving: ServingConfig = field(default_factory=ServingConfig)

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.backend != "memory" and self.path is None:
            raise ValueError(f"backend {self.backend!r} requires a path")
        if self.backend == "memory" and self.path is not None:
            raise ValueError("the memory backend takes no path")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {_EXECUTORS}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.replica_mode not in _REPLICA_MODES:
            raise ValueError(
                f"unknown replica_mode {self.replica_mode!r}; expected one of "
                f"{_REPLICA_MODES}"
            )
        if self.support_budget is not None and self.support_budget < 0:
            raise ValueError(
                f"support_budget must be >= 0 or None, got {self.support_budget}"
            )
        if not isinstance(self.serving, ServingConfig):
            raise TypeError(
                f"serving must be a ServingConfig, got {type(self.serving).__name__}"
            )

    def with_changes(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)

    def to_shard_config(self) -> "ShardConfig":
        """The engine-facing slice of this configuration."""
        from repro.cylog.sharding import ShardConfig

        return ShardConfig(
            shards=self.shards,
            executor=self.executor,
            max_workers=self.max_workers,
            exchange=self.exchange,
            replica_mode=self.replica_mode,
        )

    def build_database(self) -> "Database":
        """Open the database this configuration describes."""
        from repro.storage.backends import open_database

        if self.backend == "memory":
            return open_database(backend="memory", **self.backend_options)
        return open_database(
            self.path, backend=self.backend, **self.backend_options
        )

    def build_server(self, platform=None, **server_options: Any) -> "PlatformServer":
        """The one way to get a :class:`~repro.serving.server.PlatformServer`.

        Builds a :class:`~repro.core.platform.Crowd4U` from this
        configuration when ``platform`` is not supplied; the server's
        knobs come from the nested :attr:`serving` slice.
        ``server_options`` are forwarded to the server constructor
        (e.g. ``record_journal=True`` for the serving-diff oracle).
        """
        from repro.serving.server import PlatformServer

        if platform is None:
            from repro.core.platform import Crowd4U

            platform = Crowd4U(config=self)
        return PlatformServer(platform, self.serving, **server_options)
