"""Runtime configuration for platform and processor construction.

:class:`RuntimeConfig` gathers every knob that used to travel as separate
keyword arguments on ``Crowd4U(...)`` and ``CyLogProcessor(...)`` —
storage backend, sharding/executor layout, the exchange operator and the
support-index memory budget — into one validated value object:

>>> from repro import Crowd4U, RuntimeConfig
>>> platform = Crowd4U(config=RuntimeConfig(shards=4, executor="thread"))

The old per-knob keywords still work but emit :class:`DeprecationWarning`;
mixing them with ``config=`` is an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cylog.sharding import ShardConfig
    from repro.storage.database import Database

_BACKENDS = ("memory", "wal", "sqlite")
_EXECUTORS = ("serial", "thread", "process")
_REPLICA_MODES = ("full", "pruned", "shared")


@dataclass(frozen=True)
class RuntimeConfig:
    """One value object describing how a deployment runs.

    Storage: ``backend`` picks the durability layer (``"memory"``,
    ``"wal"`` or ``"sqlite"``; see :mod:`repro.storage.backends`) and
    ``path`` the WAL directory / SQLite file — required for the durable
    backends.  ``backend_options`` is forwarded to the backend
    constructor (e.g. ``{"compact_every": 1000}``).

    Evaluation: ``shards`` / ``executor`` / ``max_workers`` /
    ``exchange`` configure the CyLog engine exactly like
    :class:`~repro.cylog.sharding.ShardConfig`.  ``replica_mode``
    selects the process-worker replica layout — ``"full"`` (every worker
    holds a complete replica store), ``"pruned"`` (each worker holds only
    the (relation, shard) partitions its tasks probe, backfilled lazily)
    or ``"shared"`` (pruned subscriptions with baseline partitions mapped
    from ``multiprocessing.shared_memory`` instead of copied through
    pipes).  All three are bit-identical; the knob trades replica memory
    and sync bytes only.  Ignored unless ``executor="process"``.

    Memory: ``support_budget`` caps how many support entries the
    incremental engine's provenance index may hold; past the cap the
    engine degrades affected strata to recompute-on-removal instead of
    growing without bound (``None`` means unbounded).
    """

    backend: str = "memory"
    path: str | Path | None = None
    backend_options: dict[str, Any] = field(default_factory=dict)
    shards: int = 1
    executor: str = "serial"
    max_workers: int | None = None
    exchange: bool = True
    replica_mode: str = "full"
    support_budget: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.backend != "memory" and self.path is None:
            raise ValueError(f"backend {self.backend!r} requires a path")
        if self.backend == "memory" and self.path is not None:
            raise ValueError("the memory backend takes no path")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {_EXECUTORS}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.replica_mode not in _REPLICA_MODES:
            raise ValueError(
                f"unknown replica_mode {self.replica_mode!r}; expected one of "
                f"{_REPLICA_MODES}"
            )
        if self.support_budget is not None and self.support_budget < 0:
            raise ValueError(
                f"support_budget must be >= 0 or None, got {self.support_budget}"
            )

    def with_changes(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)

    def to_shard_config(self) -> "ShardConfig":
        """The engine-facing slice of this configuration."""
        from repro.cylog.sharding import ShardConfig

        return ShardConfig(
            shards=self.shards,
            executor=self.executor,
            max_workers=self.max_workers,
            exchange=self.exchange,
            replica_mode=self.replica_mode,
        )

    def build_database(self) -> "Database":
        """Open the database this configuration describes."""
        from repro.storage.backends import open_database

        if self.backend == "memory":
            return open_database(backend="memory", **self.backend_options)
        return open_database(
            self.path, backend=self.backend, **self.backend_options
        )
