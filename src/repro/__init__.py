"""repro — reproduction of *Collaborative Crowdsourcing with Crowd4U*
(Ikeda et al., PVLDB 9(13), 2016).

Public API tour
---------------

>>> from repro import Crowd4U, HumanFactors, TeamConstraints
>>> platform = Crowd4U(seed=7)

The package layout mirrors the paper's architecture (Figure 2):

* :mod:`repro.cylog` — the CyLog language processor (declarative project
  descriptions with human-evaluated *open* predicates),
* :mod:`repro.core` — worker manager, affinity matrix, task pool,
  Eligible/InterestedIn/Undertakes ledger, team-formation algorithms,
  collaboration schemes and the :class:`~repro.core.platform.Crowd4U`
  facade,
* :mod:`repro.forms` — admin / worker / task HTML pages (Figures 3–5) and
  the spreadsheet→CyLog requester tools,
* :mod:`repro.sim` — the simulated volunteer crowd,
* :mod:`repro.apps` — the three demo scenarios (§2.5),
* :mod:`repro.storage` — the embedded relational engine underneath it all,
* :mod:`repro.serving` — the asyncio HTTP front-end with admission
  batching (cache-fed reads, queue-coalesced writes, backpressure);
  configure through ``RuntimeConfig(serving=ServingConfig(...))`` and
  build with :meth:`RuntimeConfig.build_server`.
"""

from repro.config import RuntimeConfig
from repro.serving import ServingConfig
from repro.core import (
    AffinityMatrix,
    Crowd4U,
    HumanFactors,
    SkillRequirement,
    TeamConstraints,
    Worker,
)
from repro.core.projects import SchemeKind
from repro.cylog import CyLogProcessor, parse_program
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AffinityMatrix",
    "Crowd4U",
    "CyLogProcessor",
    "HumanFactors",
    "ReproError",
    "RuntimeConfig",
    "SchemeKind",
    "ServingConfig",
    "SkillRequirement",
    "TeamConstraints",
    "Worker",
    "__version__",
    "parse_program",
]
