"""Cross-run incremental maintenance: deltas, support counts, retraction.

Three cooperating pieces let :class:`~repro.cylog.engine.SemiNaiveEngine`
keep its materialisations *between* ``run()`` calls and propagate only what
changed:

* :class:`DeltaLedger` — net per-predicate change sets.  Used for the
  pending base-fact queue (additions *and* retractions), for the per-run
  change report surfaced through ``EvaluationResult.added/removed``, and by
  the processor to accumulate deltas across runs until the platform drains
  them.
* :class:`SupportIndex` — provenance-based support counting.  Every
  derivation found during evaluation is recorded as a *support*: the rule
  that fired plus the positive body rows it consumed (``None`` marks
  positions hidden behind anonymous variables).  A reverse index from each
  body row to the supports it participates in makes deletion a lookup, not
  a recomputation: retracting a tuple drops exactly the derivations that
  used it, and a derived tuple dies only when its support count reaches
  zero.
* :class:`RetractionScheduler` — the per-stratum deletion cascade.  For
  strata whose dependency graph is acyclic, pure support counting is exact.
  Inside recursive strata counting alone is unsound (cyclic derivations can
  keep each other alive), so the scheduler falls back to the classic
  DRed treatment: tuples of recursive predicates whose only remaining
  supports run through the recursive component are *over-deleted* and
  queued for the engine's re-derivation phase, which restores everything
  still derivable from the surviving facts.

Sharding and parallelism (PR 4) extend the support machinery two ways:
:class:`ShardedSupportIndex` partitions the wildcard reverse index by the
dependency row's key-prefix shard, so a deletion cascade scans only the
patterns that could possibly match the retracted row (1/N of them) instead
of every anonymous-variable pattern of the predicate; and every index
accepts an optional lock, so independent strata evaluated on worker
threads can record derivations into the shared index safely
(:meth:`SupportIndex.merge_from` is the scratch-index alternative for
executors that cannot share memory).
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, ContextManager, Iterable, Mapping

from repro.cylog.indexes import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.cylog.engine import EngineStats, RelationStore

Tuple_ = tuple[Any, ...]
#: One positive-body dependency: predicate plus the consumed row, with
#: ``None`` at positions the rule matched through an anonymous variable.
Dep = tuple[str, Tuple_]
#: Identity of one derivation: the compiled-rule index plus its positive
#: body rows.  Aggregate rules use an empty dependency tuple — their
#: supports are reconciled by recompute-and-diff, not by row tracking.
SupportKey = tuple[int, tuple[Dep, ...]]
#: A support occurrence as stored in the reverse index.
SupportRef = tuple[str, Tuple_, SupportKey]


class DeltaLedger:
    """Net per-predicate added/removed tuple sets.

    ``add`` and ``remove`` cancel each other, so after any sequence of
    operations the ledger holds the *net* difference against the state it
    started from — exactly what an incremental consumer needs.
    """

    __slots__ = ("_added", "_removed")

    def __init__(self) -> None:
        self._added: dict[str, set[Tuple_]] = {}
        self._removed: dict[str, set[Tuple_]] = {}

    def add(self, predicate: str, row: Tuple_) -> None:
        removed = self._removed.get(predicate)
        if removed is not None and row in removed:
            removed.discard(row)
            if not removed:
                del self._removed[predicate]
            return
        self._added.setdefault(predicate, set()).add(row)

    def remove(self, predicate: str, row: Tuple_) -> None:
        added = self._added.get(predicate)
        if added is not None and row in added:
            added.discard(row)
            if not added:
                del self._added[predicate]
            return
        self._removed.setdefault(predicate, set()).add(row)

    def added(self, predicate: str) -> set[Tuple_]:
        return self._added.get(predicate, set())

    def removed(self, predicate: str) -> set[Tuple_]:
        return self._removed.get(predicate, set())

    def merge(self, other: "DeltaLedger") -> None:
        """Fold ``other`` (a later change set) into this ledger."""
        for predicate, rows in other._added.items():
            for row in rows:
                self.add(predicate, row)
        for predicate, rows in other._removed.items():
            for row in rows:
                self.remove(predicate, row)

    def predicates(self) -> list[str]:
        return sorted(set(self._added) | set(self._removed))

    def clear(self) -> None:
        self._added.clear()
        self._removed.clear()

    def as_mappings(self) -> tuple[dict[str, frozenset], dict[str, frozenset]]:
        """Immutable (added, removed) views for an ``EvaluationResult``."""
        return (
            {pred: frozenset(rows) for pred, rows in self._added.items() if rows},
            {pred: frozenset(rows) for pred, rows in self._removed.items() if rows},
        )

    def __bool__(self) -> bool:
        return bool(self._added) or bool(self._removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        added = sum(len(r) for r in self._added.values())
        removed = sum(len(r) for r in self._removed.values())
        return f"<delta ledger +{added}/-{removed}>"


def _is_wild(dep_row: Tuple_) -> bool:
    return any(value is None for value in dep_row)


def _strict_eq(a: Any, b: Any) -> bool:
    """Equality that keeps ``True`` and ``1`` apart, like the join layer's
    ``_bind_atom`` (hash indexes conflate them, so set/index hits must be
    re-filtered)."""
    return a == b and isinstance(a, bool) == isinstance(b, bool)


def _matches(pattern: Tuple_, row: Tuple_) -> bool:
    return all(p is None or _strict_eq(p, value) for p, value in zip(pattern, row))


class SupportIndex:
    """Derivation provenance: tuple -> supports, body row -> dependents.

    ``add`` records one derivation of a head tuple; ``dependents`` answers
    "which derivations consumed this row?" so a deletion can cascade in time
    proportional to the affected provenance, not the database.  Anonymous
    variables leave ``None`` holes in the recorded body row; those supports
    are indexed per predicate and matched by pattern on deletion (the engine
    re-checks whether *another* row still satisfies the hole before the
    support is dropped).

    ``budget`` caps the number of supports held (``None`` = unbounded).
    The cap is *admission-based*: once full, new derivations are not
    recorded — ``evicted`` counts them — and the head predicate is marked
    *degraded*.  Dropping provenance can only make a head tuple wrongly
    **survive** a deletion cascade (never wrongly die), so the engine
    compensates by recomputing degraded strata whenever removal work
    reaches them (see ``SemiNaiveEngine._recompute_stratum``); pure
    additions never need provenance and stay incremental.
    """

    def __init__(
        self, lock: ContextManager | None = None, budget: int | None = None
    ) -> None:
        #: (pred, row) -> its support keys.
        self._supports: dict[tuple[str, Tuple_], set[SupportKey]] = {}
        #: pred -> exact body row -> supports consuming it.
        self._exact: dict[str, dict[Tuple_, set[SupportRef]]] = {}
        #: pred -> wildcard pattern -> supports consuming a matching row.
        self._wild: dict[str, dict[Tuple_, set[SupportRef]]] = {}
        #: Serialises mutation when strata record/drop supports from worker
        #: threads; the serial engine passes nothing and pays nothing.
        self._lock: ContextManager = lock if lock is not None else nullcontext()
        self.budget = budget
        self._size = 0
        #: Derivations refused because the index was at budget.
        self.evicted = 0
        #: Head predicates with incomplete provenance.
        self._degraded: set[str] = set()

    def __len__(self) -> int:
        return self._size

    def degraded_any(self, predicates: Iterable[str]) -> bool:
        """Does any of ``predicates`` have incomplete provenance?"""
        return not self._degraded.isdisjoint(predicates)

    def clear_degraded(self, predicates: Iterable[str]) -> None:
        """The engine recomputed these heads from scratch; their provenance
        is whole again (until the budget refuses another record)."""
        self._degraded.difference_update(predicates)

    def add(self, predicate: str, row: Tuple_, key: SupportKey) -> bool:
        """Record one derivation; returns True when it was not yet known.

        At budget the derivation is refused (and the head predicate marked
        degraded) instead of recorded.
        """
        with self._lock:
            entry = self._supports.setdefault((predicate, row), set())
            if key in entry:
                return False
            if self.budget is not None and self._size >= self.budget:
                if not entry:
                    del self._supports[(predicate, row)]
                self.evicted += 1
                self._degraded.add(predicate)
                return False
            entry.add(key)
            self._size += 1
            ref: SupportRef = (predicate, row, key)
            for dep_pred, dep_row in key[1]:
                if _is_wild(dep_row):
                    self._wild_add(dep_pred, dep_row, ref)
                else:
                    self._exact.setdefault(dep_pred, {}).setdefault(
                        dep_row, set()
                    ).add(ref)
            return True

    def merge_from(self, other: "SupportIndex") -> int:
        """Fold every derivation recorded in ``other`` into this index.

        Folding is a set union, so merge order cannot change the result;
        returns how many supports were new.  The engine currently records
        supports from worker tasks directly into one lock-guarded index —
        this is the alternative strategy (scratch index per task, folded
        at merge time) kept for executors that cannot share the index,
        e.g. the process-based executors on the roadmap.
        """
        added = 0
        for (predicate, row), keys in other._supports.items():
            for key in keys:
                if self.add(predicate, row, key):
                    added += 1
        return added

    def count(self, predicate: str, row: Tuple_) -> int:
        return len(self._supports.get((predicate, row), ()))

    def supports(self, predicate: str, row: Tuple_) -> frozenset:
        return frozenset(self._supports.get((predicate, row), ()))

    def drop(self, predicate: str, row: Tuple_, key: SupportKey) -> int:
        """Remove one support if present; returns the remaining count."""
        with self._lock:
            entry = self._supports.get((predicate, row))
            if entry is None or key not in entry:
                return len(entry) if entry is not None else 0
            entry.discard(key)
            self._size -= 1
            self._unregister((predicate, row, key))
            if not entry:
                del self._supports[(predicate, row)]
                return 0
            return len(entry)

    def discard_tuple(self, predicate: str, row: Tuple_) -> None:
        """The tuple left the store: forget every derivation *of* it.

        Supports it participates in (as a body row of other derivations)
        are untouched — the deletion cascade drops those explicitly.
        """
        with self._lock:
            entry = self._supports.pop((predicate, row), None)
            if not entry:
                return
            self._size -= len(entry)
            for key in entry:
                self._unregister((predicate, row, key))

    def _unregister(self, ref: SupportRef) -> None:
        for dep_pred, dep_row in ref[2][1]:
            if _is_wild(dep_row):
                self._wild_discard(dep_pred, dep_row, ref)
                continue
            per_pred = self._exact.get(dep_pred)
            if per_pred is None:
                continue
            refs = per_pred.get(dep_row)
            if refs is None:
                continue
            refs.discard(ref)
            if not refs:
                del per_pred[dep_row]
                if not per_pred:
                    del self._exact[dep_pred]

    # -- wildcard reverse index (overridden by the sharded variant) --------
    def _wild_add(self, dep_pred: str, pattern: Tuple_, ref: SupportRef) -> None:
        self._wild.setdefault(dep_pred, {}).setdefault(pattern, set()).add(ref)

    def _wild_discard(
        self, dep_pred: str, pattern: Tuple_, ref: SupportRef
    ) -> None:
        per_pred = self._wild.get(dep_pred)
        if per_pred is None:
            return
        refs = per_pred.get(pattern)
        if refs is None:
            return
        refs.discard(ref)
        if not refs:
            del per_pred[pattern]
            if not per_pred:
                del self._wild[dep_pred]

    def _wild_matches(
        self, predicate: str, row: Tuple_
    ) -> list[tuple[SupportRef, Tuple_]]:
        per_pred = self._wild.get(predicate)
        if not per_pred:
            return []
        out: list[tuple[SupportRef, Tuple_]] = []
        for pattern, refs in per_pred.items():
            if len(pattern) == len(row) and _matches(pattern, row):
                out.extend((ref, pattern) for ref in refs)
        return out

    def dependents(
        self, predicate: str, row: Tuple_
    ) -> list[tuple[SupportRef, Tuple_ | None]]:
        """Supports consuming ``row``: ``(ref, pattern)`` pairs.

        ``pattern`` is ``None`` for exact dependencies and the wildcard
        pattern (with ``None`` holes) for anonymous-variable dependencies —
        the caller decides whether another row still satisfies it.  The
        result is materialised under the lock, so the caller may mutate
        the index while consuming it.
        """
        with self._lock:
            exact = self._exact.get(predicate)
            out: list[tuple[SupportRef, Tuple_ | None]] = []
            if exact is not None:
                out.extend((ref, None) for ref in exact.get(row, ()))
            out.extend(self._wild_matches(predicate, row))
            return out

    def __len__(self) -> int:
        return sum(len(entry) for entry in self._supports.values())


class ShardedSupportIndex(SupportIndex):
    """A support index whose wildcard reverse index is hash-sharded.

    Plain :class:`SupportIndex` scans *every* anonymous-variable pattern of
    a predicate on each deletion cascade step — O(distinct patterns) per
    retracted row.  Here patterns are partitioned by the
    :func:`~repro.cylog.indexes.stable_hash` shard of their key prefix
    (first position), with patterns whose prefix is itself anonymous in a
    catch-all bucket: a retracted row can only match patterns in its own
    shard or the catch-all, so the scan touches ~1/N of the patterns.
    This is where sharding pays off on retraction-heavy churn even before
    any thread is spawned.
    """

    def __init__(
        self,
        n_shards: int,
        lock: ContextManager | None = None,
        budget: int | None = None,
    ) -> None:
        super().__init__(lock, budget=budget)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        #: pred -> shard id (-1 = anonymous prefix) -> pattern -> refs.
        self._wild_shards: dict[
            str, dict[int, dict[Tuple_, set[SupportRef]]]
        ] = {}

    def _pattern_shard(self, pattern: Tuple_) -> int:
        if pattern and pattern[0] is not None:
            return stable_hash(pattern[0]) % self.n_shards
        return -1

    def _wild_add(self, dep_pred: str, pattern: Tuple_, ref: SupportRef) -> None:
        self._wild_shards.setdefault(dep_pred, {}).setdefault(
            self._pattern_shard(pattern), {}
        ).setdefault(pattern, set()).add(ref)

    def _wild_discard(
        self, dep_pred: str, pattern: Tuple_, ref: SupportRef
    ) -> None:
        per_pred = self._wild_shards.get(dep_pred)
        if per_pred is None:
            return
        shard = self._pattern_shard(pattern)
        per_shard = per_pred.get(shard)
        if per_shard is None:
            return
        refs = per_shard.get(pattern)
        if refs is None:
            return
        refs.discard(ref)
        if not refs:
            del per_shard[pattern]
            if not per_shard:
                del per_pred[shard]
                if not per_pred:
                    del self._wild_shards[dep_pred]

    def _wild_matches(
        self, predicate: str, row: Tuple_
    ) -> list[tuple[SupportRef, Tuple_]]:
        per_pred = self._wild_shards.get(predicate)
        if not per_pred:
            return []
        buckets: list[dict[Tuple_, set[SupportRef]]] = []
        if row:
            # A pattern with a concrete prefix only matches rows whose
            # prefix hashes to the same shard: stable_hash is
            # equality-consistent, so 1 / 1.0 / True land together and the
            # strict-equality match below does the bool/int filtering,
            # exactly as on the single store's conflating buckets.
            routed = per_pred.get(stable_hash(row[0]) % self.n_shards)
            if routed:
                buckets.append(routed)
        catch_all = per_pred.get(-1)
        if catch_all:
            buckets.append(catch_all)
        out: list[tuple[SupportRef, Tuple_]] = []
        for bucket in buckets:
            for pattern, refs in bucket.items():
                if len(pattern) == len(row) and _matches(pattern, row):
                    out.extend((ref, pattern) for ref in refs)
        return out


class RetractionScheduler:
    """Worklist deletion cascade for one stratum (counting + DRed).

    Seeded with already-removed input tuples and with precise support drops
    (negation-gain triggers, aggregate diffs), :meth:`run` cascades until no
    further tuple of this stratum loses its footing.  Tuples of predicates
    inside a recursive component are *over-deleted* as soon as they lose a
    support without retaining one grounded outside the component; they are
    collected in :attr:`rederive` for the engine's restore phase.
    """

    def __init__(
        self,
        store: "RelationStore",
        supports: SupportIndex,
        stratum_heads: frozenset[str],
        recursive_preds: frozenset[str],
        stats: "EngineStats",
    ) -> None:
        self._store = store
        self._supports = supports
        self._heads = stratum_heads
        self._recursive = recursive_preds
        self._stats = stats
        self._queue: deque[tuple[str, Tuple_]] = deque()
        #: (pred, row) tuples of *this stratum* deleted by the cascade.
        self.deleted: list[tuple[str, Tuple_]] = []
        #: Over-deleted tuples that must be offered re-derivation.
        self.rederive: set[tuple[str, Tuple_]] = set()

    def enqueue_removed(self, predicate: str, row: Tuple_) -> None:
        """An input tuple (lower stratum / base) is gone: cascade from it."""
        self._queue.append((predicate, row))

    def drop_support(self, predicate: str, row: Tuple_, key: SupportKey) -> None:
        """Precisely invalidate one derivation (negation gain, agg diff)."""
        if predicate not in self._heads:
            return
        relation = self._store.maybe(predicate)
        if relation is None or row not in relation:
            return
        remaining = self._supports.drop(predicate, row, key)
        self._reconsider(predicate, row, remaining)

    def run(self) -> None:
        while self._queue:
            predicate, row = self._queue.popleft()
            for ref, pattern in self._supports.dependents(predicate, row):
                head_pred, head_row, key = ref
                if head_pred not in self._heads:
                    continue  # a later stratum owns this support
                relation = self._store.maybe(head_pred)
                if relation is None or head_row not in relation:
                    continue  # already deleted this cascade
                if pattern is not None:
                    # Anonymous-variable dependency: the support survives as
                    # long as *some* row still matches the pattern.  The
                    # index probe conflates bool/int keys, so re-filter
                    # candidates strictly.
                    source = self._store.maybe(predicate)
                    if source is not None and any(
                        _matches(pattern, candidate)
                        for candidate in source.match(pattern)
                    ):
                        continue
                remaining = self._supports.drop(head_pred, head_row, key)
                self._reconsider(head_pred, head_row, remaining)

    def _reconsider(self, predicate: str, row: Tuple_, remaining: int) -> None:
        if remaining > 0:
            if predicate not in self._recursive:
                return
            if self._grounded(predicate, row):
                return
            # Every remaining support runs through the recursive component:
            # it may be cyclic garbage.  Over-delete; re-derivation restores
            # the tuple when it is still genuinely derivable.
            self.rederive.add((predicate, row))
            self._stats.overdeletions += 1
        elif predicate in self._recursive:
            self.rederive.add((predicate, row))
        self._delete(predicate, row)

    def _grounded(self, predicate: str, row: Tuple_) -> bool:
        """True when some support's body rows all avoid the recursive
        component (they are final by the time this stratum runs)."""
        for key in self._supports.supports(predicate, row):
            if all(dep_pred not in self._recursive for dep_pred, _ in key[1]):
                return True
        return False

    def _delete(self, predicate: str, row: Tuple_) -> None:
        relation = self._store.maybe(predicate)
        if relation is None or not relation.discard(row):
            return
        self._supports.discard_tuple(predicate, row)
        self.deleted.append((predicate, row))
        self._stats.tuples_retracted += 1
        self._queue.append((predicate, row))


def partition_recursive(
    head_preds: Iterable[str], edges: Mapping[str, set[str]]
) -> frozenset[str]:
    """Head predicates on a positive within-stratum cycle (incl. self-loops).

    ``edges`` maps a head predicate to the same-stratum head predicates its
    rule bodies consume positively.  Counting-based deletion is exact for
    everything outside the returned set; tuples inside it need DRed.
    """
    heads = set(head_preds)
    recursive: set[str] = set()
    for start in heads:
        # DFS from each successor of `start`; reaching `start` again closes
        # a cycle.  Stratum head counts are tiny, so O(n^2) is fine.
        stack = list(edges.get(start, ()))
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                recursive.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
    return frozenset(recursive)
