"""Cross-run incremental maintenance: deltas, support counts, retraction.

Three cooperating pieces let :class:`~repro.cylog.engine.SemiNaiveEngine`
keep its materialisations *between* ``run()`` calls and propagate only what
changed:

* :class:`DeltaLedger` — net per-predicate change sets.  Used for the
  pending base-fact queue (additions *and* retractions), for the per-run
  change report surfaced through ``EvaluationResult.added/removed``, and by
  the processor to accumulate deltas across runs until the platform drains
  them.
* :class:`SupportIndex` — provenance-based support counting.  Every
  derivation found during evaluation is recorded as a *support*: the rule
  that fired plus the positive body rows it consumed (``None`` marks
  positions hidden behind anonymous variables).  A reverse index from each
  body row to the supports it participates in makes deletion a lookup, not
  a recomputation: retracting a tuple drops exactly the derivations that
  used it, and a derived tuple dies only when its support count reaches
  zero.
* :class:`RetractionScheduler` — the per-stratum deletion cascade.  For
  strata whose dependency graph is acyclic, pure support counting is exact.
  Inside recursive strata counting alone is unsound (cyclic derivations can
  keep each other alive), so the scheduler falls back to the classic
  DRed treatment: tuples of recursive predicates whose only remaining
  supports run through the recursive component are *over-deleted* and
  queued for the engine's re-derivation phase, which restores everything
  still derivable from the surviving facts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.cylog.engine import EngineStats, RelationStore

Tuple_ = tuple[Any, ...]
#: One positive-body dependency: predicate plus the consumed row, with
#: ``None`` at positions the rule matched through an anonymous variable.
Dep = tuple[str, Tuple_]
#: Identity of one derivation: the compiled-rule index plus its positive
#: body rows.  Aggregate rules use an empty dependency tuple — their
#: supports are reconciled by recompute-and-diff, not by row tracking.
SupportKey = tuple[int, tuple[Dep, ...]]
#: A support occurrence as stored in the reverse index.
SupportRef = tuple[str, Tuple_, SupportKey]


class DeltaLedger:
    """Net per-predicate added/removed tuple sets.

    ``add`` and ``remove`` cancel each other, so after any sequence of
    operations the ledger holds the *net* difference against the state it
    started from — exactly what an incremental consumer needs.
    """

    __slots__ = ("_added", "_removed")

    def __init__(self) -> None:
        self._added: dict[str, set[Tuple_]] = {}
        self._removed: dict[str, set[Tuple_]] = {}

    def add(self, predicate: str, row: Tuple_) -> None:
        removed = self._removed.get(predicate)
        if removed is not None and row in removed:
            removed.discard(row)
            if not removed:
                del self._removed[predicate]
            return
        self._added.setdefault(predicate, set()).add(row)

    def remove(self, predicate: str, row: Tuple_) -> None:
        added = self._added.get(predicate)
        if added is not None and row in added:
            added.discard(row)
            if not added:
                del self._added[predicate]
            return
        self._removed.setdefault(predicate, set()).add(row)

    def added(self, predicate: str) -> set[Tuple_]:
        return self._added.get(predicate, set())

    def removed(self, predicate: str) -> set[Tuple_]:
        return self._removed.get(predicate, set())

    def merge(self, other: "DeltaLedger") -> None:
        """Fold ``other`` (a later change set) into this ledger."""
        for predicate, rows in other._added.items():
            for row in rows:
                self.add(predicate, row)
        for predicate, rows in other._removed.items():
            for row in rows:
                self.remove(predicate, row)

    def predicates(self) -> list[str]:
        return sorted(set(self._added) | set(self._removed))

    def clear(self) -> None:
        self._added.clear()
        self._removed.clear()

    def as_mappings(self) -> tuple[dict[str, frozenset], dict[str, frozenset]]:
        """Immutable (added, removed) views for an ``EvaluationResult``."""
        return (
            {pred: frozenset(rows) for pred, rows in self._added.items() if rows},
            {pred: frozenset(rows) for pred, rows in self._removed.items() if rows},
        )

    def __bool__(self) -> bool:
        return bool(self._added) or bool(self._removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        added = sum(len(r) for r in self._added.values())
        removed = sum(len(r) for r in self._removed.values())
        return f"<delta ledger +{added}/-{removed}>"


def _is_wild(dep_row: Tuple_) -> bool:
    return any(value is None for value in dep_row)


def _strict_eq(a: Any, b: Any) -> bool:
    """Equality that keeps ``True`` and ``1`` apart, like the join layer's
    ``_bind_atom`` (hash indexes conflate them, so set/index hits must be
    re-filtered)."""
    return a == b and isinstance(a, bool) == isinstance(b, bool)


def _matches(pattern: Tuple_, row: Tuple_) -> bool:
    return all(p is None or _strict_eq(p, value) for p, value in zip(pattern, row))


class SupportIndex:
    """Derivation provenance: tuple -> supports, body row -> dependents.

    ``add`` records one derivation of a head tuple; ``dependents`` answers
    "which derivations consumed this row?" so a deletion can cascade in time
    proportional to the affected provenance, not the database.  Anonymous
    variables leave ``None`` holes in the recorded body row; those supports
    are indexed per predicate and matched by pattern on deletion (the engine
    re-checks whether *another* row still satisfies the hole before the
    support is dropped).
    """

    def __init__(self) -> None:
        #: (pred, row) -> its support keys.
        self._supports: dict[tuple[str, Tuple_], set[SupportKey]] = {}
        #: pred -> exact body row -> supports consuming it.
        self._exact: dict[str, dict[Tuple_, set[SupportRef]]] = {}
        #: pred -> wildcard pattern -> supports consuming a matching row.
        self._wild: dict[str, dict[Tuple_, set[SupportRef]]] = {}

    def add(self, predicate: str, row: Tuple_, key: SupportKey) -> bool:
        """Record one derivation; returns True when it was not yet known."""
        entry = self._supports.setdefault((predicate, row), set())
        if key in entry:
            return False
        entry.add(key)
        ref: SupportRef = (predicate, row, key)
        for dep_pred, dep_row in key[1]:
            target = self._wild if _is_wild(dep_row) else self._exact
            target.setdefault(dep_pred, {}).setdefault(dep_row, set()).add(ref)
        return True

    def count(self, predicate: str, row: Tuple_) -> int:
        return len(self._supports.get((predicate, row), ()))

    def supports(self, predicate: str, row: Tuple_) -> frozenset:
        return frozenset(self._supports.get((predicate, row), ()))

    def drop(self, predicate: str, row: Tuple_, key: SupportKey) -> int:
        """Remove one support if present; returns the remaining count."""
        entry = self._supports.get((predicate, row))
        if entry is None or key not in entry:
            return len(entry) if entry is not None else 0
        entry.discard(key)
        self._unregister((predicate, row, key))
        if not entry:
            del self._supports[(predicate, row)]
            return 0
        return len(entry)

    def discard_tuple(self, predicate: str, row: Tuple_) -> None:
        """The tuple left the store: forget every derivation *of* it.

        Supports it participates in (as a body row of other derivations)
        are untouched — the deletion cascade drops those explicitly.
        """
        entry = self._supports.pop((predicate, row), None)
        if not entry:
            return
        for key in entry:
            self._unregister((predicate, row, key))

    def _unregister(self, ref: SupportRef) -> None:
        for dep_pred, dep_row in ref[2][1]:
            target = self._wild if _is_wild(dep_row) else self._exact
            per_pred = target.get(dep_pred)
            if per_pred is None:
                continue
            refs = per_pred.get(dep_row)
            if refs is None:
                continue
            refs.discard(ref)
            if not refs:
                del per_pred[dep_row]
                if not per_pred:
                    del target[dep_pred]

    def dependents(
        self, predicate: str, row: Tuple_
    ) -> Iterator[tuple[SupportRef, Tuple_ | None]]:
        """Supports consuming ``row``: ``(ref, pattern)`` pairs.

        ``pattern`` is ``None`` for exact dependencies and the wildcard
        pattern (with ``None`` holes) for anonymous-variable dependencies —
        the caller decides whether another row still satisfies it.
        """
        exact = self._exact.get(predicate)
        if exact is not None:
            for ref in list(exact.get(row, ())):
                yield ref, None
        wild = self._wild.get(predicate)
        if wild is not None:
            for pattern, refs in list(wild.items()):
                if len(pattern) == len(row) and _matches(pattern, row):
                    for ref in list(refs):
                        yield ref, pattern

    def __len__(self) -> int:
        return sum(len(entry) for entry in self._supports.values())


class RetractionScheduler:
    """Worklist deletion cascade for one stratum (counting + DRed).

    Seeded with already-removed input tuples and with precise support drops
    (negation-gain triggers, aggregate diffs), :meth:`run` cascades until no
    further tuple of this stratum loses its footing.  Tuples of predicates
    inside a recursive component are *over-deleted* as soon as they lose a
    support without retaining one grounded outside the component; they are
    collected in :attr:`rederive` for the engine's restore phase.
    """

    def __init__(
        self,
        store: "RelationStore",
        supports: SupportIndex,
        stratum_heads: frozenset[str],
        recursive_preds: frozenset[str],
        stats: "EngineStats",
    ) -> None:
        self._store = store
        self._supports = supports
        self._heads = stratum_heads
        self._recursive = recursive_preds
        self._stats = stats
        self._queue: deque[tuple[str, Tuple_]] = deque()
        #: (pred, row) tuples of *this stratum* deleted by the cascade.
        self.deleted: list[tuple[str, Tuple_]] = []
        #: Over-deleted tuples that must be offered re-derivation.
        self.rederive: set[tuple[str, Tuple_]] = set()

    def enqueue_removed(self, predicate: str, row: Tuple_) -> None:
        """An input tuple (lower stratum / base) is gone: cascade from it."""
        self._queue.append((predicate, row))

    def drop_support(self, predicate: str, row: Tuple_, key: SupportKey) -> None:
        """Precisely invalidate one derivation (negation gain, agg diff)."""
        if predicate not in self._heads:
            return
        relation = self._store.maybe(predicate)
        if relation is None or row not in relation:
            return
        remaining = self._supports.drop(predicate, row, key)
        self._reconsider(predicate, row, remaining)

    def run(self) -> None:
        while self._queue:
            predicate, row = self._queue.popleft()
            for ref, pattern in self._supports.dependents(predicate, row):
                head_pred, head_row, key = ref
                if head_pred not in self._heads:
                    continue  # a later stratum owns this support
                relation = self._store.maybe(head_pred)
                if relation is None or head_row not in relation:
                    continue  # already deleted this cascade
                if pattern is not None:
                    # Anonymous-variable dependency: the support survives as
                    # long as *some* row still matches the pattern.  The
                    # index probe conflates bool/int keys, so re-filter
                    # candidates strictly.
                    source = self._store.maybe(predicate)
                    if source is not None and any(
                        _matches(pattern, candidate)
                        for candidate in source.match(pattern)
                    ):
                        continue
                remaining = self._supports.drop(head_pred, head_row, key)
                self._reconsider(head_pred, head_row, remaining)

    def _reconsider(self, predicate: str, row: Tuple_, remaining: int) -> None:
        if remaining > 0:
            if predicate not in self._recursive:
                return
            if self._grounded(predicate, row):
                return
            # Every remaining support runs through the recursive component:
            # it may be cyclic garbage.  Over-delete; re-derivation restores
            # the tuple when it is still genuinely derivable.
            self.rederive.add((predicate, row))
            self._stats.overdeletions += 1
        elif predicate in self._recursive:
            self.rederive.add((predicate, row))
        self._delete(predicate, row)

    def _grounded(self, predicate: str, row: Tuple_) -> bool:
        """True when some support's body rows all avoid the recursive
        component (they are final by the time this stratum runs)."""
        for key in self._supports.supports(predicate, row):
            if all(dep_pred not in self._recursive for dep_pred, _ in key[1]):
                return True
        return False

    def _delete(self, predicate: str, row: Tuple_) -> None:
        relation = self._store.maybe(predicate)
        if relation is None or not relation.discard(row):
            return
        self._supports.discard_tuple(predicate, row)
        self.deleted.append((predicate, row))
        self._stats.tuples_retracted += 1
        self._queue.append((predicate, row))


def partition_recursive(
    head_preds: Iterable[str], edges: Mapping[str, set[str]]
) -> frozenset[str]:
    """Head predicates on a positive within-stratum cycle (incl. self-loops).

    ``edges`` maps a head predicate to the same-stratum head predicates its
    rule bodies consume positively.  Counting-based deletion is exact for
    everything outside the returned set; tuples inside it need DRed.
    """
    heads = set(head_preds)
    recursive: set[str] = set()
    for start in heads:
        # DFS from each successor of `start`; reaching `start` again closes
        # a cycle.  Stratum head counts are tiny, so O(n^2) is fine.
        stack = list(edges.get(start, ()))
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                recursive.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
    return frozenset(recursive)
