"""Process-based evaluation: GIL-free workers holding replica stores.

The thread pool in :mod:`repro.cylog.sharding` is bound by the
interpreter lock — per-shard tasks are pure Python joins, so worker
threads serialise on the GIL and multi-worker speedups stall.  The
:class:`ProcessExecutor` moves the same tasks into worker *processes*:

* Each worker holds a **replica** of the engine's relation store (a plain
  :class:`~repro.cylog.engine.RelationStore` — lookups over the same
  facts return the same row sets as any sharded layout) plus the compiled
  join plans, installed once per full run by a ``reset`` message.
* Between dispatches the engine streams its own mutation ledger — the
  same net deltas it already tracks for incremental evaluation, now
  partitioned by (relation, primary shard) at mutation time
  (:class:`~repro.cylog.sharding.PartitionedLedger`) — as ``sync``
  messages, so replicas never re-ship the whole store.
* Tasks travel as **picklable descriptors** ``(rule index, plan
  position, delta shard, delta rows)`` — the rows are the shard-aligned
  delta partitions produced by
  :func:`~repro.cylog.sharding.split_rows_by_shard`, and the plan is
  referenced by its position in the already-shipped compiled program, so
  per-task payloads stay delta-sized.
* Results (derived rows + support keys + a scratch
  :class:`~repro.cylog.engine.EngineStats`) come back tagged with the
  submission index and are returned **in submission order**, so the
  engine's serial merge produces bit-identical fixpoints, deltas and
  derivation counters at any worker count — the same determinism
  contract the thread pool honours.

Replica layout is shaped by ``replica_mode``:

* ``"full"`` — every worker holds the complete replica and every sync is
  broadcast verbatim (one pickled payload, written to each pipe).
* ``"pruned"`` — each worker *subscribes* to exactly the (relation,
  primary shard) partitions its assigned task classes can probe
  (:func:`~repro.cylog.sharding.probe_partitions`).  Tasks are routed by
  a content hash of their (rule, position, delta shard) class so the
  same class keeps landing on the same worker, sync messages are sliced
  to each worker's subscriptions, and when the planner routes a new
  shape to a worker the missing partitions are *backfilled* lazily from
  the engine's authoritative store.
* ``"shared"`` — pruned subscriptions, plus the baseline base-fact
  partitions are published once per full run as sealed row blocks
  (:func:`~repro.cylog.sharding.seal_rows` — marshal, not pickle) in
  ``multiprocessing.shared_memory`` segments.  A backfill of a partition
  that nothing has mutated since the baseline maps the segment instead
  of copying rows through the pipe; mutated partitions (version bumped
  by a sync) fall back to pipe backfill, and segments are rebuilt on the
  next reset.

All three modes are bit-identical — pruning is computed from the same
compiled plans the tasks execute, so every probe a task performs sees
exactly the rows the engine's own store would serve.  The shard-diff CI
oracle runs the full matrix.

Every connection is a FIFO pipe, so a ``sync`` sent before a ``tasks``
message is always applied first; no acknowledgement round-trips are
needed.  Workers are spawned lazily (``fork`` where available, falling
back to ``spawn``) and torn down by ``close()``.  A worker death
mid-dispatch raises :class:`ProcessPoolBrokenError` after closing the
pool; the engine reacts by demoting itself to inline serial evaluation
(its own store was authoritative all along).
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import traceback
from multiprocessing import shared_memory
from typing import Any, Callable, Mapping, Sequence

from repro.cylog.indexes import stable_hash
from repro.cylog.sharding import (
    REPLICA_MODES,
    ExecutorPolicy,
    probe_partitions,
    seal_rows,
    unseal_rows,
)

Tuple_ = tuple[Any, ...]
#: One shipped task: (rule index, join-plan position of the delta atom —
#: ``None`` for a full round-0 evaluation — the delta shard the partition
#: was split on (``None`` when unsplit), and the delta partition rows).
#: The legacy 3-tuple without the delta shard is still accepted.
TaskDescriptor = tuple[int, "int | None", "int | None", "tuple[Tuple_, ...] | None"]
#: (predicate, primary shard) — the unit of subscription, sync slicing,
#: backfill and shared-memory publication.
PartitionKey = tuple[str, int]
#: Published shared-memory baseline partition: (segment, sealed-blob
#: length in bytes, relation arity).
SegmentRecord = tuple[shared_memory.SharedMemory, int, int]


class ProcessPoolBrokenError(RuntimeError):
    """A worker process died mid-dispatch and the pool was closed.

    Replica state streamed to the dead pool is unrecoverable, so the
    executor refuses further dispatches until a ``reset()`` (an engine
    full run).  The engine catches exactly this error to fall back to
    inline serial evaluation without losing any state — its own store is
    the authority; replicas were read-only mirrors.
    """


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup duty.

    The parent created the segment and unlinks it; a worker only maps
    it.  Python < 3.13 has no ``track`` parameter and registers every
    attach with the resource tracker.  Under the fork context all
    processes talk to ONE tracker, whose cache is a name *set* — so
    undoing the registration afterwards would erase the parent's own
    entry (noisy KeyErrors at unlink time).  Instead the registration is
    suppressed for the duration of the attach; workers are
    single-threaded, so nothing else registers concurrently.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _WorkerState:
    """Everything one worker process knows: plans + replica store."""

    __slots__ = ("compiled", "store")

    def __init__(
        self,
        compiled,
        base_facts: dict,
        base_arities: Mapping[str, int] | None = None,
    ) -> None:
        from repro.cylog.engine import RelationStore

        self.compiled = compiled
        self.store = RelationStore(compiled.index_specs())
        for predicate, rows in base_facts.items():
            if not rows:
                continue
            relation = self.store.get(predicate, len(next(iter(rows))))
            for row in rows:
                relation.add(row)
        # Pruned/shared baselines ship arities instead of rows: the
        # relations exist (empty) from the start and partitions arrive by
        # backfill, so relation *existence* — which probe bookkeeping can
        # observe — matches the engine store exactly.
        for predicate, arity in (base_arities or {}).items():
            self.store.get(predicate, arity)
        # Mirror the engine's full run: head relations exist (empty) from
        # the start, so a probe against a not-yet-derived head counts an
        # index hit exactly as it does on the engine's store — keeping the
        # scratch counters byte-identical to the thread pool's.
        for rule in compiled.rules:
            self.store.get(rule.rule.head.predicate, rule.rule.head.arity)


def _apply_sync(state: _WorkerState, adds: dict, removes: dict) -> None:
    """Apply one net change set to the replica (removals first — a net
    ledger never holds the same row on both sides).  Keys may be plain
    predicate names (full-mode broadcast, legacy callers) or (predicate,
    shard) partition keys (sliced pruned/shared syncs)."""
    for key, rows in removes.items():
        predicate = key if isinstance(key, str) else key[0]
        relation = state.store.maybe(predicate)
        if relation is not None:
            for row in rows:
                relation.discard(row)
    for key, rows in adds.items():
        if not rows:
            continue
        predicate = key if isinstance(key, str) else key[0]
        relation = state.store.get(predicate, len(next(iter(rows))))
        for row in rows:
            relation.add(row)


def _apply_backfill(state: _WorkerState, predicate: str, arity: int, rows) -> None:
    """Install one authoritative partition (the partition was never
    subscribed before, so the replica holds none of its rows)."""
    relation = state.store.get(predicate, arity)
    for row in rows:
        relation.add(row)


def _run_task(
    state: _WorkerState,
    rule_index: int,
    position: int | None,
    rows: tuple[Tuple_, ...] | None,
):
    """Evaluate one task descriptor — the process twin of the engine's
    ``_rule_delta_task`` / round-0 closures, against the replica store."""
    from repro.cylog.engine import (
        EngineStats,
        _head_tuple,
        _relation_from,
        solutions,
        support_key_for,
    )

    rule = state.compiled.rules[rule_index]
    scratch = EngineStats()
    if position is None:
        bindings_iter = solutions(rule.join_plan, state.store, stats=scratch)
    else:
        scratch.shard_tasks = 1
        literal = rule.join_plan.steps[position].literal
        delta_rel = _relation_from(set(rows), state.store.maybe(literal.predicate))
        delta_plan = rule.delta_plans.get(position)
        if delta_plan is not None:
            bindings_iter = solutions(
                delta_plan,
                state.store,
                delta_position=0,
                delta_relation=delta_rel,
                stats=scratch,
            )
        else:
            bindings_iter = solutions(
                rule.join_plan,
                state.store,
                delta_position=position,
                delta_relation=delta_rel,
                stats=scratch,
            )
    derived = [
        (_head_tuple(rule, b), support_key_for(rule_index, rule, b))
        for b in bindings_iter
    ]
    return derived, scratch


def _normalize_descriptor(descriptor) -> tuple[int, "int | None", Any]:
    """(rule_index, position, rows) out of a 4-tuple (with delta shard)
    or legacy 3-tuple descriptor."""
    if len(descriptor) == 4:
        rule_index, position, _, rows = descriptor
    else:
        rule_index, position, rows = descriptor
    return rule_index, position, rows


def _worker_main(conn) -> None:
    """Worker loop: apply resets/syncs/backfills in arrival order,
    evaluate tasks.

    Messages travel as raw pickled bytes (``send_bytes``/``recv_bytes``):
    the parent serialises each broadcast payload *once* and writes the
    same bytes to every worker pipe, instead of re-pickling per worker.
    """
    state: _WorkerState | None = None
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except EOFError:  # parent went away
            return
        kind = message[0]
        try:
            if kind == "stop":
                return
            if kind == "reset":
                base_arities = message[3] if len(message) > 3 else None
                state = _WorkerState(message[1], message[2], base_arities)
            elif kind == "sync":
                if state is not None:
                    _apply_sync(state, message[1], message[2])
            elif kind == "replan":
                if state is not None:
                    state.compiled = message[1]
            elif kind == "backfill":
                if state is None:
                    raise RuntimeError(
                        "process worker received backfill before reset"
                    )
                _apply_backfill(state, message[1], message[2], message[3])
            elif kind == "load_shm":
                if state is None:
                    raise RuntimeError(
                        "process worker received load_shm before reset"
                    )
                _, predicate, arity, name, size = message
                segment = _attach_shm(name)
                try:
                    rows = unseal_rows(segment.buf[:size])
                finally:
                    segment.close()
                _apply_backfill(state, predicate, arity, rows)
            elif kind == "tasks":
                if state is None:
                    raise RuntimeError("process worker received tasks before reset")
                results = [
                    (index, *_run_task(state, *_normalize_descriptor(descriptor)))
                    for index, descriptor in message[1]
                ]
                conn.send_bytes(pickle.dumps(("results", results), -1))
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker message {kind!r}")
        except BaseException:
            try:
                conn.send_bytes(
                    pickle.dumps(("error", traceback.format_exc()), -1)
                )
            except (BrokenPipeError, OSError):  # pragma: no cover
                return


class ProcessExecutor(ExecutorPolicy):
    """Fan evaluation tasks out to worker processes with replica stores.

    The engine talks to it through four calls: :meth:`reset` installs a
    new baseline (compiled program, base facts, shard layout and the
    authoritative partition provider), :meth:`sync` queues the engine's
    net store changes since the last dispatch (returning the canonical
    payload size for telemetry), :meth:`replan` queues a mid-stream plan
    swap, and :meth:`run_rule_tasks` ships task descriptors and returns
    their results in submission order.  Workers are spawned on the first
    dispatch; pending baseline, syncs and replans are replayed to them
    through the FIFO pipe before any task, so a replica is always current
    when it evaluates.  ``replica_mode`` selects full, pruned or
    shared-memory replicas (module docstring); every mode is
    bit-identical.
    """

    name = "process"
    distributed = True

    def __init__(self, max_workers: int = 4, replica_mode: str = "full") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if replica_mode not in REPLICA_MODES:
            raise ValueError(
                f"unknown replica_mode {replica_mode!r}; expected one of "
                f"{REPLICA_MODES}"
            )
        self.workers = max_workers
        self.replica_mode = replica_mode
        self._ctx = _mp_context()
        self._procs: list = []
        self._conns: list = []
        self._baseline: bytes | None = None
        #: Messages queued since the last dispatch, in order: ("sync",
        #: adds, removes, broadcast_blob) and ("replan", blob).  Order
        #: matters — a replan between two syncs must reach workers
        #: between them.
        self._pending: list[tuple] = []
        self._compiled = None
        self._n_shards = 1
        self._partition_provider: Callable[[str, int], Any] | None = None
        #: Per-worker subscription sets (pruned/shared modes).  Invariant:
        #: a subscribed partition is fully current on that worker — every
        #: sync is sliced against the subscriptions and shipped at every
        #: dispatch, and a partition is only added after an authoritative
        #: backfill in the same pipe batch.
        self._subscribed: list[set[PartitionKey]] = []
        #: Rows currently resident in each worker's replica (exact: the
        #: ledger only ships truly-new adds and truly-present removes).
        self._replica_rows: list[int] = []
        #: Shared-memory segments of baseline partitions, and per-partition
        #: mutation versions (0 = untouched since baseline, so the segment
        #: is still authoritative).
        self._segments: dict[PartitionKey, SegmentRecord] = {}
        self._segment_rows: dict[PartitionKey, int] = {}
        self._versions: dict[PartitionKey, int] = {}
        self._baseline_rows = 0
        self._telemetry = {
            "sync_bytes_shipped": 0,
            "sync_rows_shipped": 0,
            "replica_backfills": 0,
            "backfill_rows": 0,
            "shared_mem_remaps": 0,
            "bytes_to_workers": 0,
        }
        #: Set by close() (and by a mid-dispatch worker death).  A closed
        #: executor refuses to dispatch: respawning from the last baseline
        #: would silently lose every sync already streamed to the old
        #: workers.  A fresh reset() re-opens it — the new baseline plus
        #: later syncs fully determine replica state again.
        self._closed = False
        self._lock = threading.Lock()

    @property
    def _pruned(self) -> bool:
        return self.replica_mode != "full"

    # -- engine-facing protocol -------------------------------------------
    def reset(
        self,
        compiled,
        base_facts: dict,
        n_shards: int = 1,
        partition_provider: "Callable[[str, int], Any] | None" = None,
    ) -> None:
        """Install a new baseline (full run): plans + live base facts.

        In pruned/shared modes the baseline ships only the base-fact
        *arities* — rows reach each worker later, as subscriptions demand
        them (pipe backfill, or a shared-memory map of the sealed
        baseline partition in ``shared`` mode).
        """
        self._compiled = compiled
        self._n_shards = n_shards
        self._partition_provider = partition_provider
        self._drop_segments()
        self._versions = {}
        baseline_rows = 0
        if self._pruned:
            arities = {
                predicate: len(next(iter(rows)))
                for predicate, rows in base_facts.items()
                if rows
            }
            payload = ("reset", compiled, {}, arities)
            if self.replica_mode == "shared":
                self._publish_segments(base_facts)
        else:
            payload = ("reset", compiled, base_facts, None)
            baseline_rows = sum(len(rows) for rows in base_facts.values())
        # Serialised once; the same bytes go to every (current and future)
        # worker pipe.
        self._baseline = pickle.dumps(payload, -1)
        self._baseline_rows = baseline_rows
        self._pending.clear()
        self._subscribed = [set() for _ in range(self.workers)]
        self._replica_rows = [0] * self.workers
        self._closed = False
        for worker_id, conn in enumerate(self._conns):
            try:
                conn.send_bytes(self._baseline)
            except (BrokenPipeError, OSError):
                # A worker died between dispatches.  The fresh baseline
                # (plus later syncs) fully determines replica state, so
                # the pool can simply be discarded and respawned lazily.
                self._discard_pool()
                break
            self._telemetry["bytes_to_workers"] += len(self._baseline)
            self._replica_rows[worker_id] = baseline_rows

    def sync(self, adds: dict, removes: dict) -> int:
        """Queue one net change set; shipped at the next dispatch.

        Keys may be (predicate, shard) partition keys (what the engine's
        :class:`~repro.cylog.sharding.PartitionedLedger` produces) or
        plain predicate names (legacy callers — never pruned, every
        worker receives them).  Returns the canonical payload size in
        bytes — a pure function of the change set, independent of worker
        count and replica mode (per-worker shipping is telemetry).
        """
        if not adds and not removes:
            return 0
        blob = pickle.dumps(("sync", adds, removes), -1)
        for mapping in (adds, removes):
            for key in mapping:
                if isinstance(key, tuple):
                    self._versions[key] = self._versions.get(key, 0) + 1
        self._pending.append(("sync", adds, removes, blob))
        return len(blob)

    def replan(self, compiled) -> None:
        """Queue a mid-stream plan swap (write-aware exchange costing):
        workers keep their stores and swap the compiled program, exactly
        like the engine does."""
        self._compiled = compiled
        self._pending.append(("replan", pickle.dumps(("replan", compiled), -1)))

    def telemetry(self) -> dict:
        """Cumulative executor-side counters (see module docstring) plus
        the exact per-worker resident row counts."""
        counters = dict(self._telemetry)
        counters["replica_rows"] = tuple(self._replica_rows)
        return counters

    def run_rule_tasks(self, descriptors: Sequence[TaskDescriptor]) -> list:
        """Evaluate descriptors on the pool; results in submission order."""
        self._ensure_pool()
        per_worker: list[list[tuple[int, TaskDescriptor]]] = [
            [] for _ in self._conns
        ]
        for index, descriptor in enumerate(descriptors):
            per_worker[self._assign(index, descriptor)].append((index, descriptor))
        # Every worker first drains the queued syncs/replans (sliced to
        # its subscriptions when pruned) so replicas advance in lockstep,
        # then receives backfills for newly needed partitions, then its
        # tasks — one FIFO pipe, no acknowledgement round-trips.  A send
        # to a dead worker breaks the pipe; replica state streamed to the
        # old pool is unrecoverable, so the pool closes.
        busy = []
        try:
            for worker_id, conn in enumerate(self._conns):
                self._ship_pending(worker_id, conn)
            self._pending.clear()
            for worker_id, (conn, batch) in enumerate(zip(self._conns, per_worker)):
                if not batch:
                    continue
                if self._pruned:
                    self._ship_backfills(worker_id, conn, (d for _, d in batch))
                payload = pickle.dumps(("tasks", batch), -1)
                conn.send_bytes(payload)
                self._telemetry["bytes_to_workers"] += len(payload)
                busy.append(conn)
        except (BrokenPipeError, OSError):
            self.close()
            raise ProcessPoolBrokenError(
                "process worker died mid-dispatch; executor closed "
                "(a full run / reset() re-opens it)"
            ) from None
        results: list = [None] * len(descriptors)
        errors: list[str] = []
        # Every busy pipe is drained even when one worker reports an
        # error — an unread reply would desync the FIFO protocol and hand
        # the *next* dispatch a stale result batch.
        for conn in busy:
            try:
                reply = pickle.loads(conn.recv_bytes())
            except EOFError:
                self.close()  # a dead worker leaves replicas unrecoverable
                raise ProcessPoolBrokenError(
                    "process worker died mid-dispatch; executor closed "
                    "(a full run / reset() re-opens it)"
                ) from None
            if reply[0] == "error":
                errors.append(reply[1])
            else:
                for index, derived, scratch in reply[1]:
                    results[index] = (derived, scratch)
        if errors:
            raise RuntimeError("process worker failed:\n" + "\n".join(errors))
        return results

    # -- pruned/shared internals -------------------------------------------
    def _assign(self, index: int, descriptor) -> int:
        """Worker for one task.  Full mode stripes by submission index;
        pruned/shared route by a stable content hash of the task *class*
        (rule, position, delta shard), so a class keeps hitting the
        worker already subscribed to its partitions."""
        if not self._pruned:
            return index % len(self._conns)
        if len(descriptor) == 4:
            rule_index, position, delta_shard, _ = descriptor
        else:
            rule_index, position, _ = descriptor
            delta_shard = None
        return stable_hash((rule_index, position, delta_shard)) % len(self._conns)

    def _slice(self, mapping: dict, subscribed: set[PartitionKey]) -> dict:
        return {
            key: rows
            for key, rows in mapping.items()
            if isinstance(key, str) or key in subscribed
        }

    def _ship_pending(self, worker_id: int, conn) -> None:
        """Drain queued syncs/replans to one worker, in queue order."""
        for entry in self._pending:
            if entry[0] == "replan":
                conn.send_bytes(entry[1])
                self._telemetry["bytes_to_workers"] += len(entry[1])
                continue
            _, adds, removes, blob = entry
            if self._pruned:
                subscribed = self._subscribed[worker_id]
                sliced_adds = self._slice(adds, subscribed)
                sliced_removes = self._slice(removes, subscribed)
                if not sliced_adds and not sliced_removes:
                    continue
                payload = pickle.dumps(("sync", sliced_adds, sliced_removes), -1)
            else:
                sliced_adds, sliced_removes = adds, removes
                payload = blob
            conn.send_bytes(payload)
            added = sum(len(rows) for rows in sliced_adds.values())
            removed = sum(len(rows) for rows in sliced_removes.values())
            self._telemetry["sync_bytes_shipped"] += len(payload)
            self._telemetry["bytes_to_workers"] += len(payload)
            self._telemetry["sync_rows_shipped"] += added + removed
            self._replica_rows[worker_id] += added - removed

    def _ship_backfills(self, worker_id: int, conn, descriptors) -> None:
        """Subscribe ``worker_id`` to every partition its new tasks can
        probe, backfilling each missing one authoritatively — from the
        baseline's shared-memory segment when it is still current, else
        from the engine store through the pipe."""
        assert self._compiled is not None
        needed: set[PartitionKey] = set()
        seen: set[tuple] = set()
        for descriptor in descriptors:
            if len(descriptor) == 4:
                rule_index, position, delta_shard, _ = descriptor
            else:
                rule_index, position, _ = descriptor
                delta_shard = None
            task_class = (rule_index, position, delta_shard)
            if task_class in seen:
                continue
            seen.add(task_class)
            needed |= probe_partitions(
                self._compiled, self._n_shards, rule_index, position, delta_shard
            )
        subscribed = self._subscribed[worker_id]
        missing = sorted(needed - subscribed)
        for key in missing:
            self._backfill(worker_id, conn, key)
        subscribed.update(missing)

    def _backfill(self, worker_id: int, conn, key: PartitionKey) -> None:
        predicate, shard = key
        segment = self._segments.get(key)
        if segment is not None and self._versions.get(key, 0) == 0:
            shm, size, arity = segment
            payload = pickle.dumps(("load_shm", predicate, arity, shm.name, size), -1)
            conn.send_bytes(payload)
            rows = self._segment_rows[key]
            self._telemetry["replica_backfills"] += 1
            self._telemetry["backfill_rows"] += rows
            self._telemetry["bytes_to_workers"] += len(payload)
            self._replica_rows[worker_id] += rows
            return
        provider = self._partition_provider
        partition = provider(predicate, shard) if provider is not None else None
        if partition is None:
            return  # relation absent on the engine store too
        arity, rows = partition
        payload = pickle.dumps(("backfill", predicate, arity, rows), -1)
        conn.send_bytes(payload)
        self._telemetry["replica_backfills"] += 1
        self._telemetry["backfill_rows"] += len(rows)
        self._telemetry["bytes_to_workers"] += len(payload)
        self._replica_rows[worker_id] += len(rows)

    # -- shared-memory segments --------------------------------------------
    def _publish_segments(self, base_facts: dict) -> None:
        """Seal every non-empty baseline base-fact partition into a
        shared-memory segment (rebuilt each reset — a version bump)."""
        from repro.cylog.sharding import shard_of

        self._segment_rows: dict[PartitionKey, int] = {}
        for predicate, rows in base_facts.items():
            if not rows:
                continue
            arity = len(next(iter(rows)))
            partitions: dict[int, list] = {}
            for row in rows:
                partitions.setdefault(shard_of(row, self._n_shards), []).append(row)
            for shard, part_rows in partitions.items():
                blob = seal_rows(part_rows)
                shm = shared_memory.SharedMemory(create=True, size=max(len(blob), 1))
                shm.buf[: len(blob)] = blob
                key = (predicate, shard)
                self._segments[key] = (shm, len(blob), arity)
                self._segment_rows[key] = len(part_rows)
                self._telemetry["shared_mem_remaps"] += 1

    def _drop_segments(self) -> None:
        for shm, _, _ in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._segments = {}
        self._segment_rows = {}

    # -- ExecutorPolicy ----------------------------------------------------
    def map(self, tasks):
        # Closures cannot cross a process boundary; the engine dispatches
        # through run_rule_tasks instead and keeps closure-shaped work
        # (e.g. parallel stratum batches) inline.
        return [task() for task in tasks]

    def _ensure_pool(self) -> None:
        with self._lock:
            if self._procs:
                return
            if self._closed:
                raise RuntimeError(
                    "ProcessExecutor was closed; syncs streamed to the old "
                    "workers are gone, so only a fresh reset() (an engine "
                    "full run) may re-open it"
                )
            if self._baseline is None:
                raise RuntimeError("ProcessExecutor dispatched before reset()")
            for _ in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                parent_conn.send_bytes(self._baseline)
                self._telemetry["bytes_to_workers"] += len(self._baseline)
                self._procs.append(proc)
                self._conns.append(parent_conn)
            self._subscribed = [set() for _ in range(self.workers)]
            self._replica_rows = [self._baseline_rows] * self.workers

    def _discard_pool(self) -> None:
        """Tear the worker processes down without closing the executor —
        only safe right after a reset(), when the fresh baseline (plus
        queued syncs) fully determines replica state and _ensure_pool may
        respawn from it."""
        with self._lock:
            procs, self._procs = self._procs, []
            conns, self._conns = self._conns, []
        for proc in procs:
            proc.terminate()
            proc.join(timeout=1)
        for conn in conns:
            conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            procs, self._procs = self._procs, []
            conns, self._conns = self._conns, []
        stop = pickle.dumps(("stop",), -1)
        for conn in conns:
            try:
                conn.send_bytes(stop)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in conns:
            conn.close()
        self._drop_segments()
