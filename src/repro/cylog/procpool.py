"""Process-based evaluation: GIL-free workers holding replica stores.

The thread pool in :mod:`repro.cylog.sharding` is bound by the
interpreter lock — per-shard tasks are pure Python joins, so worker
threads serialise on the GIL and multi-worker speedups stall.  The
:class:`ProcessExecutor` moves the same tasks into worker *processes*:

* Each worker holds a **replica** of the engine's relation store (a plain
  :class:`~repro.cylog.engine.RelationStore` — lookups over the same
  facts return the same row sets as any sharded layout) plus the compiled
  join plans, installed once per full run by a ``reset`` message.
* Between dispatches the engine streams its own mutation ledger — the
  same net deltas it already tracks for incremental evaluation — as
  ``sync`` messages, so replicas never re-ship the whole store.
* Tasks travel as **picklable descriptors** ``(rule index, plan
  position, delta rows)`` — the rows are the shard-aligned delta
  partitions produced by
  :func:`~repro.cylog.sharding.split_rows_by_shard`, and the plan is
  referenced by its position in the already-shipped compiled program
  (the fingerprint), so per-task payloads stay delta-sized.
* Results (derived rows + support keys + a scratch
  :class:`~repro.cylog.engine.EngineStats`) come back tagged with the
  submission index and are returned **in submission order**, so the
  engine's serial merge produces bit-identical fixpoints, deltas and
  derivation counters at any worker count — the same determinism
  contract the thread pool honours.

Every connection is a FIFO pipe, so a ``sync`` sent before a ``tasks``
message is always applied first; no acknowledgement round-trips are
needed.  Workers are spawned lazily (``fork`` where available, falling
back to ``spawn``) and torn down by ``close()``.

The replica-per-worker layout trades memory for simplicity; a
shared-memory store (and shard-pruned replicas that only hold the
partitions a worker's tasks probe) is the recorded follow-up on the
roadmap.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import traceback
from typing import Any, Sequence

from repro.cylog.sharding import ExecutorPolicy

Tuple_ = tuple[Any, ...]
#: One shipped task: (rule index, join-plan position of the delta atom —
#: ``None`` for a full round-0 evaluation — and the delta partition rows).
TaskDescriptor = tuple[int, "int | None", "tuple[Tuple_, ...] | None"]


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class _WorkerState:
    """Everything one worker process knows: plans + replica store."""

    __slots__ = ("compiled", "store")

    def __init__(self, compiled, base_facts: dict) -> None:
        from repro.cylog.engine import RelationStore

        self.compiled = compiled
        self.store = RelationStore(compiled.index_specs())
        for predicate, rows in base_facts.items():
            if not rows:
                continue
            relation = self.store.get(predicate, len(next(iter(rows))))
            for row in rows:
                relation.add(row)
        # Mirror the engine's full run: head relations exist (empty) from
        # the start, so a probe against a not-yet-derived head counts an
        # index hit exactly as it does on the engine's store — keeping the
        # scratch counters byte-identical to the thread pool's.
        for rule in compiled.rules:
            self.store.get(rule.rule.head.predicate, rule.rule.head.arity)


def _apply_sync(state: _WorkerState, adds: dict, removes: dict) -> None:
    """Apply one net change set to the replica (removals first — a net
    ledger never holds the same row on both sides)."""
    for predicate, rows in removes.items():
        relation = state.store.maybe(predicate)
        if relation is not None:
            for row in rows:
                relation.discard(row)
    for predicate, rows in adds.items():
        if not rows:
            continue
        relation = state.store.get(predicate, len(next(iter(rows))))
        for row in rows:
            relation.add(row)


def _run_task(
    state: _WorkerState,
    rule_index: int,
    position: int | None,
    rows: tuple[Tuple_, ...] | None,
):
    """Evaluate one task descriptor — the process twin of the engine's
    ``_rule_delta_task`` / round-0 closures, against the replica store."""
    from repro.cylog.engine import (
        EngineStats,
        _head_tuple,
        _relation_from,
        solutions,
        support_key_for,
    )

    rule = state.compiled.rules[rule_index]
    scratch = EngineStats()
    if position is None:
        bindings_iter = solutions(rule.join_plan, state.store, stats=scratch)
    else:
        scratch.shard_tasks = 1
        literal = rule.join_plan.steps[position].literal
        delta_rel = _relation_from(set(rows), state.store.maybe(literal.predicate))
        delta_plan = rule.delta_plans.get(position)
        if delta_plan is not None:
            bindings_iter = solutions(
                delta_plan,
                state.store,
                delta_position=0,
                delta_relation=delta_rel,
                stats=scratch,
            )
        else:
            bindings_iter = solutions(
                rule.join_plan,
                state.store,
                delta_position=position,
                delta_relation=delta_rel,
                stats=scratch,
            )
    derived = [
        (_head_tuple(rule, b), support_key_for(rule_index, rule, b))
        for b in bindings_iter
    ]
    return derived, scratch


def _worker_main(conn) -> None:
    """Worker loop: apply resets/syncs in arrival order, evaluate tasks.

    Messages travel as raw pickled bytes (``send_bytes``/``recv_bytes``):
    the parent serialises each broadcast payload *once* and writes the
    same bytes to every worker pipe, instead of re-pickling per worker.
    """
    state: _WorkerState | None = None
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except EOFError:  # parent went away
            return
        kind = message[0]
        try:
            if kind == "stop":
                return
            if kind == "reset":
                state = _WorkerState(message[1], message[2])
            elif kind == "sync":
                if state is not None:
                    _apply_sync(state, message[1], message[2])
            elif kind == "tasks":
                if state is None:
                    raise RuntimeError("process worker received tasks before reset")
                results = [
                    (index, *_run_task(state, rule_index, position, rows))
                    for index, (rule_index, position, rows) in message[1]
                ]
                conn.send_bytes(pickle.dumps(("results", results), -1))
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker message {kind!r}")
        except BaseException:
            try:
                conn.send_bytes(
                    pickle.dumps(("error", traceback.format_exc()), -1)
                )
            except (BrokenPipeError, OSError):  # pragma: no cover
                return


class ProcessExecutor(ExecutorPolicy):
    """Fan evaluation tasks out to worker processes with replica stores.

    The engine talks to it through three calls: :meth:`reset` installs a
    new baseline (compiled program — whose base facts seed the replica),
    :meth:`sync` queues the engine's net store changes since the last
    dispatch, and :meth:`run_rule_tasks` ships task descriptors and
    returns their results in submission order.  Workers are spawned on
    the first dispatch; pending baseline and syncs are replayed to them
    through the FIFO pipe before any task, so a replica is always current
    when it evaluates.
    """

    name = "process"
    distributed = True

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.workers = max_workers
        self._ctx = _mp_context()
        self._procs: list = []
        self._conns: list = []
        self._baseline: bytes | None = None
        self._pending_syncs: list[bytes] = []
        #: Set by close() (and by a mid-dispatch worker death).  A closed
        #: executor refuses to dispatch: respawning from the last baseline
        #: would silently lose every sync already streamed to the old
        #: workers.  A fresh reset() re-opens it — the new baseline plus
        #: later syncs fully determine replica state again.
        self._closed = False
        self._lock = threading.Lock()

    # -- engine-facing protocol -------------------------------------------
    def reset(self, compiled, base_facts: dict) -> None:
        """Install a new baseline (full run): plans + live base facts."""
        # Serialised once; the same bytes go to every (current and future)
        # worker pipe.
        self._baseline = pickle.dumps(("reset", compiled, base_facts), -1)
        self._pending_syncs.clear()
        self._closed = False
        for conn in self._conns:
            conn.send_bytes(self._baseline)

    def sync(self, adds: dict, removes: dict) -> None:
        """Queue one net change set; broadcast at the next dispatch."""
        if adds or removes:
            self._pending_syncs.append(pickle.dumps(("sync", adds, removes), -1))

    def run_rule_tasks(self, descriptors: Sequence[TaskDescriptor]) -> list:
        """Evaluate descriptors on the pool; results in submission order."""
        self._ensure_pool()
        if self._pending_syncs:
            for payload in self._pending_syncs:
                for conn in self._conns:
                    conn.send_bytes(payload)
            self._pending_syncs.clear()
        # Stripe tasks across workers; the submission index travels with
        # each task so the results can be re-ordered deterministically.
        per_worker: list[list[tuple[int, TaskDescriptor]]] = [
            [] for _ in self._conns
        ]
        for index, descriptor in enumerate(descriptors):
            per_worker[index % len(per_worker)].append((index, descriptor))
        busy = []
        for conn, batch in zip(self._conns, per_worker):
            if batch:
                conn.send_bytes(pickle.dumps(("tasks", batch), -1))
                busy.append(conn)
        results: list = [None] * len(descriptors)
        errors: list[str] = []
        # Every busy pipe is drained even when one worker reports an
        # error — an unread reply would desync the FIFO protocol and hand
        # the *next* dispatch a stale result batch.
        for conn in busy:
            try:
                reply = pickle.loads(conn.recv_bytes())
            except EOFError:
                self.close()  # a dead worker leaves replicas unrecoverable
                raise RuntimeError(
                    "process worker died mid-dispatch; executor closed "
                    "(a full run / reset() re-opens it)"
                ) from None
            if reply[0] == "error":
                errors.append(reply[1])
            else:
                for index, derived, scratch in reply[1]:
                    results[index] = (derived, scratch)
        if errors:
            raise RuntimeError("process worker failed:\n" + "\n".join(errors))
        return results

    # -- ExecutorPolicy ----------------------------------------------------
    def map(self, tasks):
        # Closures cannot cross a process boundary; the engine dispatches
        # through run_rule_tasks instead and keeps closure-shaped work
        # (e.g. parallel stratum batches) inline.
        return [task() for task in tasks]

    def _ensure_pool(self) -> None:
        with self._lock:
            if self._procs:
                return
            if self._closed:
                raise RuntimeError(
                    "ProcessExecutor was closed; syncs streamed to the old "
                    "workers are gone, so only a fresh reset() (an engine "
                    "full run) may re-open it"
                )
            if self._baseline is None:
                raise RuntimeError("ProcessExecutor dispatched before reset()")
            for _ in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                parent_conn.send_bytes(self._baseline)
                self._procs.append(proc)
                self._conns.append(parent_conn)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            procs, self._procs = self._procs, []
            conns, self._conns = self._conns, []
        stop = pickle.dumps(("stop",), -1)
        for conn in conns:
            try:
                conn.send_bytes(stop)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in conns:
            conn.close()
