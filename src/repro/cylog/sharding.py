"""Hash-sharded relation storage and pluggable evaluation executors.

This module is the engine's concurrency story.  Two orthogonal pieces:

* :class:`ShardedRelation` / :class:`ShardedRelationStore` — drop-in
  replacements for :class:`~repro.cylog.engine.Relation` /
  :class:`~repro.cylog.engine.RelationStore` that hash-partition every
  relation by *key prefix* (the tuple's first position, routed through the
  process-independent :func:`~repro.cylog.indexes.stable_hash`).  Each
  shard keeps its own tuple set and its own incrementally maintained
  :class:`~repro.cylog.indexes.MultiKeyHashIndex` family, so lookups whose
  index key covers position 0 probe exactly one shard and delta
  propagation can be partitioned shard-by-shard.  ``snapshot()`` unions
  the shards, so a sharded store is *byte-identical* to the single store
  it replaces — the property the ``shard-diff`` CI oracle gates on — and
  ``fingerprint()`` / ``shard_fingerprints()`` give stable digests for
  cheap cross-configuration comparisons.

* :class:`ExecutorPolicy` — where per-shard / per-stratum evaluation
  tasks run.  :class:`SerialExecutor` runs them inline;
  :class:`ThreadedExecutor` fans them out to worker threads.  Both
  return results in submission order, and the engine merges them
  serially in that order, so evaluation results (and the derivation
  counters in ``EngineStats``) are identical at any worker count.  Tiny
  rounds are kept inline via ``ShardConfig.min_parallel_rows`` — the
  fan-out must never cost more than it saves on the small-delta churn
  the incremental engine is optimised for.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.cylog.engine import Relation, RelationStore
from repro.cylog.indexes import stable_hash

Tuple_ = tuple[Any, ...]
T = TypeVar("T")

EXECUTORS = ("serial", "thread")


def shard_of(row: Sequence[Any], n_shards: int) -> int:
    """The shard owning ``row``: its key prefix hashed mod ``n_shards``.

    Zero-arity rows (no prefix to hash) all live in shard 0.
    """
    if n_shards <= 1 or not row:
        return 0
    return stable_hash(row[0]) % n_shards


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class ExecutorPolicy:
    """Strategy for running a batch of independent evaluation tasks.

    ``map`` returns the task results **in submission order** regardless of
    completion order; the engine's serial merge relies on that for
    bit-identical results at any worker count.
    """

    name = "executor"
    workers = 1

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for inline executors)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} executor ({self.workers} workers)>"


class SerialExecutor(ExecutorPolicy):
    """Run every task inline on the calling thread."""

    name = "serial"

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]


class ThreadedExecutor(ExecutorPolicy):
    """Fan tasks out to a lazily created pool of worker threads.

    The pool is created on first use (a serial-sized workload never spawns
    threads) and shut down by :meth:`close`.
    """

    name = "thread"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.workers = max_workers
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="cylog-shard"
                )
            return self._pool

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


@dataclass(frozen=True)
class ShardConfig:
    """How an engine shards its store and where evaluation tasks run.

    ``min_parallel_rows`` keeps small rounds inline: the thread fan-out is
    only engaged when the driving delta carries at least this many rows,
    so steady-state churn (a handful of facts per round) never pays
    dispatch overhead.
    """

    shards: int = 1
    executor: str = "serial"
    max_workers: int | None = None
    min_parallel_rows: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )

    def build_executor(self) -> ExecutorPolicy:
        if self.executor == "thread":
            return ThreadedExecutor(self.max_workers or 4)
        return SerialExecutor()

    @property
    def sharded(self) -> bool:
        return self.shards > 1


# ---------------------------------------------------------------------------
# Sharded relations
# ---------------------------------------------------------------------------


class ShardedRelation:
    """A relation hash-partitioned into N per-shard :class:`Relation` s.

    Mirrors the :class:`~repro.cylog.engine.Relation` API the engine
    consumes.  Rows are routed by :func:`shard_of` on their first
    position; an index lookup whose key covers position 0 routes to a
    single shard, any other probe chains the per-shard buckets (the
    buckets stay live sets — callers must not mutate the result).
    """

    __slots__ = ("arity", "n_shards", "_shards", "_index_specs")

    def __init__(
        self,
        arity: int,
        n_shards: int,
        index_specs: Iterable[tuple[int, ...]] = (),
    ) -> None:
        self.arity = arity
        self.n_shards = n_shards
        self._index_specs = tuple(index_specs)
        self._shards = [Relation(arity, self._index_specs) for _ in range(n_shards)]

    def shard_of(self, row: Tuple_) -> int:
        return shard_of(row, self.n_shards)

    def shard(self, shard_id: int) -> Relation:
        return self._shards[shard_id]

    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(len(shard) for shard in self._shards)

    def add(self, row: Tuple_) -> bool:
        return self._shards[shard_of(row, self.n_shards)].add(row)

    def add_many(self, rows: Iterable[Tuple_]) -> set[Tuple_]:
        added = set()
        for row in rows:
            if self.add(row):
                added.add(row)
        return added

    def discard(self, row: Tuple_) -> bool:
        return self._shards[shard_of(row, self.n_shards)].discard(row)

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        for shard in self._shards:
            shard.ensure_index(positions)

    def lookup(self, positions: tuple[int, ...], key: Tuple_):
        """Rows whose ``positions`` project onto ``key``.

        When the key covers position 0 the shard is known and exactly one
        per-shard index is probed; otherwise the per-shard buckets are
        chained (live view, do not mutate).
        """
        for offset, position in enumerate(positions):
            if position == 0:
                target = shard_of((key[offset],), self.n_shards)
                return self._shards[target].lookup(positions, key)
        return _ChainedRows(
            [shard.lookup(positions, key) for shard in self._shards]
        )

    def match(self, pattern: Sequence[Any]) -> Iterable[Tuple_]:
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        return self.lookup(positions, tuple(pattern[p] for p in positions))

    def __contains__(self, row: Tuple_) -> bool:
        return row in self._shards[shard_of(row, self.n_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[Tuple_]:
        for shard in self._shards:
            yield from shard

    def snapshot(self) -> frozenset:
        return frozenset().union(*(shard.snapshot() for shard in self._shards))


class _ChainedRows:
    """A read-only chained view over per-shard row sets.

    Supports exactly what the join layer needs from a lookup result —
    ``len``, truthiness and iteration — without copying the buckets.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: list) -> None:
        self._parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def __bool__(self) -> bool:
        return any(self._parts)

    def __iter__(self) -> Iterator[Tuple_]:
        for part in self._parts:
            yield from part


class ShardedRelationStore(RelationStore):
    """Predicate name -> :class:`ShardedRelation`, creating on first use.

    The drop-in sharded counterpart of
    :class:`~repro.cylog.engine.RelationStore` — a subclass substituting
    the relation factory, so lookup, arity validation, ``snapshot()``
    shape (per-shard sets are unioned) and ``fingerprint()`` are literally
    the single store's code and every byte-identity oracle sees exactly
    what the single store would produce.
    """

    def __init__(
        self,
        n_shards: int,
        index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        super().__init__(index_specs)
        self.n_shards = n_shards

    def _make_relation(
        self, arity: int, index_specs: Iterable[tuple[int, ...]]
    ) -> ShardedRelation:
        return ShardedRelation(arity, self.n_shards, index_specs)

    def shard_fingerprints(self) -> tuple[str, ...]:
        """One stable digest per shard (cross-process comparable thanks to
        :func:`~repro.cylog.indexes.stable_hash` routing)."""
        return tuple(
            fingerprint_snapshot(
                {
                    name: rel.shard(shard_id).snapshot()
                    for name, rel in self._relations.items()
                }
            )
            for shard_id in range(self.n_shards)
        )

    def shard_sizes(self) -> dict[str, tuple[int, ...]]:
        return {name: rel.shard_sizes() for name, rel in self._relations.items()}


def fingerprint_snapshot(snapshot: Mapping[str, frozenset]) -> str:
    """A stable content digest of a relation snapshot.

    Rows are serialised by ``repr`` and sorted, so two stores agree on the
    fingerprint exactly when their snapshots are byte-identical —
    regardless of sharding, worker count or hash randomisation.
    """
    digest = hashlib.sha256()
    for predicate in sorted(snapshot):
        digest.update(predicate.encode("utf-8"))
        digest.update(b"\x00")
        for row in sorted(snapshot[predicate], key=repr):
            digest.update(repr(row).encode("utf-8"))
            digest.update(b"\x01")
    return digest.hexdigest()


def split_rows_by_shard(
    rows: Iterable[Tuple_], n_shards: int
) -> list[tuple[int, set[Tuple_]]]:
    """Partition ``rows`` into per-shard sets, ascending shard id.

    Empty shards are omitted, so fanning a delta out produces only tasks
    with actual work.  The partition is a pure function of the rows, so
    the engine's merge order (shard id order) is deterministic.
    """
    parts: dict[int, set[Tuple_]] = {}
    for row in rows:
        parts.setdefault(shard_of(row, n_shards), set()).add(row)
    return sorted(parts.items())


def build_store(
    config: ShardConfig,
    index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
) -> "RelationStore | ShardedRelationStore":
    """The store a :class:`ShardConfig` calls for: plain when unsharded."""
    if config.sharded:
        return ShardedRelationStore(config.shards, index_specs)
    return RelationStore(index_specs)
