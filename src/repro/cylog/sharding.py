"""Hash-sharded relation storage and pluggable evaluation executors.

This module is the engine's concurrency story.  Two orthogonal pieces:

* :class:`ShardedRelation` / :class:`ShardedRelationStore` — drop-in
  replacements for :class:`~repro.cylog.engine.Relation` /
  :class:`~repro.cylog.engine.RelationStore` that hash-partition every
  relation by *key prefix* (the tuple's first position, routed through the
  process-independent :func:`~repro.cylog.indexes.stable_hash`).  Each
  shard keeps its own tuple set and its own incrementally maintained
  :class:`~repro.cylog.indexes.MultiKeyHashIndex` family, so lookups whose
  index key covers position 0 probe exactly one shard and delta
  propagation can be partitioned shard-by-shard.  ``snapshot()`` unions
  the shards, so a sharded store is *byte-identical* to the single store
  it replaces — the property the ``shard-diff`` CI oracle gates on — and
  ``fingerprint()`` / ``shard_fingerprints()`` give stable digests for
  cheap cross-configuration comparisons.

* **Exchange repartitioning** — a :class:`ShardedRelation` can keep, next
  to its primary key-prefix partitioning, *repartitions*: full copies of
  the relation re-hashed on another term position, maintained
  incrementally on every ``add``/``discard`` exactly like the hash
  indexes.  A lookup whose index key misses position 0 — which would
  otherwise chain every shard's bucket — routes to a single repartition
  shard instead.  The join planner decides which repartitions exist
  (``PlanStep.exchange_position`` / ``CompiledProgram.repartition_specs``
  in :mod:`repro.cylog.safety`), weighing the duplicate-copy maintenance
  cost against the per-probe chained-lookup cost; both sides of a
  non-prefix join then align on the same shard of the join key, which is
  also what lets per-(rule, target-shard) evaluation tasks ship one
  partition each to process workers.

* :class:`ExecutorPolicy` — where per-shard / per-stratum evaluation
  tasks run.  :class:`SerialExecutor` runs them inline;
  :class:`ThreadedExecutor` fans them out to worker threads;
  :class:`~repro.cylog.procpool.ProcessExecutor` ships picklable task
  descriptors to worker processes holding replica stores (GIL-free, see
  :mod:`repro.cylog.procpool`).  All of them return results in
  submission order, and the engine merges them serially in that order,
  so evaluation results (and the derivation counters in ``EngineStats``)
  are identical at any worker count.  Tiny rounds are kept inline via
  ``ShardConfig.min_parallel_rows`` — the fan-out must never cost more
  than it saves on the small-delta churn the incremental engine is
  optimised for.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import marshal
import pickle
import threading
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    TypeVar,
)

from repro.cylog.ast import Atom, BodyLiteral, Negation
from repro.cylog.engine import Relation, RelationStore
from repro.cylog.indexes import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cylog.safety import CompiledProgram

Tuple_ = tuple[Any, ...]
T = TypeVar("T")

EXECUTORS = ("serial", "thread", "process")
REPLICA_MODES = ("full", "pruned", "shared")


def shard_of_value(value: Any, n_shards: int) -> int:
    """The shard a single routing value hashes to."""
    if n_shards <= 1:
        return 0
    return stable_hash(value) % n_shards


def shard_of(row: Sequence[Any], n_shards: int, position: int = 0) -> int:
    """The shard owning ``row``: the value at ``position`` hashed mod
    ``n_shards``.  Position 0 (the default) is the primary key-prefix
    routing; exchange repartitions route on other positions.

    Zero-arity rows (no value to hash) all live in shard 0.
    """
    if n_shards <= 1 or not row:
        return 0
    return stable_hash(row[position]) % n_shards


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class ExecutorPolicy:
    """Strategy for running a batch of independent evaluation tasks.

    ``map`` returns the task results **in submission order** regardless of
    completion order; the engine's serial merge relies on that for
    bit-identical results at any worker count.
    """

    name = "executor"
    workers = 1
    #: True when workers live in other processes and cannot see the
    #: engine's store: tasks must be shipped as picklable descriptors
    #: (see :mod:`repro.cylog.procpool`), not closures.
    distributed = False

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for inline executors)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} executor ({self.workers} workers)>"


class SerialExecutor(ExecutorPolicy):
    """Run every task inline on the calling thread."""

    name = "serial"

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]


class ThreadedExecutor(ExecutorPolicy):
    """Fan tasks out to a lazily created pool of worker threads.

    The pool is created on first use (a serial-sized workload never spawns
    threads) and shut down by :meth:`close`.
    """

    name = "thread"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.workers = max_workers
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="cylog-shard"
                )
            return self._pool

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


@dataclass(frozen=True)
class ShardConfig:
    """How an engine shards its store and where evaluation tasks run.

    ``min_parallel_rows`` keeps small rounds inline: the thread fan-out is
    only engaged when the driving delta carries at least this many rows,
    so steady-state churn (a handful of facts per round) never pays
    dispatch overhead.

    ``exchange`` enables the exchange operator: the join planner may emit
    repartition steps for probes whose index key misses the shard key
    prefix, trading one incrementally maintained re-hashed copy of the
    relation for single-shard probes instead of chained ones.  Disabling
    it keeps the chained-lookup behaviour (and the single store's join
    plans) — the A/B knob the E10f bench uses.

    ``replica_mode`` shapes the process-worker replicas (ignored by the
    serial and thread executors, which share the engine's store):
    ``"full"`` gives every worker a complete replica synced by broadcast;
    ``"pruned"`` subscribes each worker to only the (relation, shard)
    partitions its task classes probe, with lazy partition backfill;
    ``"shared"`` additionally maps baseline partitions out of
    ``multiprocessing.shared_memory`` sealed row blocks instead of
    copying them through pipes.  All modes are bit-identical.

    ``interval`` enables the interval access path: eligible
    transitive-closure strata are answered from an engine-side
    :class:`~repro.cylog.indexes.IntervalHierarchyIndex` (single range
    scans) instead of fixpoint joins, whenever the edge relation is a
    forest at run time.  The index lives beside the engine and bypasses
    worker replicas entirely — interval-answered strata never dispatch to
    the pool — so the flag composes with every executor and replica mode.
    Disabling it keeps the fixpoint behaviour (the A/B knob the E13 bench
    and the interval diff-oracle legs use).  Either way results are
    bit-identical.
    """

    shards: int = 1
    executor: str = "serial"
    max_workers: int | None = None
    min_parallel_rows: int = 64
    exchange: bool = True
    replica_mode: str = "full"
    interval: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        if self.replica_mode not in REPLICA_MODES:
            raise ValueError(
                f"unknown replica_mode {self.replica_mode!r}; expected one of "
                f"{REPLICA_MODES}"
            )

    def build_executor(self) -> ExecutorPolicy:
        if self.executor == "thread":
            return ThreadedExecutor(self.max_workers or 4)
        if self.executor == "process":
            from repro.cylog.procpool import ProcessExecutor

            return ProcessExecutor(
                self.max_workers or 4, replica_mode=self.replica_mode
            )
        return SerialExecutor()

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    @property
    def plan_shards(self) -> int:
        """The shard count the join planner should see: repartition steps
        are only emitted when the exchange operator is enabled, so with
        ``exchange=False`` plans are compiled exactly as for the single
        store (the chained baseline keeps plan parity)."""
        return self.shards if self.exchange else 1


# ---------------------------------------------------------------------------
# Sharded relations
# ---------------------------------------------------------------------------


class ShardedRelation:
    """A relation hash-partitioned into N per-shard :class:`Relation` s.

    Mirrors the :class:`~repro.cylog.engine.Relation` API the engine
    consumes.  Rows are routed by :func:`shard_of` on their first
    position; an index lookup whose key covers position 0 routes to a
    single shard.  Other probes chain the per-shard buckets (the buckets
    stay live sets — callers must not mutate the result) — unless an
    *exchange repartition* is registered on one of the key's positions
    via :meth:`ensure_repartition`, in which case the probe routes to a
    single shard of the re-hashed copy instead.
    """

    __slots__ = ("arity", "n_shards", "_shards", "_index_specs", "_repartitions")

    def __init__(
        self,
        arity: int,
        n_shards: int,
        index_specs: Iterable[tuple[int, ...]] = (),
        repartition_positions: Iterable[int] = (),
    ) -> None:
        self.arity = arity
        self.n_shards = n_shards
        self._index_specs = tuple(index_specs)
        self._shards = [Relation(arity, self._index_specs) for _ in range(n_shards)]
        #: position -> per-shard re-hashed copies of the whole relation.
        self._repartitions: dict[int, list[Relation]] = {}
        for position in repartition_positions:
            self.ensure_repartition(position)

    def shard_of(self, row: Tuple_) -> int:
        return shard_of(row, self.n_shards)

    def shard(self, shard_id: int) -> Relation:
        return self._shards[shard_id]

    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(len(shard) for shard in self._shards)

    def ensure_repartition(self, position: int) -> None:
        """Register (and backfill) an exchange repartition on ``position``.

        The repartition is a full copy of the relation re-hashed by the
        value at ``position``, maintained incrementally from then on —
        the space-for-probes trade the planner's exchange cost model
        opted into.  Position 0 is the primary partitioning already.
        """
        if position == 0 or position in self._repartitions:
            return
        if not 0 <= position < self.arity:
            raise ValueError(
                f"repartition position {position} out of range for arity "
                f"{self.arity}"
            )
        parts = [Relation(self.arity, self._index_specs) for _ in range(self.n_shards)]
        for shard in self._shards:
            for row in shard:
                parts[shard_of(row, self.n_shards, position)].add(row)
        self._repartitions[position] = parts

    def repartition_positions(self) -> tuple[int, ...]:
        return tuple(sorted(self._repartitions))

    def repartition_shard(self, position: int, shard_id: int) -> Relation:
        return self._repartitions[position][shard_id]

    def add(self, row: Tuple_) -> bool:
        if not self._shards[shard_of(row, self.n_shards)].add(row):
            return False
        for position, parts in self._repartitions.items():
            parts[shard_of(row, self.n_shards, position)].add(row)
        return True

    def add_many(self, rows: Iterable[Tuple_]) -> set[Tuple_]:
        added = set()
        for row in rows:
            if self.add(row):
                added.add(row)
        return added

    def discard(self, row: Tuple_) -> bool:
        if not self._shards[shard_of(row, self.n_shards)].discard(row):
            return False
        for position, parts in self._repartitions.items():
            parts[shard_of(row, self.n_shards, position)].discard(row)
        return True

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        for shard in self._shards:
            shard.ensure_index(positions)
        for parts in self._repartitions.values():
            for part in parts:
                part.ensure_index(positions)

    def lookup(self, positions: tuple[int, ...], key: Tuple_):
        """Rows whose ``positions`` project onto ``key``.

        When the key covers position 0 the shard is known and exactly one
        per-shard index is probed.  When it covers a registered exchange
        repartition instead, one shard of the re-hashed copy is probed.
        Otherwise the per-shard buckets are chained (live view, do not
        mutate).
        """
        for offset, position in enumerate(positions):
            if position == 0:
                target = shard_of_value(key[offset], self.n_shards)
                return self._shards[target].lookup(positions, key)
        if self._repartitions:
            for offset, position in enumerate(positions):
                parts = self._repartitions.get(position)
                if parts is not None:
                    target = shard_of_value(key[offset], self.n_shards)
                    return parts[target].lookup(positions, key)
        return _ChainedRows(
            [shard.lookup(positions, key) for shard in self._shards]
        )

    def match(self, pattern: Sequence[Any]) -> Iterable[Tuple_]:
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        return self.lookup(positions, tuple(pattern[p] for p in positions))

    def __contains__(self, row: Tuple_) -> bool:
        return row in self._shards[shard_of(row, self.n_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[Tuple_]:
        for shard in self._shards:
            yield from shard

    def snapshot(self) -> frozenset:
        return frozenset().union(*(shard.snapshot() for shard in self._shards))


class _ChainedRows:
    """A read-only chained view over per-shard row sets.

    Supports exactly what the join layer needs from a lookup result —
    ``len``, truthiness and iteration — without copying the buckets.
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: list) -> None:
        self._parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def __bool__(self) -> bool:
        return any(self._parts)

    def __iter__(self) -> Iterator[Tuple_]:
        for part in self._parts:
            yield from part


class ShardedRelationStore(RelationStore):
    """Predicate name -> :class:`ShardedRelation`, creating on first use.

    The drop-in sharded counterpart of
    :class:`~repro.cylog.engine.RelationStore` — a subclass substituting
    the relation factory, so lookup, arity validation, ``snapshot()``
    shape (per-shard sets are unioned) and ``fingerprint()`` are literally
    the single store's code and every byte-identity oracle sees exactly
    what the single store would produce.
    """

    def __init__(
        self,
        n_shards: int,
        index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
        repartition_specs: Mapping[str, Iterable[int]] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        super().__init__(index_specs)
        self.n_shards = n_shards
        #: predicate -> exchange repartition positions, applied to each
        #: relation as it is created (plus late registrations).
        self._repartition_specs: dict[str, set[int]] = {
            pred: set(positions)
            for pred, positions in (repartition_specs or {}).items()
        }

    def _make_relation(
        self, predicate: str, arity: int, index_specs: Iterable[tuple[int, ...]]
    ) -> ShardedRelation:
        positions = self._repartition_specs.get(predicate, ())
        return ShardedRelation(
            arity,
            self.n_shards,
            index_specs,
            repartition_positions=sorted(
                p for p in positions if 0 < p < arity
            ),
        )

    def ensure_repartition(self, predicate: str, position: int) -> None:
        """Register an exchange repartition, now or when the relation is
        created (runtime-built plans may precede the first fact)."""
        self._repartition_specs.setdefault(predicate, set()).add(position)
        relation = self._relations.get(predicate)
        if relation is not None and 0 < position < relation.arity:
            relation.ensure_repartition(position)

    def shard_fingerprints(self) -> tuple[str, ...]:
        """One stable digest per shard (cross-process comparable thanks to
        :func:`~repro.cylog.indexes.stable_hash` routing)."""
        return tuple(
            fingerprint_snapshot(
                {
                    name: rel.shard(shard_id).snapshot()
                    for name, rel in self._relations.items()
                }
            )
            for shard_id in range(self.n_shards)
        )

    def shard_sizes(self) -> dict[str, tuple[int, ...]]:
        return {name: rel.shard_sizes() for name, rel in self._relations.items()}


def fingerprint_snapshot(snapshot: Mapping[str, frozenset]) -> str:
    """A stable content digest of a relation snapshot.

    Rows are serialised by ``repr`` and sorted, so two stores agree on the
    fingerprint exactly when their snapshots are byte-identical —
    regardless of sharding, worker count or hash randomisation.
    """
    digest = hashlib.sha256()
    for predicate in sorted(snapshot):
        digest.update(predicate.encode("utf-8"))
        digest.update(b"\x00")
        for row in sorted(snapshot[predicate], key=repr):
            digest.update(repr(row).encode("utf-8"))
            digest.update(b"\x01")
    return digest.hexdigest()


def split_rows_by_shard(
    rows: Iterable[Tuple_], n_shards: int, position: int = 0
) -> list[tuple[int, set[Tuple_]]]:
    """Partition ``rows`` into per-shard sets, ascending shard id.

    ``position`` selects the routing value — 0 is the primary key-prefix
    partition; a delta-first plan whose next probe routes on a join key
    bound at another position of the leading atom splits there instead,
    so every task's probes land on a single target shard (the exchange
    operator's task-alignment half).

    Empty shards are omitted, so fanning a delta out produces only tasks
    with actual work.  The partition is a pure function of the rows, so
    the engine's merge order (shard id order) is deterministic.
    """
    parts: dict[int, set[Tuple_]] = {}
    for row in rows:
        parts.setdefault(shard_of(row, n_shards, position), set()).add(row)
    return sorted(parts.items())


def build_store(
    config: ShardConfig,
    index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None,
    repartition_specs: Mapping[str, Iterable[int]] | None = None,
) -> "RelationStore | ShardedRelationStore":
    """The store a :class:`ShardConfig` calls for: plain when unsharded."""
    if config.sharded:
        return ShardedRelationStore(
            config.shards,
            index_specs,
            repartition_specs if config.exchange else None,
        )
    return RelationStore(index_specs)


# ---------------------------------------------------------------------------
# Partition coverage, partitioned sync ledger, sealed row blocks
# ---------------------------------------------------------------------------
#
# The three building blocks of shard-pruned worker replicas
# (:mod:`repro.cylog.procpool`): :func:`probe_partitions` computes which
# (relation, primary shard) partitions one evaluation task can read, the
# :class:`PartitionedLedger` records engine mutations already split into
# those partitions, and :func:`seal_rows` / :func:`unseal_rows` give a
# pickle-free wire/shared-memory format for whole partitions.


def _probed_atom(literal: BodyLiteral) -> Atom | None:
    """The atom a plan step reads from the store, if any (comparisons and
    assignments filter bindings without touching relations)."""
    if isinstance(literal, Negation):
        return literal.atom
    if isinstance(literal, Atom):
        return literal
    return None


def probe_partitions(
    compiled: "CompiledProgram",
    n_shards: int,
    rule_index: int,
    position: int | None,
    delta_shard: int | None = None,
) -> set[tuple[str, int]]:
    """The exact set of (predicate, primary shard) partitions the probes
    of one evaluation task can touch.

    A task is ``(rule_index, position, delta_shard)`` exactly as shipped
    to process workers: ``position`` is ``None`` for a round-0 full
    evaluation (every body atom is scanned — all partitions of every
    probed predicate), else the plan position whose semi-naive delta
    drives the join.  The delta rows themselves travel with the task, so
    the leading delta atom is never read from the replica.

    Pruning comes from shard alignment: when the delta plan has a
    ``route_position`` (the engine partitioned delta rows by it) and the
    plan's first keyed probe routes on the shard key prefix via that same
    variable, every probe key's position-0 value hashes to
    ``delta_shard`` — only that one partition of the probed predicate is
    reachable.  Probes through exchange repartitions stay conservative:
    a repartition shard re-hashes rows drawn from *every* primary
    partition, so the worker must hold them all to rebuild it.  All
    later probes take their keys from join bindings and may land
    anywhere.
    """
    rule = compiled.rules[rule_index]
    needed: set[tuple[str, int]] = set()

    def need_all(predicate: str) -> None:
        needed.update((predicate, shard) for shard in range(n_shards))

    if position is None:
        for step in rule.join_plan.steps:
            atom = _probed_atom(step.literal)
            if atom is not None:
                need_all(atom.predicate)
        return needed

    plan = rule.delta_plans.get(position)
    if plan is None:
        # Join-plan fallback: the shipped delta substitutes for the step
        # at ``position``; every other probe may touch any shard.
        for index, step in enumerate(rule.join_plan.steps):
            if index == position:
                continue
            atom = _probed_atom(step.literal)
            if atom is not None:
                need_all(atom.predicate)
        return needed

    prune_first = (
        n_shards > 1 and delta_shard is not None and plan.route_position is not None
    )
    first_probe = True
    for step in plan.steps[1:]:
        atom = _probed_atom(step.literal)
        if atom is None:
            continue
        # ``route_position`` is derived from the first probe: with 0 in
        # the index key it is prefix-aligned (only ``delta_shard``
        # reachable); an exchange-routed first probe reads a repartition
        # rebuilt from every primary partition, so no pruning.
        if first_probe and prune_first and 0 in step.index_positions:
            needed.add((atom.predicate, delta_shard))
        else:
            need_all(atom.predicate)
        first_probe = False
    return needed


class PartitionedLedger:
    """Net added/removed rows keyed by ``(predicate, primary shard)``.

    The distributed engine's unsynced-mutation ledger: rows are routed to
    their primary partition **at mutation time** (``shard_of`` on
    position 0), so flushing to process workers can ship each worker only
    the partitions it subscribes to instead of one broadcast blob.
    ``add`` and ``remove`` cancel each other exactly like
    :class:`~repro.cylog.incremental.DeltaLedger`, leaving the net
    difference against the workers' last-synced state.
    """

    __slots__ = ("n_shards", "_added", "_removed")

    def __init__(self, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._added: dict[tuple[str, int], set[Tuple_]] = {}
        self._removed: dict[tuple[str, int], set[Tuple_]] = {}

    def add(self, predicate: str, row: Tuple_) -> None:
        key = (predicate, shard_of(row, self.n_shards))
        removed = self._removed.get(key)
        if removed is not None and row in removed:
            removed.discard(row)
            if not removed:
                del self._removed[key]
            return
        self._added.setdefault(key, set()).add(row)

    def remove(self, predicate: str, row: Tuple_) -> None:
        key = (predicate, shard_of(row, self.n_shards))
        added = self._added.get(key)
        if added is not None and row in added:
            added.discard(row)
            if not added:
                del self._added[key]
            return
        self._removed.setdefault(key, set()).add(row)

    def __bool__(self) -> bool:
        return bool(self._added or self._removed)

    def row_count(self) -> int:
        """Net rows awaiting sync (adds plus removes) — the engine-side
        ``sync_rows`` telemetry, identical at any worker count."""
        return sum(len(rows) for rows in self._added.values()) + sum(
            len(rows) for rows in self._removed.values()
        )

    def as_partition_mappings(
        self,
    ) -> tuple[
        dict[tuple[str, int], frozenset], dict[tuple[str, int], frozenset]
    ]:
        """Immutable (added, removed) partition-keyed views for
        ``ProcessExecutor.sync``."""
        return (
            {key: frozenset(rows) for key, rows in self._added.items() if rows},
            {key: frozenset(rows) for key, rows in self._removed.items() if rows},
        )


#: Sealed-block tags: marshal for the plain-value rows CyLog programs are
#: made of (str/int/float/bool/None and nested tuples — loaded with zero
#: object-graph walking), pickle only as the fallback for exotic constants.
_SEAL_MARSHAL = b"M"
_SEAL_PICKLE = b"P"


def seal_rows(rows: Iterable[Tuple_]) -> bytes:
    """Serialize ``rows`` into a self-describing sealed block.

    The block is deterministic (rows are sorted by ``repr``, matching the
    store fingerprint's canonical order) and marshal-encoded when the rows
    allow it, so workers mapping a block out of
    ``multiprocessing.shared_memory`` never unpickle parent memory.
    """
    block = sorted(rows, key=repr)
    try:
        return _SEAL_MARSHAL + marshal.dumps(block, 2)
    except ValueError:
        return _SEAL_PICKLE + pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)


def unseal_rows(blob: bytes | bytearray | memoryview) -> list[Tuple_]:
    """Rows back out of a :func:`seal_rows` block (accepts the raw
    shared-memory buffer)."""
    data = bytes(blob)
    tag, payload = data[:1], data[1:]
    if tag == _SEAL_MARSHAL:
        rows = marshal.loads(payload)
    elif tag == _SEAL_PICKLE:
        rows = pickle.loads(payload)
    else:
        raise ValueError(f"unknown sealed-block tag {tag!r}")
    return [tuple(row) for row in rows]
