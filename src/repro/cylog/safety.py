"""Static analysis: rule compilation, safety and stratification.

Three properties are established before a program may run:

**Range restriction (safety).**  Every rule body must admit an evaluation
order in which each negation, comparison and arithmetic operand is fully
bound when reached, and every head variable is bound by the body.

**Task-safety.**  For every *open* (human-evaluated) atom in a rule body,
the variables in its key positions must be derivable from the rest of the
body without consulting the open atom itself — otherwise the processor
could not know which tasks to generate.  The derivation may go through
*other* open predicates, which is exactly how sequential dataflows chain
human steps (translate → verify).

**Stratification.**  Negation and aggregation must not occur inside a
recursive cycle.  Each predicate is assigned a stratum; rules are evaluated
stratum by stratum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cylog.ast import (
    Assignment,
    Atom,
    BodyLiteral,
    Comparison,
    Const,
    Negation,
    OpenDecl,
    Program,
    Rule,
    Var,
    expr_variables,
)
from repro.cylog.errors import CyLogSafetyError, StratificationError
from repro.cylog.pretty import rule_to_source


@dataclass(frozen=True)
class SeedPlan:
    """How to compute task demand for one open atom occurrence.

    ``plan`` is the ordered sub-body to evaluate; the resulting bindings are
    projected onto the open atom's key positions.
    """

    open_atom: Atom
    decl: OpenDecl
    plan: tuple[BodyLiteral, ...]


@dataclass(frozen=True)
class CompiledRule:
    """A rule with its evaluation order, stratum and open-atom seed plans."""

    rule: Rule
    plan: tuple[BodyLiteral, ...]
    stratum: int
    seed_plans: tuple[SeedPlan, ...]


@dataclass(frozen=True)
class CompiledProgram:
    """Statically validated program ready for evaluation."""

    program: Program
    rules: tuple[CompiledRule, ...]
    strata_count: int
    predicate_strata: dict[str, int] = field(compare=False)
    is_monotone: bool = True

    @property
    def open_decls(self) -> dict[str, OpenDecl]:
        return self.program.open_by_name()


# ---------------------------------------------------------------------------
# Plan construction (greedy sideways-information-passing order)
# ---------------------------------------------------------------------------


def _literal_binds(literal: BodyLiteral) -> set[str]:
    """Variables a literal *can* bind once executed."""
    if isinstance(literal, Atom):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Assignment):
        return {literal.var.name} if not literal.var.is_anonymous else set()
    return set()


def _literal_needs(literal: BodyLiteral) -> set[str]:
    """Variables that must already be bound for the literal to be ready."""
    if isinstance(literal, Atom):
        return set()  # positive atoms generate bindings
    if isinstance(literal, Negation):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Comparison):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Assignment):
        return {v.name for v in expr_variables(literal.expr)}
    raise TypeError(f"not a body literal: {literal!r}")


def _atom_bound_score(atom: Atom, bound: set[str]) -> tuple[int, int]:
    """Order heuristic: prefer atoms with more bound terms (selective joins)
    and fewer fresh variables."""
    bound_terms = 0
    fresh = 0
    for term in atom.terms:
        if isinstance(term, Const):
            bound_terms += 1
        elif isinstance(term, Var) and term.name in bound:
            bound_terms += 1
        else:
            fresh += 1
    return (-bound_terms, fresh)


def build_plan(
    literals: Iterable[BodyLiteral],
    exclude: BodyLiteral | None = None,
    best_effort: bool = False,
) -> tuple[tuple[BodyLiteral, ...], set[str]]:
    """Greedily order ``literals`` so every literal is ready when reached.

    Returns ``(plan, bound_variables)``.  With ``best_effort=True`` the
    builder stops silently when nothing more is ready (used for seed plans);
    otherwise unplaceable literals raise :class:`CyLogSafetyError`.
    """
    remaining = [lit for lit in literals if lit is not exclude]
    plan: list[BodyLiteral] = []
    bound: set[str] = set()
    while remaining:
        ready_filters = [
            lit
            for lit in remaining
            if not isinstance(lit, Atom) and _literal_needs(lit) <= bound
        ]
        if ready_filters:
            chosen = ready_filters[0]  # cheap filters as early as possible
        else:
            atoms = [lit for lit in remaining if isinstance(lit, Atom)]
            if not atoms:
                if best_effort:
                    break
                stuck = ", ".join(sorted(_literal_needs(remaining[0]) - bound))
                raise CyLogSafetyError(
                    f"unsafe rule: variable(s) {stuck} are never bound by a "
                    "positive literal"
                )
            chosen = min(
                atoms,
                key=lambda atom: (
                    _atom_bound_score(atom, bound),
                    remaining.index(atom),
                ),
            )
        plan.append(chosen)
        remaining.remove(chosen)
        bound |= _literal_binds(chosen)
    return tuple(plan), bound


# ---------------------------------------------------------------------------
# Stratification
# ---------------------------------------------------------------------------


def _dependency_edges(program: Program) -> list[tuple[str, str, bool]]:
    """Edges ``(body_pred, head_pred, is_negative)``; aggregates make every
    body dependency negative (the head stratum must strictly exceed them)."""
    edges: list[tuple[str, str, bool]] = []
    for rule in program.rules:
        aggregated = rule.head.has_aggregates
        for literal in rule.body:
            if isinstance(literal, Atom):
                edges.append((literal.predicate, rule.head.predicate, aggregated))
            elif isinstance(literal, Negation):
                edges.append((literal.atom.predicate, rule.head.predicate, True))
    return edges


def stratify(program: Program) -> tuple[dict[str, int], int]:
    """Assign a stratum to every predicate.

    Returns ``(predicate -> stratum, number_of_strata)``; raises
    :class:`StratificationError` when negation/aggregation is recursive.
    """
    predicates = sorted(program.predicates())
    edges = _dependency_edges(program)
    sccs = _tarjan_sccs(predicates, edges)
    component_of = {
        pred: index for index, component in enumerate(sccs) for pred in component
    }
    # Negative edge inside one SCC => unstratifiable.
    for source, target, negative in edges:
        if negative and component_of[source] == component_of[target]:
            raise StratificationError(
                f"negation/aggregation through recursion between "
                f"{source!r} and {target!r}"
            )
    # Longest path over the condensation: negative edges add one stratum.
    strata = [0] * len(sccs)
    # SCCs from Tarjan come out in reverse topological order.
    for component_index in range(len(sccs) - 1, -1, -1):
        for source, target, negative in edges:
            if component_of[target] != component_index:
                continue
            source_component = component_of[source]
            if source_component == component_index:
                continue
            candidate = strata[source_component] + (1 if negative else 0)
            if candidate > strata[component_index]:
                strata[component_index] = candidate
    predicate_strata = {
        pred: strata[component_of[pred]] for pred in predicates
    }
    strata_count = max(strata) + 1 if strata else 1
    return predicate_strata, strata_count


def _tarjan_sccs(
    nodes: list[str], edges: list[tuple[str, str, bool]]
) -> list[list[str]]:
    """Iterative Tarjan; returns SCCs in reverse topological order."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for source, target, _ in edges:
        adjacency[source].append(target)
    index_counter = 0
    indexes: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []

    for root in nodes:
        if root in indexes:
            continue
        work = [(root, iter(adjacency[root]))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in indexes:
                    indexes[neighbour] = lowlinks[neighbour] = index_counter
                    index_counter += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(adjacency[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


# ---------------------------------------------------------------------------
# Whole-program compilation
# ---------------------------------------------------------------------------


def compile_program(program: Program) -> CompiledProgram:
    """Validate and compile ``program`` for evaluation."""
    predicate_strata, strata_count = stratify(program)
    opens = program.open_by_name()
    compiled_rules: list[CompiledRule] = []
    monotone = True
    for rule in program.rules:
        if rule.head.has_aggregates:
            monotone = False
        plan, bound = build_plan(rule.body)
        _check_head_bound(rule, bound)
        seed_plans: list[SeedPlan] = []
        for literal in rule.body:
            if isinstance(literal, Negation):
                monotone = False
            if not isinstance(literal, Atom) or literal.predicate not in opens:
                continue
            decl = opens[literal.predicate]
            seed_plan, seed_bound = build_plan(
                rule.body, exclude=literal, best_effort=True
            )
            missing = _unbound_key_vars(literal, decl, seed_bound)
            if missing:
                raise CyLogSafetyError(
                    f"task-unsafe rule {rule_to_source(rule)!r}: key variable(s) "
                    f"{', '.join(sorted(missing))} of open predicate "
                    f"{decl.name!r} cannot be bound without the open atom itself"
                )
            seed_plans.append(
                SeedPlan(open_atom=literal, decl=decl, plan=seed_plan)
            )
        compiled_rules.append(
            CompiledRule(
                rule=rule,
                plan=plan,
                stratum=predicate_strata[rule.head.predicate],
                seed_plans=tuple(seed_plans),
            )
        )
    return CompiledProgram(
        program=program,
        rules=tuple(compiled_rules),
        strata_count=strata_count,
        predicate_strata=predicate_strata,
        is_monotone=monotone,
    )


def _check_head_bound(rule: Rule, bound: set[str]) -> None:
    head_vars: set[str] = set()
    for term in rule.head.terms:
        if isinstance(term, Var) and not term.is_anonymous:
            head_vars.add(term.name)
    for aggregate in rule.head.aggregate_terms():
        head_vars.add(aggregate.var.name)
    unbound = head_vars - bound
    if unbound:
        raise CyLogSafetyError(
            f"unsafe rule {rule_to_source(rule)!r}: head variable(s) "
            f"{', '.join(sorted(unbound))} not bound by the body"
        )


def _unbound_key_vars(atom: Atom, decl: OpenDecl, bound: set[str]) -> set[str]:
    missing: set[str] = set()
    for position in decl.key_positions:
        term = atom.terms[position]
        if isinstance(term, Var) and not term.is_anonymous and term.name not in bound:
            missing.add(term.name)
        if isinstance(term, Var) and term.is_anonymous:
            missing.add("_")
    return missing
