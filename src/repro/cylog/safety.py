"""Static analysis: rule compilation, safety and stratification.

Three properties are established before a program may run:

**Range restriction (safety).**  Every rule body must admit an evaluation
order in which each negation, comparison and arithmetic operand is fully
bound when reached, and every head variable is bound by the body.

**Task-safety.**  For every *open* (human-evaluated) atom in a rule body,
the variables in its key positions must be derivable from the rest of the
body without consulting the open atom itself — otherwise the processor
could not know which tasks to generate.  The derivation may go through
*other* open predicates, which is exactly how sequential dataflows chain
human steps (translate → verify).

**Stratification.**  Negation and aggregation must not occur inside a
recursive cycle.  Each predicate is assigned a stratum; rules are evaluated
stratum by stratum.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.cylog.ast import (
    Assignment,
    Atom,
    BodyLiteral,
    Comparison,
    Const,
    Negation,
    OpenDecl,
    Program,
    Rule,
    Var,
    expr_variables,
)
from repro.cylog.errors import CyLogSafetyError, StratificationError
from repro.cylog.pretty import rule_to_source


#: Estimated extent of predicates with no facts in the program text (IDB and
#: open predicates); engines refine this with live fact counts at run time.
DEFAULT_CARDINALITY = 1000.0

#: Estimated fraction of a relation surviving one bound (equality) term.
BOUND_SELECTIVITY = 0.1

#: Planner modes: ``cost`` is the cardinality-aware planner with delta-first
#: rewrites; ``legacy`` reproduces the original bound-count ordering with
#: in-place delta substitution (kept as a benchmark baseline and as a second
#: implementation for differential testing).
PLANNERS = ("cost", "legacy")

#: Exchange cost model (only consulted when compiling for a sharded store,
#: ``shards > 1``).  A probe whose index key misses the shard key prefix
#: must chain every shard's bucket — ``shards - 1`` extra bucket probes at
#: this relative overhead each — unless the store keeps an exchange
#: repartition (a re-hashed copy of the relation routed on the join key).
#: The repartition costs one extra maintained copy.  Statically (no
#: observed traffic yet) that copy is amortised over
#: ``EXCHANGE_AMORTIZE_ROUNDS`` evaluations because it is maintained
#: incrementally, exactly like the persistent hash indexes.  Once the
#: engine has *observed* per-relation write rates (delta rows per run,
#: see ``SemiNaiveEngine`` ``write_rates``) the maintenance charge becomes
#: ``REPARTITION_ROW_COST × write_rate`` — a repartition on a write-hot
#: relation pays for every delta row twice (primary + copy), so heavy
#: inflow can demote it back to chained probes, and a repartition on a
#: cold relation is nearly free regardless of its cardinality.
CHAINED_PROBE_OVERHEAD = 1.0
REPARTITION_ROW_COST = 2.0
EXCHANGE_AMORTIZE_ROUNDS = 50.0

#: Estimated binding tuples flowing into a step are clamped here so deep
#: bodies cannot overflow the float cost model.
MAX_INFLOW = 1e9


@dataclass(frozen=True)
class PlanStep:
    """One ordered body literal plus the index key chosen at plan time.

    ``index_positions`` are the term positions that are statically known to
    be bound (constants, or variables bound by earlier steps) when the step
    runs; the engine keeps a persistent hash index on exactly these
    positions.  Empty positions mean a full scan.

    On a sharded store a keyed probe has one of three access paths, fixed
    here at plan time: *prefix-routed* (the key covers position 0 — one
    shard probed, no annotation), *exchanged* (``exchange_position`` names
    the term position whose registered repartition the probe routes
    through — one shard probed), or *chained* (``chained`` is True — every
    shard's bucket probed).  The exchange cost model below decides between
    the last two.
    """

    literal: BodyLiteral
    index_positions: tuple[int, ...] = ()
    estimated_cost: float = 0.0
    exchange_position: int | None = None
    chained: bool = False
    #: Write-rate break-even of the exchange/chained decision (rows per
    #: run): with an observed write rate *above* it chaining is cheaper,
    #: *below* it the repartition pays its way.  ``None`` for prefix-routed
    #: and unkeyed steps, where there is no decision to revisit.  Excluded
    #: from comparison so plans stay comparable across cost inputs.
    exchange_break_even: float | None = field(default=None, compare=False)
    #: Fourth access path: the step belongs to a transitive-closure rule
    #: the engine answers from an :class:`~repro.cylog.indexes.
    #: IntervalHierarchyIndex` range scan instead of fixpoint joins —
    #: valid only while the edge relation stays a forest (the index's
    #: runtime monitor soundly falls back to the plan's ordinary path the
    #: moment it does not).
    interval: bool = False


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of :class:`PlanStep` for one rule body.

    ``route_position`` is only set on delta-first plans: the term position
    of the *leading delta atom* that binds the next probe's shard routing
    key.  The engine partitions delta rows by it
    (:func:`~repro.cylog.sharding.split_rows_by_shard`), so each
    per-(rule, target-shard) task probes a single shard — the exchange
    operator's task-alignment half.
    """

    steps: tuple[PlanStep, ...]
    route_position: int | None = field(default=None, compare=False)

    @property
    def literals(self) -> tuple[BodyLiteral, ...]:
        return tuple(step.literal for step in self.steps)

    @property
    def total_cost(self) -> float:
        return sum(step.estimated_cost for step in self.steps)

    @staticmethod
    def from_ordered(literals: Iterable[BodyLiteral]) -> "JoinPlan":
        """Wrap an already-ordered literal sequence, deriving index keys by
        simulating the binding flow in the given order."""
        steps: list[PlanStep] = []
        bound: set[str] = set()
        for literal in literals:
            steps.append(_make_step(literal, bound, None))
            bound |= _literal_binds(literal)
        return JoinPlan(tuple(steps))


@dataclass(frozen=True)
class SeedPlan:
    """How to compute task demand for one open atom occurrence.

    ``plan`` is the ordered sub-body to evaluate; the resulting bindings are
    projected onto the open atom's key positions.
    """

    open_atom: Atom
    decl: OpenDecl
    plan: tuple[BodyLiteral, ...]
    join_plan: JoinPlan = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.join_plan is None:
            object.__setattr__(self, "join_plan", JoinPlan.from_ordered(self.plan))


@dataclass(frozen=True)
class CompiledRule:
    """A rule with its evaluation order, stratum and open-atom seed plans.

    ``plan`` (the ordered literals) is kept for backwards compatibility;
    ``join_plan`` carries the same order plus per-atom index keys, and
    ``delta_plans`` maps a plan position holding a positive atom to a
    rewritten plan that evaluates the semi-naive delta for that atom *first*
    (the delta is usually tiny, so driving the join from it instead of
    re-scanning the leading atoms every round is the main speedup).
    """

    rule: Rule
    plan: tuple[BodyLiteral, ...]
    stratum: int
    seed_plans: tuple[SeedPlan, ...]
    join_plan: JoinPlan = field(default=None, compare=False)  # type: ignore[assignment]
    delta_plans: dict[int, JoinPlan] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.join_plan is None:
            object.__setattr__(self, "join_plan", JoinPlan.from_ordered(self.plan))


@dataclass(frozen=True)
class IntervalSpec:
    """One transitive-closure head eligible for the interval access path.

    ``head`` is the closure predicate, ``edge`` the 2-ary predicate it
    closes over; ``base_rule`` / ``recursive_rule`` are indexes into
    :attr:`CompiledProgram.rules` for the two rules the interval index
    replaces.  Eligibility is purely syntactic (see
    :func:`detect_interval_specs`); whether the edge relation actually
    *is* a forest is decided at run time by the index's monitor.
    """

    head: str
    edge: str
    base_rule: int
    recursive_rule: int


@dataclass(frozen=True)
class CompiledProgram:
    """Statically validated program ready for evaluation.

    ``shards`` records the shard count the plans were compiled for (1 for
    the single store); engines recompile when their configuration calls
    for a different value, exactly as for a planner mismatch.  ``interval``
    records whether the interval access path was enabled at compile time;
    ``interval_specs`` maps each eligible transitive-closure head to its
    :class:`IntervalSpec` (empty when disabled or nothing qualifies).
    """

    program: Program
    rules: tuple[CompiledRule, ...]
    strata_count: int
    predicate_strata: dict[str, int] = field(compare=False)
    is_monotone: bool = True
    planner: str = "cost"
    shards: int = 1
    interval: bool = True
    interval_specs: dict[str, IntervalSpec] = field(
        default_factory=dict, compare=False
    )

    @property
    def open_decls(self) -> dict[str, OpenDecl]:
        return self.program.open_by_name()

    def index_specs(self) -> dict[str, set[tuple[int, ...]]]:
        """Every (predicate, index-key) pair any plan may probe, so the
        engine can register persistent indexes before loading facts."""
        specs: dict[str, set[tuple[int, ...]]] = {}

        def collect(plan: JoinPlan) -> None:
            for step in plan.steps:
                literal = step.literal
                if isinstance(literal, Negation):
                    atom = literal.atom
                elif isinstance(literal, Atom):
                    atom = literal
                else:
                    continue
                if step.index_positions:
                    specs.setdefault(atom.predicate, set()).add(step.index_positions)

        for rule in self.rules:
            collect(rule.join_plan)
            for delta_plan in rule.delta_plans.values():
                collect(delta_plan)
            for seed in rule.seed_plans:
                collect(seed.join_plan)
        for decl in self.program.opens:
            if decl.key_positions:
                specs.setdefault(decl.name, set()).add(tuple(decl.key_positions))
        return specs

    def repartition_specs(self) -> dict[str, set[int]]:
        """Every (predicate, route position) exchange repartition any plan
        decided to probe through, so the sharded store can register and
        maintain the re-hashed copies before the first probe."""
        specs: dict[str, set[int]] = {}

        def collect(plan: JoinPlan) -> None:
            for step in plan.steps:
                if step.exchange_position is None:
                    continue
                literal = step.literal
                atom = literal.atom if isinstance(literal, Negation) else literal
                specs.setdefault(atom.predicate, set()).add(step.exchange_position)

        for rule in self.rules:
            collect(rule.join_plan)
            for delta_plan in rule.delta_plans.values():
                collect(delta_plan)
            for seed in rule.seed_plans:
                collect(seed.join_plan)
        return specs


# ---------------------------------------------------------------------------
# Plan construction (greedy sideways-information-passing order)
# ---------------------------------------------------------------------------


def _literal_binds(literal: BodyLiteral) -> set[str]:
    """Variables a literal *can* bind once executed."""
    if isinstance(literal, Atom):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Assignment):
        return {literal.var.name} if not literal.var.is_anonymous else set()
    return set()


def _literal_needs(literal: BodyLiteral) -> set[str]:
    """Variables that must already be bound for the literal to be ready."""
    if isinstance(literal, Atom):
        return set()  # positive atoms generate bindings
    if isinstance(literal, Negation):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Comparison):
        return {v.name for v in literal.variables()}
    if isinstance(literal, Assignment):
        return {v.name for v in expr_variables(literal.expr)}
    raise TypeError(f"not a body literal: {literal!r}")


def _bound_positions(atom: Atom, bound: set[str]) -> tuple[int, ...]:
    """Term positions statically known to be bound given ``bound`` vars."""
    positions: list[int] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Const):
            positions.append(index)
        elif isinstance(term, Var) and not term.is_anonymous and term.name in bound:
            positions.append(index)
    return tuple(positions)


def _atom_bound_score(atom: Atom, bound: set[str]) -> tuple[int, int]:
    """Legacy order heuristic: prefer atoms with more bound terms (selective
    joins) and fewer fresh variables; ignores relation cardinality."""
    bound_terms = 0
    fresh = 0
    for term in atom.terms:
        if isinstance(term, Const):
            bound_terms += 1
        elif isinstance(term, Var) and term.name in bound:
            bound_terms += 1
        else:
            fresh += 1
    return (-bound_terms, fresh)


def _estimate_cost(
    atom: Atom, bound: set[str], cardinalities: Mapping[str, float]
) -> float:
    """Estimated rows scanned when joining ``atom`` next: relation
    cardinality discounted by the selectivity of each bound term."""
    cardinality = cardinalities.get(atom.predicate, DEFAULT_CARDINALITY)
    bound_terms = len(_bound_positions(atom, bound))
    return max(cardinality * (BOUND_SELECTIVITY**bound_terms), 0.5)


def _fresh_var_count(atom: Atom, bound: set[str]) -> int:
    return len(
        {
            term.name
            for term in atom.terms
            if isinstance(term, Var)
            and not term.is_anonymous
            and term.name not in bound
        }
    )


def _exchange_choice(
    atom: Atom,
    positions: tuple[int, ...],
    cardinalities: Mapping[str, float],
    shards: int,
    inflow: float,
    write_rates: Mapping[str, float] | None = None,
) -> tuple[int | None, bool, float | None]:
    """``(exchange_position, chained, break_even)`` for one keyed probe.

    Only meaningful when compiling for a sharded store and the index key
    misses the shard key prefix.  Chaining costs ``shards - 1`` extra
    bucket probes per binding tuple reaching the step.  A repartition
    costs one extra maintained copy of the relation: charged
    ``REPARTITION_ROW_COST × write_rate`` per run when the engine has
    observed how many delta rows the relation takes per run
    (``write_rates``), else the static cardinality-over-
    ``EXCHANGE_AMORTIZE_ROUNDS`` amortization.  The cheaper side wins;
    ties go to the repartition (probes recur every round).  ``break_even``
    is the write rate at which the two sides meet — the engine replans
    when an observed rate crosses it.
    """
    if shards <= 1 or not positions or 0 in positions:
        return None, False, None
    chained_extra = inflow * (shards - 1) * CHAINED_PROBE_OVERHEAD
    break_even = chained_extra / REPARTITION_ROW_COST
    rate = None if write_rates is None else write_rates.get(atom.predicate)
    if rate is not None:
        repartition_cost = REPARTITION_ROW_COST * rate
    else:
        repartition_cost = (
            cardinalities.get(atom.predicate, DEFAULT_CARDINALITY)
            * REPARTITION_ROW_COST
            / EXCHANGE_AMORTIZE_ROUNDS
        )
    if chained_extra >= repartition_cost:
        return positions[0], False, break_even
    return None, True, break_even


def _make_step(
    literal: BodyLiteral,
    bound: set[str],
    cardinalities: Mapping[str, float] | None,
    shards: int = 1,
    inflow: float = 1.0,
    write_rates: Mapping[str, float] | None = None,
) -> PlanStep:
    if isinstance(literal, Atom):
        positions = _bound_positions(literal, bound)
        cost = (
            _estimate_cost(literal, bound, cardinalities)
            if cardinalities is not None
            else 0.0
        )
        exchange_position, chained, break_even = _exchange_choice(
            literal, positions, cardinalities or {}, shards, inflow, write_rates
        )
        return PlanStep(
            literal, positions, cost, exchange_position, chained, break_even
        )
    if isinstance(literal, Negation):
        positions = _bound_positions(literal.atom, bound)
        exchange_position, chained, break_even = _exchange_choice(
            literal.atom, positions, cardinalities or {}, shards, inflow, write_rates
        )
        return PlanStep(
            literal, positions, 0.0, exchange_position, chained, break_even
        )
    return PlanStep(literal)


def build_join_plan(
    literals: Iterable[BodyLiteral],
    exclude: BodyLiteral | None = None,
    best_effort: bool = False,
    cardinalities: Mapping[str, float] | None = None,
    first: BodyLiteral | None = None,
    cost_based: bool = True,
    initial_bound: Iterable[str] = (),
    shards: int = 1,
    write_rates: Mapping[str, float] | None = None,
) -> tuple[JoinPlan, set[str]]:
    """Greedily order ``literals`` so every literal is ready when reached.

    Returns ``(join_plan, bound_variables)``.  Atoms are chosen by estimated
    selectivity (relation cardinality discounted per bound term) when
    ``cost_based``, else by the legacy bound-count heuristic; filters run as
    soon as their variables are bound.  ``first`` forces one literal to the
    front (the delta-first semi-naive rewrite).  ``initial_bound`` names
    variables the caller will supply at evaluation time (head variables in
    re-derivation checks, group keys in per-group aggregate maintenance),
    so index keys can cover them.  With ``best_effort=True`` the builder
    stops silently when nothing more is ready (used for seed plans);
    otherwise unplaceable literals raise :class:`CyLogSafetyError`.

    ``shards > 1`` compiles for a sharded store: each keyed probe whose
    index key misses the shard key prefix is resolved into an *exchange*
    step (route through a repartition of the probed relation) or a
    *chained* one by the exchange cost model — the literal ordering
    itself is shard-independent, so plans stay comparable across
    configurations.  ``write_rates`` (predicate -> observed delta rows
    per run) switches the repartition maintenance charge from the static
    amortization to the observed write path; see :func:`_exchange_choice`.
    """
    cardinalities = cardinalities if cardinalities is not None else {}
    remaining = [lit for lit in literals if lit is not exclude and lit is not first]
    steps: list[PlanStep] = []
    bound: set[str] = set(initial_bound)
    #: Estimated binding tuples reaching the next step — the probe count
    #: the exchange cost model weighs against a repartition.
    inflow = 1.0
    if first is not None:
        step = _make_step(first, bound, cardinalities, shards, inflow, write_rates)
        steps.append(step)
        inflow = min(max(inflow * max(step.estimated_cost, 1.0), 1.0), MAX_INFLOW)
        bound |= _literal_binds(first)
    while remaining:
        ready_filters = [
            lit
            for lit in remaining
            if not isinstance(lit, Atom) and _literal_needs(lit) <= bound
        ]
        if ready_filters:
            chosen = ready_filters[0]  # cheap filters as early as possible
        else:
            atoms = [lit for lit in remaining if isinstance(lit, Atom)]
            if not atoms:
                if best_effort:
                    break
                stuck = ", ".join(sorted(_literal_needs(remaining[0]) - bound))
                raise CyLogSafetyError(
                    f"unsafe rule: variable(s) {stuck} are never bound by a "
                    "positive literal"
                )
            if cost_based:
                chosen = min(
                    atoms,
                    key=lambda atom: (
                        _estimate_cost(atom, bound, cardinalities),
                        _fresh_var_count(atom, bound),
                        remaining.index(atom),
                    ),
                )
            else:
                chosen = min(
                    atoms,
                    key=lambda atom: (
                        _atom_bound_score(atom, bound),
                        remaining.index(atom),
                    ),
                )
        step = _make_step(chosen, bound, cardinalities, shards, inflow, write_rates)
        steps.append(step)
        if isinstance(chosen, Atom):
            inflow = min(
                max(inflow * max(step.estimated_cost, 1.0), 1.0), MAX_INFLOW
            )
        remaining.remove(chosen)
        bound |= _literal_binds(chosen)
    return JoinPlan(tuple(steps)), bound


def delta_route_position(plan: JoinPlan) -> int | None:
    """The leading-atom term position that binds the first probe's shard
    routing key, or ``None`` when the probes cannot be shard-aligned.

    For a delta-first plan the leading atom is the delta; its rows are the
    binding source for every later probe.  When the first keyed atom probe
    routes — on the shard key prefix or through an exchange repartition —
    and its routing term is a variable the leading atom binds, partitioning
    the delta rows on that variable's position makes every probe of one
    partition land on a single target shard.  Purely a performance
    alignment: any partition of the delta is correct.
    """
    steps = plan.steps
    if not steps or not isinstance(steps[0].literal, Atom):
        return None
    lead = steps[0].literal
    for step in steps[1:]:
        literal = step.literal
        if isinstance(literal, Negation):
            atom = literal.atom
        elif isinstance(literal, Atom):
            atom = literal
        else:
            continue  # comparisons/assignments neither probe nor bind rows
        if not step.index_positions:
            return None  # a full scan cannot be shard-aligned
        if 0 in step.index_positions:
            route_term = atom.terms[0]
        elif step.exchange_position is not None:
            route_term = atom.terms[step.exchange_position]
        else:
            return None  # chained probe touches every shard anyway
        if isinstance(route_term, Var) and not route_term.is_anonymous:
            for position, term in enumerate(lead.terms):
                if (
                    isinstance(term, Var)
                    and not term.is_anonymous
                    and term.name == route_term.name
                ):
                    return position
        return None  # constant key or a variable the delta does not bind
    return None


def build_plan(
    literals: Iterable[BodyLiteral],
    exclude: BodyLiteral | None = None,
    best_effort: bool = False,
) -> tuple[tuple[BodyLiteral, ...], set[str]]:
    """Compatibility wrapper around :func:`build_join_plan` returning the
    ordered literals only."""
    join_plan, bound = build_join_plan(literals, exclude, best_effort)
    return join_plan.literals, bound


def program_cardinalities(program: Program) -> dict[str, float]:
    """Base cardinality estimates from the facts in the program text."""
    counts: dict[str, float] = {}
    for fact in program.facts:
        counts[fact.atom.predicate] = counts.get(fact.atom.predicate, 0.0) + 1.0
    return counts


# ---------------------------------------------------------------------------
# Interval access-path detection
# ---------------------------------------------------------------------------


def _plain_var_names(atom: Atom) -> tuple[str, ...] | None:
    """The atom's terms as variable names, or ``None`` if any term is a
    constant, an anonymous variable, or a repeated variable."""
    names: list[str] = []
    for term in atom.terms:
        if not isinstance(term, Var) or term.is_anonymous:
            return None
        names.append(term.name)
    return tuple(names) if len(set(names)) == len(names) else None


def detect_interval_specs(
    program: Program, predicate_strata: Mapping[str, int]
) -> dict[str, IntervalSpec]:
    """Find transitive-closure heads eligible for the interval access path.

    A head ``tc`` qualifies when it is defined by *exactly* the canonical
    linear transitive-closure pair over one 2-ary edge predicate —

    * base: ``tc(X, Y) :- edge(X, Y).``
    * step: ``tc(X, Z) :- tc(X, Y), edge(Y, Z).`` (right-linear) or
      ``tc(X, Z) :- edge(X, Y), tc(Y, Z).`` (left-linear), body order
      insensitive —

    with no other rules, facts, opens, negations or aggregates touching
    ``tc``, and the edge predicate evaluated strictly *before* the
    closure's stratum (a base relation, or an IDB head in a lower
    stratum): otherwise same-stratum feedback through the edge could
    change it mid-fixpoint, which the index does not model.  Whether the
    edge rows actually form a forest is a run-time property — the index's
    monitor decides it and soundly falls back when violated.
    """
    rules_by_head: dict[str, list[int]] = {}
    for index, rule in enumerate(program.rules):
        rules_by_head.setdefault(rule.head.predicate, []).append(index)
    fact_preds = {fact.atom.predicate for fact in program.facts}
    opens = set(program.open_by_name())
    idb = program.idb_predicates()

    specs: dict[str, IntervalSpec] = {}
    for head, rule_indexes in sorted(rules_by_head.items()):
        if len(rule_indexes) != 2 or head in opens or head in fact_preds:
            continue
        base_index = recursive_index = -1
        edge: str | None = None
        ok = True
        for rule_index in rule_indexes:
            rule = program.rules[rule_index]
            if rule.head.has_aggregates or rule.head.arity != 2:
                ok = False
                break
            head_vars = _plain_var_names(rule.head)
            if head_vars is None:
                ok = False
                break
            atoms = [lit for lit in rule.body if isinstance(lit, Atom)]
            if len(atoms) != len(rule.body):
                ok = False  # negation / comparison / assignment in body
                break
            if len(atoms) == 1:
                atom = atoms[0]
                if (
                    atom.predicate == head
                    or _plain_var_names(atom) != head_vars
                ):
                    ok = False
                    break
                base_index, edge_candidate = rule_index, atom.predicate
            elif len(atoms) == 2:
                preds = {atom.predicate for atom in atoms}
                if head not in preds or len(preds) != 2:
                    ok = False
                    break
                tc_atom = next(a for a in atoms if a.predicate == head)
                edge_atom = next(a for a in atoms if a.predicate != head)
                tc_vars = _plain_var_names(tc_atom)
                edge_vars = _plain_var_names(edge_atom)
                if (
                    tc_vars is None
                    or edge_vars is None
                    or len(tc_vars) != 2
                    or len(edge_vars) != 2
                    or len({*head_vars, *tc_vars, *edge_vars}) != 3
                ):
                    ok = False
                    break
                x, z = head_vars
                right_linear = tc_vars[0] == x and edge_vars[1] == z and (
                    tc_vars[1] == edge_vars[0]
                )
                left_linear = edge_vars[0] == x and tc_vars[1] == z and (
                    edge_vars[1] == tc_vars[0]
                )
                if not (right_linear or left_linear):
                    ok = False
                    break
                recursive_index, edge_candidate = rule_index, edge_atom.predicate
            else:
                ok = False
                break
            if edge is None:
                edge = edge_candidate
            elif edge != edge_candidate:
                ok = False
                break
        if not ok or base_index < 0 or recursive_index < 0 or edge is None:
            continue
        if edge == head or edge in opens:
            continue
        if edge in idb and predicate_strata[edge] >= predicate_strata[head]:
            continue  # same-stratum feedback through the edge
        specs[head] = IntervalSpec(
            head=head,
            edge=edge,
            base_rule=base_index,
            recursive_rule=recursive_index,
        )
    return specs


# ---------------------------------------------------------------------------
# Stratification
# ---------------------------------------------------------------------------


def _dependency_edges(program: Program) -> list[tuple[str, str, bool]]:
    """Edges ``(body_pred, head_pred, is_negative)``; aggregates make every
    body dependency negative (the head stratum must strictly exceed them)."""
    edges: list[tuple[str, str, bool]] = []
    for rule in program.rules:
        aggregated = rule.head.has_aggregates
        for literal in rule.body:
            if isinstance(literal, Atom):
                edges.append((literal.predicate, rule.head.predicate, aggregated))
            elif isinstance(literal, Negation):
                edges.append((literal.atom.predicate, rule.head.predicate, True))
    return edges


def stratify(program: Program) -> tuple[dict[str, int], int]:
    """Assign a stratum to every predicate.

    Returns ``(predicate -> stratum, number_of_strata)``; raises
    :class:`StratificationError` when negation/aggregation is recursive.
    """
    predicates = sorted(program.predicates())
    edges = _dependency_edges(program)
    sccs = _tarjan_sccs(predicates, edges)
    component_of = {
        pred: index for index, component in enumerate(sccs) for pred in component
    }
    # Negative edge inside one SCC => unstratifiable.
    for source, target, negative in edges:
        if negative and component_of[source] == component_of[target]:
            raise StratificationError(
                "negation/aggregation through recursion between "
                f"{source!r} and {target!r}"
            )
    # Longest path over the condensation: negative edges add one stratum.
    strata = [0] * len(sccs)
    # SCCs from Tarjan come out in reverse topological order.
    for component_index in range(len(sccs) - 1, -1, -1):
        for source, target, negative in edges:
            if component_of[target] != component_index:
                continue
            source_component = component_of[source]
            if source_component == component_index:
                continue
            candidate = strata[source_component] + (1 if negative else 0)
            if candidate > strata[component_index]:
                strata[component_index] = candidate
    predicate_strata = {pred: strata[component_of[pred]] for pred in predicates}
    strata_count = max(strata) + 1 if strata else 1
    return predicate_strata, strata_count


def _tarjan_sccs(
    nodes: list[str], edges: list[tuple[str, str, bool]]
) -> list[list[str]]:
    """Iterative Tarjan; returns SCCs in reverse topological order."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for source, target, _ in edges:
        adjacency[source].append(target)
    index_counter = 0
    indexes: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []

    for root in nodes:
        if root in indexes:
            continue
        work = [(root, iter(adjacency[root]))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in indexes:
                    indexes[neighbour] = lowlinks[neighbour] = index_counter
                    index_counter += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(adjacency[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


# ---------------------------------------------------------------------------
# Whole-program compilation
# ---------------------------------------------------------------------------


def compile_program(
    program: Program,
    cardinalities: Mapping[str, float] | None = None,
    planner: str = "cost",
    shards: int = 1,
    write_rates: Mapping[str, float] | None = None,
    interval: bool = True,
) -> CompiledProgram:
    """Validate and compile ``program`` for evaluation.

    ``cardinalities`` (predicate -> estimated fact count) steers the
    cost-based join planner; it defaults to the fact counts in the program
    text.  Engines re-invoke compilation with live fact counts before a full
    run, so plans track the actual data.  ``planner`` selects the ``cost``
    planner (cardinality-ordered joins plus delta-first rewrites) or the
    ``legacy`` bound-count ordering kept for benchmarking and differential
    testing.  ``shards > 1`` compiles for a sharded store with the exchange
    operator enabled: non-prefix keyed probes are resolved into exchange or
    chained steps, delta-first plans get their shard-alignment route, and
    :meth:`CompiledProgram.repartition_specs` reports the repartitions the
    store must maintain.  ``write_rates`` (predicate -> observed delta
    rows per run) makes the exchange cost model write-aware: repartitions
    are charged their observed maintenance instead of the static
    amortization, so a write-hot relation's repartition is demoted to
    chained probes when maintaining the copy costs more than it saves.
    ``interval`` enables :func:`detect_interval_specs` (both planners):
    eligible transitive-closure rules get every plan step annotated
    ``interval=True`` and the specs recorded on the compiled program, so
    the engine can answer those strata from an interval index when the
    edge relation is a forest at run time.
    """
    if planner not in PLANNERS:
        raise ValueError(f"unknown planner {planner!r}; expected one of {PLANNERS}")
    cost_based = planner == "cost"
    stats = program_cardinalities(program)
    if cardinalities:
        stats.update(cardinalities)
    predicate_strata, strata_count = stratify(program)
    opens = program.open_by_name()
    compiled_rules: list[CompiledRule] = []
    monotone = True
    for rule in program.rules:
        if rule.head.has_aggregates:
            monotone = False
        join_plan, bound = build_join_plan(
            rule.body,
            cardinalities=stats,
            cost_based=cost_based,
            shards=shards,
            write_rates=write_rates,
        )
        _check_head_bound(rule, bound)
        delta_plans: dict[int, JoinPlan] = {}
        if cost_based:
            for position, step in enumerate(join_plan.steps):
                if not isinstance(step.literal, Atom):
                    continue
                delta_plan, _ = build_join_plan(
                    rule.body,
                    cardinalities=stats,
                    first=step.literal,
                    shards=shards,
                    write_rates=write_rates,
                )
                if shards > 1:
                    delta_plan = replace(
                        delta_plan, route_position=delta_route_position(delta_plan)
                    )
                delta_plans[position] = delta_plan
        seed_plans: list[SeedPlan] = []
        for literal in rule.body:
            if isinstance(literal, Negation):
                monotone = False
            if not isinstance(literal, Atom) or literal.predicate not in opens:
                continue
            decl = opens[literal.predicate]
            seed_join_plan, seed_bound = build_join_plan(
                rule.body,
                exclude=literal,
                best_effort=True,
                cardinalities=stats,
                cost_based=cost_based,
                shards=shards,
                write_rates=write_rates,
            )
            missing = _unbound_key_vars(literal, decl, seed_bound)
            if missing:
                raise CyLogSafetyError(
                    f"task-unsafe rule {rule_to_source(rule)!r}: key variable(s) "
                    f"{', '.join(sorted(missing))} of open predicate "
                    f"{decl.name!r} cannot be bound without the open atom itself"
                )
            seed_plans.append(
                SeedPlan(
                    open_atom=literal,
                    decl=decl,
                    plan=seed_join_plan.literals,
                    join_plan=seed_join_plan,
                )
            )
        compiled_rules.append(
            CompiledRule(
                rule=rule,
                plan=join_plan.literals,
                stratum=predicate_strata[rule.head.predicate],
                seed_plans=tuple(seed_plans),
                join_plan=join_plan,
                delta_plans=delta_plans,
            )
        )
    interval_specs = (
        detect_interval_specs(program, predicate_strata) if interval else {}
    )
    if interval_specs:
        marked = {
            index
            for spec in interval_specs.values()
            for index in (spec.base_rule, spec.recursive_rule)
        }
        compiled_rules = [
            _mark_interval(compiled) if index in marked else compiled
            for index, compiled in enumerate(compiled_rules)
        ]
    return CompiledProgram(
        program=program,
        rules=tuple(compiled_rules),
        strata_count=strata_count,
        predicate_strata=predicate_strata,
        is_monotone=monotone,
        planner=planner,
        shards=shards,
        interval=interval,
        interval_specs=interval_specs,
    )


def _mark_interval(compiled: CompiledRule) -> CompiledRule:
    """Annotate every plan step of an interval-answered rule."""

    def mark(plan: JoinPlan) -> JoinPlan:
        return replace(
            plan,
            steps=tuple(replace(step, interval=True) for step in plan.steps),
            route_position=plan.route_position,
        )

    return replace(
        compiled,
        join_plan=mark(compiled.join_plan),
        delta_plans={
            position: mark(plan) for position, plan in compiled.delta_plans.items()
        },
    )


def _check_head_bound(rule: Rule, bound: set[str]) -> None:
    head_vars: set[str] = set()
    for term in rule.head.terms:
        if isinstance(term, Var) and not term.is_anonymous:
            head_vars.add(term.name)
    for aggregate in rule.head.aggregate_terms():
        head_vars.add(aggregate.var.name)
    unbound = head_vars - bound
    if unbound:
        raise CyLogSafetyError(
            f"unsafe rule {rule_to_source(rule)!r}: head variable(s) "
            f"{', '.join(sorted(unbound))} not bound by the body"
        )


def _unbound_key_vars(atom: Atom, decl: OpenDecl, bound: set[str]) -> set[str]:
    missing: set[str] = set()
    for position in decl.key_positions:
        term = atom.terms[position]
        if isinstance(term, Var) and not term.is_anonymous and term.name not in bound:
            missing.add(term.name)
        if isinstance(term, Var) and term.is_anonymous:
            missing.add("_")
    return missing
