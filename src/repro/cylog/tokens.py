"""Token definitions shared by the lexer and parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    IDENT = "ident"          # lowercase-leading identifier (predicate / symbol)
    VARIABLE = "variable"    # uppercase- or underscore-leading identifier
    NUMBER = "number"        # int or float literal
    STRING = "string"        # double-quoted
    PUNCT = "punct"          # one of the fixed punctuation/operator strings
    KEYWORD = "keyword"      # open / key / asking / choices / not / true / false
    EOF = "eof"


#: Multi-character operators must precede their prefixes.
PUNCTUATION = (
    ":-", "<=", ">=", "==", "!=", "(", ")", ",", ".", "=", "<", ">",
    "+", "-", "*", "/", ":",
)

KEYWORDS = frozenset({"open", "key", "asking", "choices", "not", "true", "false"})

AGGREGATE_FUNCS = frozenset({"count", "sum", "min", "max", "avg"})


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def describe(self) -> str:
        if self.type is TokenType.EOF:
            return "end of input"
        return repr(str(self.value))
