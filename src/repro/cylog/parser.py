"""Recursive-descent parser producing :class:`repro.cylog.ast.Program`."""

from __future__ import annotations

from repro.cylog.ast import (
    AggregateTerm,
    Assignment,
    Atom,
    BinArith,
    BodyLiteral,
    Comparison,
    Const,
    Fact,
    Head,
    HeadTerm,
    Negation,
    OpenDecl,
    Param,
    Program,
    Rule,
    Term,
    Var,
)
from repro.cylog.errors import CyLogParseError, CyLogTypeError
from repro.cylog.lexer import tokenize
from repro.cylog.tokens import AGGREGATE_FUNCS, Token, TokenType

_COMPARISON_OPS = ("<", "<=", ">", ">=", "==", "!=")


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0
        self.source = source

    # -- token plumbing ---------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def expect_punct(self, value: str) -> Token:
        token = self.current
        if token.type is not TokenType.PUNCT or token.value != value:
            raise CyLogParseError(
                f"expected {value!r}, found {token.describe()}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_type(self, token_type: TokenType, what: str) -> Token:
        token = self.current
        if token.type is not token_type:
            raise CyLogParseError(
                f"expected {what}, found {token.describe()}", token.line, token.column
            )
        return self.advance()

    def at_punct(self, *values: str) -> bool:
        return self.current.type is TokenType.PUNCT and self.current.value in values

    def at_keyword(self, value: str) -> bool:
        return self.current.type is TokenType.KEYWORD and self.current.value == value

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> Program:
        opens: list[OpenDecl] = []
        facts: list[Fact] = []
        rules: list[Rule] = []
        while self.current.type is not TokenType.EOF:
            if self.at_keyword("open"):
                opens.append(self.parse_open_decl())
            else:
                statement = self.parse_clause()
                if isinstance(statement, Fact):
                    facts.append(statement)
                else:
                    rules.append(statement)
        program = Program(
            opens=tuple(opens), facts=tuple(facts), rules=tuple(rules),
            source=self.source,
        )
        _check_consistent_arities(program)
        return program

    def parse_open_decl(self) -> OpenDecl:
        self.advance()  # 'open'
        name = self.expect_type(TokenType.IDENT, "predicate name").value
        self.expect_punct("(")
        params: list[Param] = []
        while True:
            param_name = self.expect_type(TokenType.IDENT, "parameter name").value
            self.expect_punct(":")
            type_token = self.expect_type(TokenType.IDENT, "parameter type")
            try:
                params.append(Param(param_name, type_token.value))
            except CyLogTypeError as exc:
                raise CyLogParseError(str(exc), type_token.line, type_token.column)
            if self.at_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(")")
        key: list[str] = []
        if self.at_keyword("key"):
            self.advance()
            self.expect_punct("(")
            while True:
                key.append(self.expect_type(TokenType.IDENT, "key column").value)
                if self.at_punct(","):
                    self.advance()
                    continue
                break
            self.expect_punct(")")
        asking: str | None = None
        if self.at_keyword("asking"):
            self.advance()
            asking = self.expect_type(TokenType.STRING, "instruction string").value
        choices: list[Const] = []
        if self.at_keyword("choices"):
            self.advance()
            self.expect_punct("(")
            while True:
                choices.append(self.parse_constant())
                if self.at_punct(","):
                    self.advance()
                    continue
                break
            self.expect_punct(")")
        token = self.current
        self.expect_punct(".")
        try:
            return OpenDecl(
                name=name,
                params=tuple(params),
                key=tuple(key),
                asking=asking,
                choices=tuple(choices),
            )
        except CyLogTypeError as exc:
            raise CyLogParseError(str(exc), token.line, token.column)

    def parse_clause(self) -> Fact | Rule:
        head = self.parse_head()
        if self.at_punct(":-"):
            self.advance()
            body: list[BodyLiteral] = [self.parse_body_literal()]
            while self.at_punct(","):
                self.advance()
                body.append(self.parse_body_literal())
            self.expect_punct(".")
            return Rule(head=head, body=tuple(body))
        token = self.current
        self.expect_punct(".")
        if head.has_aggregates:
            raise CyLogParseError(
                "facts cannot contain aggregates", token.line, token.column
            )
        terms: list[Const] = []
        for term in head.terms:
            if not isinstance(term, Const):
                raise CyLogParseError(
                    f"facts must be ground; {head.predicate!r} has a variable",
                    token.line,
                    token.column,
                )
            terms.append(term)
        return Fact(Atom(head.predicate, tuple(terms)))

    def parse_head(self) -> Head:
        name = self.expect_type(TokenType.IDENT, "predicate name").value
        terms: list[HeadTerm] = []
        if self.at_punct("("):
            self.advance()
            if not self.at_punct(")"):
                terms.append(self.parse_head_term())
                while self.at_punct(","):
                    self.advance()
                    terms.append(self.parse_head_term())
            self.expect_punct(")")
        return Head(predicate=name, terms=tuple(terms))

    def parse_head_term(self) -> HeadTerm:
        token = self.current
        if (
            token.type is TokenType.IDENT
            and token.value in AGGREGATE_FUNCS
            and self.peek().type is TokenType.PUNCT
            and self.peek().value == "<"
        ):
            self.advance()  # function name
            self.advance()  # '<'
            var_token = self.expect_type(TokenType.VARIABLE, "aggregate variable")
            self.expect_punct(">")
            return AggregateTerm(func=token.value, var=Var(var_token.value))
        return self.parse_term()

    def parse_term(self) -> Term:
        token = self.current
        if token.type is TokenType.VARIABLE:
            self.advance()
            return Var(token.value)
        return self.parse_constant()

    def parse_constant(self) -> Const:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Const(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Const(token.value)
        if token.type is TokenType.KEYWORD and token.value in ("true", "false"):
            self.advance()
            return Const(token.value == "true")
        if token.type is TokenType.IDENT:
            self.advance()
            return Const(token.value, symbol=True)
        raise CyLogParseError(
            f"expected a constant, found {token.describe()}",
            token.line,
            token.column,
        )

    def parse_body_literal(self) -> BodyLiteral:
        if self.at_keyword("not"):
            self.advance()
            atom = self.parse_body_atom()
            return Negation(atom)
        # Atom if IDENT '(' and not followed by comparison; otherwise expression.
        if (
            self.current.type is TokenType.IDENT
            and self.peek().type is TokenType.PUNCT
            and self.peek().value == "("
        ):
            return self.parse_body_atom()
        # Assignment: VARIABLE '=' expr
        if (
            self.current.type is TokenType.VARIABLE
            and self.peek().type is TokenType.PUNCT
            and self.peek().value == "="
        ):
            var_token = self.advance()
            self.advance()  # '='
            expr = self.parse_arith_expr()
            return Assignment(var=Var(var_token.value), expr=expr)
        left = self.parse_arith_expr()
        token = self.current
        if token.type is TokenType.PUNCT and token.value in _COMPARISON_OPS:
            self.advance()
            right = self.parse_arith_expr()
            return Comparison(op=token.value, left=left, right=right)
        if token.type is TokenType.PUNCT and token.value == "=":
            raise CyLogParseError(
                "'=' requires a variable on the left; use '==' for equality",
                token.line,
                token.column,
            )
        raise CyLogParseError(
            f"expected a comparison operator, found {token.describe()}",
            token.line,
            token.column,
        )

    def parse_body_atom(self) -> Atom:
        name = self.expect_type(TokenType.IDENT, "predicate name").value
        terms: list[Term] = []
        self.expect_punct("(")
        if not self.at_punct(")"):
            terms.append(self.parse_term())
            while self.at_punct(","):
                self.advance()
                terms.append(self.parse_term())
        self.expect_punct(")")
        return Atom(predicate=name, terms=tuple(terms))

    # -- arithmetic expressions -----------------------------------------------
    def parse_arith_expr(self):
        node = self.parse_arith_term()
        while self.at_punct("+", "-"):
            op = self.advance().value
            right = self.parse_arith_term()
            node = BinArith(op=op, left=node, right=right)
        return node

    def parse_arith_term(self):
        node = self.parse_arith_factor()
        while self.at_punct("*", "/"):
            op = self.advance().value
            right = self.parse_arith_factor()
            node = BinArith(op=op, left=node, right=right)
        return node

    def parse_arith_factor(self):
        if self.at_punct("("):
            self.advance()
            node = self.parse_arith_expr()
            self.expect_punct(")")
            return node
        token = self.current
        if token.type is TokenType.VARIABLE:
            self.advance()
            return Var(token.value)
        return self.parse_constant()


def parse_program(source: str) -> Program:
    """Parse CyLog ``source`` into a :class:`Program`.

    Raises :class:`CyLogParseError` with line/column on malformed input and
    :class:`CyLogTypeError` on inconsistent predicate arities.
    """
    return _Parser(source).parse()


def _check_consistent_arities(program: Program) -> None:
    """Every predicate must be used with a single arity; open predicates must
    match their declared schema everywhere they appear."""
    arities: dict[str, int] = {decl.name: decl.arity for decl in program.opens}

    def check(predicate: str, arity: int, where: str) -> None:
        known = arities.get(predicate)
        if known is None:
            arities[predicate] = arity
        elif known != arity:
            raise CyLogTypeError(
                f"predicate {predicate!r} used with arity {arity} in {where} "
                f"but previously with arity {known}"
            )

    for fact in program.facts:
        check(fact.atom.predicate, fact.atom.arity, "a fact")
    for rule in program.rules:
        check(rule.head.predicate, rule.head.arity, "a rule head")
        for atom in rule.body_atoms():
            check(atom.predicate, atom.arity, "a rule body")
    open_names = {decl.name for decl in program.opens}
    for rule in program.rules:
        if rule.head.predicate in open_names:
            raise CyLogTypeError(
                f"open predicate {rule.head.predicate!r} cannot be a rule head; "
                "its facts come from workers"
            )
    for fact in program.facts:
        if fact.atom.predicate in open_names:
            raise CyLogTypeError(
                f"open predicate {fact.atom.predicate!r} cannot be asserted "
                "as a program fact"
            )
