"""Hand-written lexer for CyLog source text.

Comments run from ``%`` or ``//`` to end of line.  Strings use double
quotes with ``\\"``, ``\\\\``, ``\\n`` and ``\\t`` escapes.
"""

from __future__ import annotations

from repro.cylog.errors import CyLogParseError
from repro.cylog.tokens import KEYWORDS, PUNCTUATION, Token, TokenType

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def tokenize(source: str) -> list[Token]:
    """Convert CyLog source into a token list ending with an EOF token."""
    tokens: list[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]
        # -- whitespace -------------------------------------------------------
        if char in " \t\r\n":
            advance(1)
            continue
        # -- comments ---------------------------------------------------------
        if char == "%" or source.startswith("//", position):
            while position < length and source[position] != "\n":
                advance(1)
            continue
        token_line, token_column = line, column
        # -- strings ----------------------------------------------------------
        if char == '"':
            advance(1)
            chunks: list[str] = []
            while True:
                if position >= length:
                    raise CyLogParseError(
                        "unterminated string literal", token_line, token_column
                    )
                current = source[position]
                if current == '"':
                    advance(1)
                    break
                if current == "\\":
                    if position + 1 >= length:
                        raise CyLogParseError("dangling escape in string", line, column)
                    escape = source[position + 1]
                    if escape not in _ESCAPES:
                        raise CyLogParseError(
                            f"unknown escape \\{escape}", line, column
                        )
                    chunks.append(_ESCAPES[escape])
                    advance(2)
                    continue
                if current == "\n":
                    raise CyLogParseError(
                        "newline inside string literal", token_line, token_column
                    )
                chunks.append(current)
                advance(1)
            tokens.append(
                Token(TokenType.STRING, "".join(chunks), token_line, token_column)
            )
            continue
        # -- numbers ----------------------------------------------------------
        if char.isdigit() or (
            char == "-"
            and position + 1 < length
            and source[position + 1].isdigit()
            and _minus_starts_number(tokens)
        ):
            end = position + 1
            seen_dot = False
            while end < length and (source[end].isdigit() or source[end] == "."):
                if source[end] == ".":
                    # A trailing period ends the statement, not the number.
                    if seen_dot or end + 1 >= length or not source[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            text = source[position:end]
            value = float(text) if "." in text else int(text)
            tokens.append(Token(TokenType.NUMBER, value, token_line, token_column))
            advance(end - position)
            continue
        # -- identifiers / variables / keywords ---------------------------------
        if char.isalpha() or char == "_":
            end = position
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[position:end]
            if word in KEYWORDS:
                token_type = TokenType.KEYWORD
            elif word[0].isupper() or word[0] == "_":
                token_type = TokenType.VARIABLE
            else:
                token_type = TokenType.IDENT
            tokens.append(Token(token_type, word, token_line, token_column))
            advance(end - position)
            continue
        # -- punctuation ---------------------------------------------------------
        for punct in PUNCTUATION:
            if source.startswith(punct, position):
                tokens.append(Token(TokenType.PUNCT, punct, token_line, token_column))
                advance(len(punct))
                break
        else:
            raise CyLogParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens


def _minus_starts_number(tokens: list[Token]) -> bool:
    """Heuristic: ``-`` begins a negative literal unless the previous token
    could end an operand (then it is binary subtraction)."""
    if not tokens:
        return True
    previous = tokens[-1]
    if previous.type in (TokenType.NUMBER, TokenType.STRING, TokenType.VARIABLE,
                         TokenType.IDENT):
        return False
    if previous.type is TokenType.PUNCT and previous.value == ")":
        return False
    return True
