"""The CyLog processor: program lifecycle + dynamic task generation.

This is the component labelled "CyLog Processor" in Figure 2 of the paper:
it stores the declarative project description, evaluates it against the
current fact base, emits task requests for unanswered open-predicate keys,
and folds worker answers back in — re-deriving and re-demanding until the
project reaches quiescence.

>>> from repro.cylog import CyLogProcessor
>>> source = '''
... open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
... segment("s1"). segment("s2").
... translated(S, T) :- segment(S), translate(S, T).
... '''
>>> processor = CyLogProcessor(source)
>>> sorted(r.key_values for r in processor.pending_requests())
[('s1',), ('s2',)]
>>> request = processor.request_for("translate", ("s1",))
>>> _ = processor.supply_answer(request, {"out": "S1-FR"})
>>> processor.facts("translated")
frozenset({('s1', 'S1-FR')})
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.cylog.ast import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import RuntimeConfig
    from repro.cylog.sharding import ShardConfig
from repro.cylog.engine import EngineStats, EvaluationResult, SemiNaiveEngine
from repro.cylog.errors import CyLogTypeError
from repro.cylog.incremental import DeltaLedger
from repro.cylog.open_predicates import (
    TaskRequest,
    build_open_fact,
    compute_demands,
)
from repro.cylog.parser import parse_program
from repro.cylog.safety import compile_program

Tuple_ = tuple[Any, ...]

#: Called with the batch of newly demanded task requests after each re-run.
DemandListener = Callable[[list[TaskRequest]], None]

#: Called with the batch of *withdrawn* task requests after each re-run —
#: previously emitted demands that the current fixpoint no longer derives
#: (an upstream retraction removed their seed) and that were never
#: answered.  A consumer that materialised work for the request (e.g. a
#: platform task) should cancel it.
RevocationListener = Callable[[list[TaskRequest]], None]


class CyLogProcessor:
    """Interprets one CyLog project description (paper §2.1).

    ``config`` (a :class:`repro.config.RuntimeConfig`) selects a
    hash-sharded relation store, a parallel executor and a support-index
    memory budget for the underlying engine; results are identical to the
    default single-store serial configuration — the shard-diff CI oracle
    gates on it.  (The PR-6 ``shard_config=`` spelling has been removed;
    engine-level code can still hand a raw
    :class:`~repro.cylog.sharding.ShardConfig` to
    :class:`~repro.cylog.engine.SemiNaiveEngine` directly.)
    """

    def __init__(
        self,
        source: str | Program,
        *,
        config: "RuntimeConfig | None" = None,
    ) -> None:
        shard_config: "ShardConfig | None" = None
        support_budget = None
        if config is not None:
            shard_config = config.to_shard_config()
            support_budget = config.support_budget
        program = parse_program(source) if isinstance(source, str) else source
        self.compiled = compile_program(program)
        self.engine = SemiNaiveEngine(
            self.compiled, shard_config=shard_config, support_budget=support_budget
        )
        self._answered: set[tuple[str, Tuple_]] = set()
        self._seen_requests: dict[tuple[str, Tuple_], TaskRequest] = {}
        #: Identities demanded by the *current* fixpoint — with retraction
        #: in play a previously seen demand can silently stop being one.
        self._current_demands: set[tuple[str, Tuple_]] = set()
        self._listeners: list[DemandListener] = []
        self._revocation_listeners: list[RevocationListener] = []
        self._dirty = True
        self._batch_depth = 0
        #: Net change sets accumulated across runs until a consumer (the
        #: platform round) drains them — first-class deltas, not a cache.
        self._deltas = DeltaLedger()

    @property
    def program(self) -> Program:
        return self.compiled.program

    def close(self) -> None:
        """Release the engine's executor threads (no-op when serial)."""
        self.engine.close()

    # -- observers -----------------------------------------------------------
    def add_demand_listener(self, listener: DemandListener) -> None:
        """Register a callback receiving each batch of *new* task requests."""
        self._listeners.append(listener)

    def add_revocation_listener(self, listener: RevocationListener) -> None:
        """Register a callback receiving each batch of *withdrawn* task
        requests — emitted demands the fixpoint stopped deriving before
        they were answered (retraction-aware demand maintenance)."""
        self._revocation_listeners.append(listener)

    # -- fact input ------------------------------------------------------------
    @contextlib.contextmanager
    def batch(self) -> Iterator["CyLogProcessor"]:
        """Group a burst of fact arrivals into one incremental continuation.

        Inside the ``with`` block, :meth:`run` only evaluates the engine and
        defers demand refresh (and listener notification); on clean exit of
        the outermost batch a single re-evaluation folds the whole burst in.
        If the block raises, no evaluation or listener notification happens
        during unwinding — the facts queued so far are folded in by the next
        explicit :meth:`run`.
        """
        self._batch_depth += 1
        try:
            yield self
        except BaseException:
            self._batch_depth -= 1
            raise
        else:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self.run()

    def add_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Add extensional facts (e.g. worker profiles injected by the
        platform); marks the processor dirty for re-evaluation."""
        added = self.engine.add_facts(predicate, rows)
        if added:
            self._dirty = True
        return added

    def supply_answer(
        self, request: TaskRequest, fill_values: Mapping[str, Any]
    ) -> Tuple_:
        """Record a worker answer for ``request`` and re-evaluate.

        Returns the stored fact tuple.  Multiple answers for the same key
        are allowed (different workers may contribute different tuples);
        the *demand* disappears after the first answer.
        """
        fact = request.build_fact(fill_values)
        self.engine.add_facts(request.predicate, [fact])
        self._answered.add((request.predicate, request.key_values))
        self._dirty = True
        return fact

    def supply_answers(
        self, answers: Iterable[tuple[TaskRequest, Mapping[str, Any]]]
    ) -> list[Tuple_]:
        """Record a whole burst of worker answers at once.

        Facts are grouped per predicate and queued in one engine call each,
        so the next :meth:`run` propagates the burst with a single
        incremental continuation instead of one per answer.
        """
        facts: list[Tuple_] = []
        by_predicate: dict[str, list[Tuple_]] = {}
        for request, fill_values in answers:
            fact = request.build_fact(fill_values)
            by_predicate.setdefault(request.predicate, []).append(fact)
            self._answered.add((request.predicate, request.key_values))
            facts.append(fact)
        for predicate, rows in by_predicate.items():
            self.engine.add_facts(predicate, rows)
        if facts:
            self._dirty = True
        return facts

    def supply_fact(
        self,
        predicate: str,
        key_values: Mapping[str, Any],
        fill_values: Mapping[str, Any],
    ) -> Tuple_:
        """Like :meth:`supply_answer` without a request object in hand."""
        decl = self.compiled.open_decls.get(predicate)
        if decl is None:
            raise CyLogTypeError(f"{predicate!r} is not an open predicate")
        fact = build_open_fact(decl, dict(key_values), fill_values)
        self.engine.add_facts(predicate, [fact])
        key = tuple(key_values[k] for k in decl.key)
        self._answered.add((predicate, key))
        self._dirty = True
        return fact

    def retract_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Retract extensional facts; refreshes demands eagerly.

        Retraction can *resurrect* demand (a key is unanswered again) and
        invalidate derived state downstream, so unlike the additive paths
        the processor re-evaluates immediately instead of waiting for the
        next :meth:`run` — pending task requests are correct the moment
        this returns (deferred inside a :meth:`batch` block as usual).
        """
        removed = self.engine.retract_facts(predicate, [tuple(r) for r in rows])
        if removed:
            self._dirty = True
            if not self._batch_depth:
                self.run()
        return removed

    def revoke_answer(
        self, predicate: str, key_values: Tuple_ | Mapping[str, Any]
    ) -> int:
        """Withdraw every stored answer of an open predicate for one key.

        The key is forgotten from the answered set and its task request is
        dropped from the seen set, so if the (re-evaluated) program still
        demands it a *fresh* request is emitted to demand listeners — the
        revoked task reappears.  Returns the number of facts retracted.
        """
        decl = self.compiled.open_decls.get(predicate)
        if decl is None:
            raise CyLogTypeError(f"{predicate!r} is not an open predicate")
        if isinstance(key_values, Mapping):
            key = tuple(key_values[k] for k in decl.key)
        else:
            key = tuple(key_values)
        # Evaluate through self.run() (not the raw engine accessors) so any
        # queued additions report their deltas into the processor's ledger.
        self.run()
        relation = self.engine.store.maybe(predicate)
        rows = (
            [tuple(row) for row in relation.lookup(tuple(decl.key_positions), key)]
            if relation is not None
            else []
        )
        self._answered.discard((predicate, key))
        self._seen_requests.pop((predicate, key), None)
        self._dirty = True
        removed = self.engine.retract_facts(predicate, rows) if rows else 0
        if not self._batch_depth:
            self.run()
        return removed

    # -- evaluation & demand ------------------------------------------------------
    def run(self) -> EvaluationResult:
        """Re-evaluate if dirty; returns the current result snapshot.

        Every run's reported change sets are folded into the processor's
        delta ledger (see :meth:`drain_deltas`).  Inside a :meth:`batch`
        block the demand refresh is deferred to the end of the batch, so a
        burst of answers triggers one refresh."""
        result = self.engine.run()
        if result.has_changes():
            for predicate in result.changed_predicates():
                for row in result.added(predicate):
                    self._deltas.add(predicate, row)
                for row in result.removed(predicate):
                    self._deltas.remove(predicate, row)
        if self._dirty and not self._batch_depth:
            self._dirty = False
            new_requests, revoked = self._refresh_demands()
            # Withdrawals first: a consumer reacting to the fresh batch
            # must never observe a stale materialisation of a demand the
            # same fixpoint just withdrew.
            if revoked:
                for listener in self._revocation_listeners:
                    listener(revoked)
            if new_requests:
                for listener in self._listeners:
                    listener(new_requests)
        return result

    def drain_deltas(self) -> dict[str, tuple[frozenset, frozenset]]:
        """Consume the net (added, removed) sets accumulated since the last
        drain — the platform round's change feed.  Runs first if dirty so
        the drained view is current."""
        if self._dirty:
            self.run()
        added, removed = self._deltas.as_mappings()
        self._deltas = DeltaLedger()
        return {
            predicate: (
                added.get(predicate, frozenset()),
                removed.get(predicate, frozenset()),
            )
            for predicate in sorted(set(added) | set(removed))
        }

    def _refresh_demands(self) -> tuple[list[TaskRequest], list[TaskRequest]]:
        demands = compute_demands(self.compiled, self.engine.store)
        previous = self._current_demands
        self._current_demands = {(r.predicate, r.key_values) for r in demands}
        # Unanswered demands that vanished were withdrawn by retraction
        # (an answered demand disappearing is just the normal lifecycle).
        # Dropping them from the seen set means a later resurrection is
        # emitted as a fresh request again — same as a retracted answer.
        revoked: list[TaskRequest] = []
        for identity in sorted(
            previous - self._current_demands, key=lambda i: (i[0], repr(i[1]))
        ):
            if identity in self._answered:
                continue
            request = self._seen_requests.pop(identity, None)
            if request is not None:
                revoked.append(request)
        fresh: list[TaskRequest] = []
        for request in sorted(demands, key=lambda r: (r.predicate, repr(r.key_values))):
            identity = (request.predicate, request.key_values)
            if identity not in self._seen_requests:
                self._seen_requests[identity] = request
                fresh.append(request)
        return fresh, revoked

    def pending_requests(self) -> list[TaskRequest]:
        """Task requests demanded now and not yet answered (sorted).

        A request stays pending only while the current fixpoint still
        demands it — a retraction upstream withdraws the demands it seeded.
        """
        self.run()
        pending = [
            request
            for identity, request in self._seen_requests.items()
            if identity not in self._answered and identity in self._current_demands
        ]
        pending.sort(key=lambda r: (r.predicate, repr(r.key_values)))
        return pending

    def request_for(self, predicate: str, key_values: Tuple_) -> TaskRequest:
        """Look up a pending request by predicate and key tuple."""
        self.run()
        request = self._seen_requests.get((predicate, tuple(key_values)))
        if request is None:
            raise CyLogTypeError(
                f"no task request for {predicate!r} with key {tuple(key_values)!r}"
            )
        return request

    def is_quiescent(self) -> bool:
        """True when no human input is currently demanded."""
        return not self.pending_requests()

    # -- inspection ---------------------------------------------------------------
    def facts(self, predicate: str) -> frozenset:
        """Current facts of ``predicate`` after (re-)evaluation."""
        self.run()
        return self.engine.facts(predicate)

    def sorted_facts(self, predicate: str) -> list[Tuple_]:
        return sorted(self.facts(predicate), key=repr)

    def relation_sizes(self) -> dict[str, int]:
        self.run()
        store = self.engine.store
        return {name: len(store.maybe(name) or ()) for name in store.predicates()}

    @property
    def stats(self) -> EngineStats:
        """Cumulative engine work counters (see :class:`EngineStats`)."""
        return self.engine.stats

    def explain(self) -> str:
        """Human-readable join plans of the compiled program."""
        from repro.cylog.pretty import explain_program

        return explain_program(self.compiled)
