"""Incrementally maintained multi-key hash indexes.

Three consumers share this module:

* the CyLog engine keeps a :class:`TupleIndexSet` per relation, holding one
  hash index for every key (tuple of term positions) the join planner chose
  at compile time — indexes are updated on every insertion instead of being
  rebuilt from scratch each semi-naive round;
* :mod:`repro.storage.index` builds its column-keyed :class:`HashIndex` on
  top of :class:`MultiKeyHashIndex` instead of duplicating bucket logic;
* :class:`IntervalHierarchyIndex` gives transitive-closure strata over
  forest-shaped edge relations a third access path beside the hash probes:
  pre/post-order interval annotations (the XPath-accelerator encoding)
  under which "descendant of" is an O(1) label comparison and "all
  descendants" is one contiguous range scan, maintained incrementally
  under edge adds and retractions.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from typing import Any, Iterable, Iterator

Key = tuple
Positions = tuple[int, ...]

_EMPTY: frozenset = frozenset()


def stable_hash(value: Any) -> int:
    """A process-independent, equality-consistent hash for shard routing.

    Two requirements pull in different directions.  Routing must be
    *reproducible across processes*: Python's built-in ``hash`` is
    randomized per process for strings (``PYTHONHASHSEED``), which would
    make shard assignment — and therefore per-shard fingerprints —
    unreproducible, so strings hash through ``crc32`` of their ``repr``.
    And routing must be *consistent with the store's equality*: tuple sets
    and index buckets use Python ``==``, under which ``1 == 1.0 == True``,
    so numerically equal keys must land in the same shard or a sharded
    lookup would miss rows the single store finds.  Numbers therefore
    route through Python's numeric ``hash``, which is deterministic and
    equality-consistent by construction (the join layer's strict
    bool-vs-int filtering happens *after* the probe, exactly as it does on
    the single store's conflating hash buckets).
    """
    if isinstance(value, (bool, int, float)):
        return hash(value) & 0xFFFFFFFF
    return zlib.crc32(repr(value).encode("utf-8"))


class MultiKeyHashIndex:
    """Hash map from key tuples to buckets (sets) of values.

    Buckets are maintained eagerly: :meth:`add` and :meth:`discard` keep the
    mapping exact, so lookups never revalidate.  :meth:`bucket` returns the
    live internal set for speed — callers must not mutate it.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[Key, set] = {}

    def add(self, key: Key, value: Any) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {value}
        else:
            bucket.add(value)

    def discard(self, key: Key, value: Any) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(value)
        if not bucket:
            del self._buckets[key]

    def bucket(self, key: Key) -> frozenset | set:
        """The live bucket for ``key`` (empty when absent); do not mutate."""
        return self._buckets.get(key, _EMPTY)

    def clear(self) -> None:
        """Drop every bucket (used by ``Table.truncate``)."""
        self._buckets.clear()

    @property
    def key_count(self) -> int:
        return len(self._buckets)

    def keys(self) -> Iterator[Key]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<multi-key hash index ({len(self._buckets)} keys)>"


class TupleIndexSet:
    """A family of position-keyed hash indexes over same-arity tuples.

    ``ensure((1,), rows)`` builds (once) an index keyed on position 1;
    :meth:`insert` then maintains every registered index incrementally.
    The engine registers the positions its join plans need up front, so the
    per-round "build index by scanning all tuples" cost of the seed
    implementation disappears.
    """

    __slots__ = ("_indexes",)

    def __init__(self) -> None:
        self._indexes: dict[Positions, MultiKeyHashIndex] = {}

    def ensure(self, positions: Positions, rows: Iterable[tuple]) -> None:
        """Register an index on ``positions``, backfilling from ``rows``."""
        if positions in self._indexes:
            return
        index = MultiKeyHashIndex()
        for row in rows:
            index.add(tuple(row[p] for p in positions), row)
        self._indexes[positions] = index

    def has(self, positions: Positions) -> bool:
        return positions in self._indexes

    def insert(self, row: tuple) -> None:
        """Add ``row`` to every registered index."""
        for positions, index in self._indexes.items():
            index.add(tuple(row[p] for p in positions), row)

    def remove(self, row: tuple) -> None:
        """Drop ``row`` from every registered index (no-op when absent)."""
        for positions, index in self._indexes.items():
            index.discard(tuple(row[p] for p in positions), row)

    def rows(self, positions: Positions, key: Key) -> frozenset | set:
        """Rows whose ``positions`` project onto ``key`` (live set; do not
        mutate).  The index must have been registered via :meth:`ensure`."""
        return self._indexes[positions].bucket(key)

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    def specs(self) -> tuple[Positions, ...]:
        return tuple(self._indexes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<tuple index set on {sorted(self._indexes)}>"


#: A node identity for the interval index.  Joins conflate numerically
#: equal values (``1 == 1.0``) but keep booleans apart (``_bind_atom``'s
#: strict bool check), so node keys carry an explicit bool tag.
_NodeKey = tuple[bool, Any]


def _node_key(value: Any) -> _NodeKey:
    return (isinstance(value, bool), value)


class IntervalHierarchyIndex:
    """Pre/post-order interval annotations over a forest of 2-ary edges.

    Every node of the forest carries ``pre``/``post`` labels such that
    ``a`` is a strict ancestor of ``d`` iff ``pre(a) < pre(d)`` and
    ``post(d) < post(a)`` — intervals of unrelated nodes are disjoint, so
    the test needs no per-tree bookkeeping.  A node's descendants are the
    contiguous run of pre-ordered nodes inside its interval, served as a
    single range scan (:meth:`descendants`, :meth:`pairs`).

    Labels are *gap-allocated*: siblings are spread ``GAP`` slots apart at
    build time, so attaching a subtree usually relabels only the subtree
    being moved.  When a parent's interval runs out of slots the nearest
    enclosing subtree with enough slack is renumbered in place
    (``renumbers`` counts the extra nodes relabelled beyond the moved
    subtree); once cumulative relabelling exceeds ``REBUILD_CHURN`` times
    the node count, every label is rebuilt from scratch (``rebuilds``).

    The index doubles as the forest monitor: :meth:`attach` refuses
    self-loops, second parents (in-degree > 1) and cycles by flipping
    :attr:`valid` to ``False`` and returning ``None`` — the engine then
    soundly falls back to fixpoint evaluation until a :meth:`rebuild`
    from the live edge rows succeeds again.  While valid, :meth:`attach` /
    :meth:`detach` return the exact transitive-closure pairs the edge
    change added or removed, which is what keeps interval-answered strata
    byte-identical to the semi-naive path under churn and retraction.
    """

    GAP = 8
    #: Full label rebuild once relabelled nodes exceed this multiple of
    #: the live node count.
    REBUILD_CHURN = 4.0

    __slots__ = (
        "valid",
        "renumbers",
        "rebuilds",
        "scans",
        "_parent",
        "_children",
        "_value",
        "_pre",
        "_post",
        "_level",
        "_size",
        "_roots",
        "_next_label",
        "_churn",
        "_ordered",
        "_ordered_pre",
        "_dirty",
    )

    def __init__(self) -> None:
        #: True while the indexed edges form a forest (the monitor).
        self.valid = False
        #: Nodes relabelled beyond the subtree an operation had to move.
        self.renumbers = 0
        #: Full label rebuilds (initial builds and churn-triggered ones).
        self.rebuilds = 0
        #: Range scans served (descendant queries, closure enumerations,
        #: attach/detach subtree collections).
        self.scans = 0
        self._parent: dict[_NodeKey, _NodeKey] = {}
        self._children: dict[_NodeKey, set[_NodeKey]] = {}
        self._value: dict[_NodeKey, Any] = {}
        self._pre: dict[_NodeKey, int] = {}
        self._post: dict[_NodeKey, int] = {}
        self._level: dict[_NodeKey, int] = {}
        self._size: dict[_NodeKey, int] = {}
        self._roots: set[_NodeKey] = set()
        self._next_label = 0
        self._churn = 0
        self._ordered: list[_NodeKey] = []
        self._ordered_pre: list[int] = []
        self._dirty = True

    # -- observability ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._value)

    @property
    def edge_count(self) -> int:
        return len(self._parent)

    def level(self, value: Any) -> int | None:
        return self._level.get(_node_key(value))

    def subtree_size(self, value: Any) -> int | None:
        return self._size.get(_node_key(value))

    def interval(self, value: Any) -> tuple[int, int] | None:
        key = _node_key(value)
        pre = self._pre.get(key)
        return None if pre is None else (pre, self._post[key])

    def is_ancestor(self, ancestor: Any, descendant: Any) -> bool:
        """O(1) strict-ancestor test via interval containment."""
        a, d = _node_key(ancestor), _node_key(descendant)
        if a not in self._pre or d not in self._pre:
            return False
        return self._pre[a] < self._pre[d] and self._post[d] < self._post[a]

    # -- full (re)build -----------------------------------------------------
    def rebuild(self, rows: Iterable[tuple]) -> bool:
        """Rebuild from scratch over ``rows`` of ``(parent, child)`` edges.

        Returns :attr:`valid`: False when the edges are not a forest
        (self-loop, a child with two parents, or a cycle), in which case
        the index holds no labels and answers nothing.
        """
        self._parent.clear()
        self._children.clear()
        self._value.clear()
        self._pre.clear()
        self._post.clear()
        self._level.clear()
        self._size.clear()
        self._roots.clear()
        self._next_label = 0
        self._churn = 0
        self._dirty = True
        self.valid = True
        for row in rows:
            parent, child = _node_key(row[0]), _node_key(row[1])
            self._value.setdefault(parent, row[0])
            self._value.setdefault(child, row[1])
            if parent == child or child in self._parent:
                self.valid = False
                break
            self._parent[child] = parent
            self._children.setdefault(parent, set()).add(child)
        if self.valid:
            self._roots = {key for key in self._value if key not in self._parent}
            visited = 0
            for root in self._sorted(self._roots):
                visited += self._assign_tree(root)
            if visited != len(self._value):
                self.valid = False  # some component is a cycle with no root
        if not self.valid:
            self._parent.clear()
            self._children.clear()
            self._value.clear()
            self._roots.clear()
            return False
        self.rebuilds += 1
        return True

    # -- incremental maintenance -------------------------------------------
    def attach(self, parent: Any, child: Any) -> list[tuple] | None:
        """Add edge ``(parent, child)``; returns the closure pairs gained.

        Returns ``None`` — and flips :attr:`valid` — when the edge would
        break the forest shape (self-loop, second parent, cycle).
        """
        if not self.valid:
            return None
        pk, ck = _node_key(parent), _node_key(child)
        if pk == ck:
            self.valid = False
            return None
        current = self._parent.get(ck)
        if current is not None:
            if current == pk:
                return []  # edge already indexed (defensive no-op)
            self.valid = False  # second parent: in-degree > 1
            return None
        if ck in self._pre and pk in self._pre and self.is_ancestor(child, parent):
            self.valid = False  # parent lives inside child's subtree: cycle
            return None
        if pk not in self._value:
            self._value[pk] = parent
            self._new_root(pk)
        if ck not in self._value:
            self._value[ck] = child
            self._size[ck] = 1
            self._level[ck] = 0
            self._pre[ck] = self._post[ck] = 0  # placed below
            self._roots.add(ck)
        subtree = self._collect(ck)
        self.scans += 1
        ancestors = [pk]
        walk = self._parent.get(pk)
        while walk is not None:
            ancestors.append(walk)
            walk = self._parent.get(walk)
        gained = [
            (self._value[a], self._value[d]) for a in ancestors for d in subtree
        ]
        self._parent[ck] = pk
        self._children.setdefault(pk, set()).add(ck)
        self._roots.discard(ck)
        for a in ancestors:
            self._size[a] += len(subtree)
        self._place(pk, ck, len(subtree))
        self._maybe_rebuild_labels()
        self._dirty = True
        return gained

    def detach(self, parent: Any, child: Any) -> list[tuple] | None:
        """Drop edge ``(parent, child)``; returns the closure pairs lost.

        Returns ``None`` when the edge is not indexed (the caller's mirror
        of the edge relation diverged — rebuild before trusting answers).
        The detached subtree becomes a tree of its own: splitting a tree
        into a forest keeps the index valid.
        """
        if not self.valid:
            return None
        pk, ck = _node_key(parent), _node_key(child)
        if self._parent.get(ck) != pk:
            return None
        subtree = self._collect(ck)
        self.scans += 1
        ancestors = [pk]
        walk = self._parent.get(pk)
        while walk is not None:
            ancestors.append(walk)
            walk = self._parent.get(walk)
        lost = [(self._value[a], self._value[d]) for a in ancestors for d in subtree]
        del self._parent[ck]
        siblings = self._children[pk]
        siblings.discard(ck)
        if not siblings:
            del self._children[pk]
        for a in ancestors:
            self._size[a] -= len(subtree)
        if ck in self._children:
            # The split-off subtree becomes its own tree in a fresh label
            # range, so its intervals no longer nest inside the old parent.
            self._roots.add(ck)
            start = self._next_label
            self._next_label = self._relabel(ck, start, self.GAP, 0) + self.GAP
            self._churn += len(subtree)
        else:
            self._drop_node(ck)
        if pk not in self._children and pk not in self._parent:
            self._roots.discard(pk)
            self._drop_node(pk)
        self._maybe_rebuild_labels()
        self._dirty = True
        return lost

    # -- range scans --------------------------------------------------------
    def descendants(self, value: Any) -> list[Any]:
        """All strict descendants of ``value`` in pre-order: one range scan
        over the pre-ordered node array."""
        key = _node_key(value)
        if key not in self._pre:
            return []
        self._ensure_order()
        self.scans += 1
        lo = bisect_left(self._ordered_pre, self._pre[key]) + 1
        hi = bisect_left(self._ordered_pre, self._post[key], lo=lo)
        return [self._value[k] for k in self._ordered[lo:hi]]

    def pairs(self) -> Iterator[tuple]:
        """Every (ancestor, descendant) closure pair, one range scan per
        node over the shared pre-ordered array."""
        self._ensure_order()
        self.scans += 1
        ordered, pres, posts = self._ordered, self._ordered_pre, self._post
        for index, key in enumerate(ordered):
            hi = bisect_left(pres, posts[key], lo=index + 1)
            value = self._value[key]
            for descendant in ordered[index + 1 : hi]:
                yield (value, self._value[descendant])

    # -- internals ----------------------------------------------------------
    def _sorted(self, keys: Iterable[_NodeKey]) -> list[_NodeKey]:
        return sorted(keys, key=lambda k: repr(self._value[k]))

    def _collect(self, root: _NodeKey) -> list[_NodeKey]:
        """The subtree under ``root`` (inclusive) in deterministic DFS
        order — used while labels are in flux, so it walks the child map."""
        out: list[_NodeKey] = []
        stack = [root]
        while stack:
            node = stack.pop()
            out.append(node)
            children = self._children.get(node)
            if children:
                stack.extend(reversed(self._sorted(children)))
        return out

    def _new_root(self, key: _NodeKey) -> None:
        pre = self._next_label + self.GAP
        post = pre + 2 * self.GAP
        self._next_label = post
        self._pre[key] = pre
        self._post[key] = post
        self._level[key] = 0
        self._size[key] = 1
        self._roots.add(key)

    def _drop_node(self, key: _NodeKey) -> None:
        for mapping in (self._pre, self._post, self._level, self._size, self._value):
            mapping.pop(key, None)

    def _assign_tree(self, root: _NodeKey) -> int:
        """Label one whole tree at build time; returns its node count."""
        start = self._next_label
        self._next_label = self._relabel(root, start, self.GAP, 0) + self.GAP
        size = self._compute_sizes(root)
        self._roots.add(root)
        return size

    def _compute_sizes(self, root: _NodeKey) -> int:
        order = self._collect(root)
        for node in reversed(order):
            self._size[node] = 1 + sum(
                self._size[c] for c in self._children.get(node, ())
            )
        return self._size[root]

    def _relabel(self, root: _NodeKey, start: int, step: int, root_level: int) -> int:
        """DFS-relabel ``root``'s subtree from ``start`` with ``step``-sized
        gaps, setting levels from ``root_level``; returns the last label."""
        label = start
        stack: list[tuple[_NodeKey, int, bool]] = [(root, root_level, False)]
        while stack:
            node, level, closing = stack.pop()
            label += step
            if closing:
                self._post[node] = label
                continue
            self._pre[node] = label
            self._level[node] = level
            stack.append((node, level, True))
            children = self._children.get(node)
            if children:
                for child in reversed(self._sorted(children)):
                    stack.append((child, level + 1, False))
        return label

    def _place(self, parent: _NodeKey, child: _NodeKey, moved: int) -> None:
        """Fit ``child``'s just-attached subtree into ``parent``'s interval.

        Fast path: enough free slots after the last sibling — only the
        moved subtree is relabelled.  Otherwise the nearest enclosing
        subtree with slack is renumbered in place; as a last resort the
        whole tree moves to a fresh label range (always fits: ranges at
        the top are unbounded).
        """
        need = 2 * moved
        siblings = self._children[parent] - {child}
        last = max(
            (self._post[s] for s in siblings), default=self._pre[parent]
        )
        space = self._post[parent] - last - 1
        child_level = self._level[parent] + 1
        if space >= need:
            step = max(1, space // (need + 1))
            self._relabel(child, last, step, child_level)
            return
        node: _NodeKey | None = parent
        while node is not None:
            width = self._post[node] - self._pre[node] - 1
            if width >= 2 * self._size[node]:
                # Renumber this subtree in place: keep the node's own
                # labels, redistribute every descendant inside them.
                count = self._size[node] - 1  # descendants to relabel
                step = width // (2 * count + 1)
                label = self._pre[node]
                for c in self._sorted(self._children[node]):
                    label = self._relabel(c, label, step, self._level[node] + 1)
                self.renumbers += self._size[node] - moved
                self._churn += self._size[node]
                return
            node = self._parent.get(node)
        root = parent
        while root in self._parent:
            root = self._parent[root]
        start = self._next_label
        self._next_label = (
            self._relabel(root, start, self.GAP, self._level[root]) + self.GAP
        )
        self.renumbers += self._size[root] - moved
        self._churn += self._size[root]

    def _maybe_rebuild_labels(self) -> None:
        if self._churn <= self.REBUILD_CHURN * max(1, len(self._value)):
            return
        self._next_label = 0
        self._churn = 0
        for root in self._sorted(self._roots):
            start = self._next_label
            self._next_label = self._relabel(root, start, self.GAP, 0) + self.GAP
        self.rebuilds += 1
        self._dirty = True

    def _ensure_order(self) -> None:
        if not self._dirty:
            return
        self._ordered = sorted(self._pre, key=self._pre.__getitem__)
        self._ordered_pre = [self._pre[k] for k in self._ordered]
        self._dirty = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "valid" if self.valid else "invalid"
        return (
            f"<interval hierarchy index: {len(self._value)} nodes, "
            f"{len(self._parent)} edges, {state}>"
        )
