"""Incrementally maintained multi-key hash indexes.

Two consumers share this module:

* the CyLog engine keeps a :class:`TupleIndexSet` per relation, holding one
  hash index for every key (tuple of term positions) the join planner chose
  at compile time — indexes are updated on every insertion instead of being
  rebuilt from scratch each semi-naive round;
* :mod:`repro.storage.index` builds its column-keyed :class:`HashIndex` on
  top of :class:`MultiKeyHashIndex` instead of duplicating bucket logic.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Iterator

Key = tuple
Positions = tuple[int, ...]

_EMPTY: frozenset = frozenset()


def stable_hash(value: Any) -> int:
    """A process-independent, equality-consistent hash for shard routing.

    Two requirements pull in different directions.  Routing must be
    *reproducible across processes*: Python's built-in ``hash`` is
    randomized per process for strings (``PYTHONHASHSEED``), which would
    make shard assignment — and therefore per-shard fingerprints —
    unreproducible, so strings hash through ``crc32`` of their ``repr``.
    And routing must be *consistent with the store's equality*: tuple sets
    and index buckets use Python ``==``, under which ``1 == 1.0 == True``,
    so numerically equal keys must land in the same shard or a sharded
    lookup would miss rows the single store finds.  Numbers therefore
    route through Python's numeric ``hash``, which is deterministic and
    equality-consistent by construction (the join layer's strict
    bool-vs-int filtering happens *after* the probe, exactly as it does on
    the single store's conflating hash buckets).
    """
    if isinstance(value, (bool, int, float)):
        return hash(value) & 0xFFFFFFFF
    return zlib.crc32(repr(value).encode("utf-8"))


class MultiKeyHashIndex:
    """Hash map from key tuples to buckets (sets) of values.

    Buckets are maintained eagerly: :meth:`add` and :meth:`discard` keep the
    mapping exact, so lookups never revalidate.  :meth:`bucket` returns the
    live internal set for speed — callers must not mutate it.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[Key, set] = {}

    def add(self, key: Key, value: Any) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {value}
        else:
            bucket.add(value)

    def discard(self, key: Key, value: Any) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(value)
        if not bucket:
            del self._buckets[key]

    def bucket(self, key: Key) -> frozenset | set:
        """The live bucket for ``key`` (empty when absent); do not mutate."""
        return self._buckets.get(key, _EMPTY)

    def clear(self) -> None:
        """Drop every bucket (used by ``Table.truncate``)."""
        self._buckets.clear()

    @property
    def key_count(self) -> int:
        return len(self._buckets)

    def keys(self) -> Iterator[Key]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<multi-key hash index ({len(self._buckets)} keys)>"


class TupleIndexSet:
    """A family of position-keyed hash indexes over same-arity tuples.

    ``ensure((1,), rows)`` builds (once) an index keyed on position 1;
    :meth:`insert` then maintains every registered index incrementally.
    The engine registers the positions its join plans need up front, so the
    per-round "build index by scanning all tuples" cost of the seed
    implementation disappears.
    """

    __slots__ = ("_indexes",)

    def __init__(self) -> None:
        self._indexes: dict[Positions, MultiKeyHashIndex] = {}

    def ensure(self, positions: Positions, rows: Iterable[tuple]) -> None:
        """Register an index on ``positions``, backfilling from ``rows``."""
        if positions in self._indexes:
            return
        index = MultiKeyHashIndex()
        for row in rows:
            index.add(tuple(row[p] for p in positions), row)
        self._indexes[positions] = index

    def has(self, positions: Positions) -> bool:
        return positions in self._indexes

    def insert(self, row: tuple) -> None:
        """Add ``row`` to every registered index."""
        for positions, index in self._indexes.items():
            index.add(tuple(row[p] for p in positions), row)

    def remove(self, row: tuple) -> None:
        """Drop ``row`` from every registered index (no-op when absent)."""
        for positions, index in self._indexes.items():
            index.discard(tuple(row[p] for p in positions), row)

    def rows(self, positions: Positions, key: Key) -> frozenset | set:
        """Rows whose ``positions`` project onto ``key`` (live set; do not
        mutate).  The index must have been registered via :meth:`ensure`."""
        return self._indexes[positions].bucket(key)

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    def specs(self) -> tuple[Positions, ...]:
        return tuple(self._indexes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<tuple index set on {sorted(self._indexes)}>"
