"""Bottom-up evaluation: naive reference engine and semi-naive engine.

Both engines implement the same semantics — stratified Datalog with
negation, aggregation, comparisons and assignments — over tuple stores with
persistent, incrementally maintained hash indexes (see
:mod:`repro.cylog.indexes`).  Evaluation consumes the per-rule
:class:`~repro.cylog.safety.JoinPlan` emitted by the compiler: body atoms
are cost-ordered and each atom's index key is fixed at plan time, and
recursive rules use *delta-first* rewrites so each semi-naive round drives
the join from the (small) delta instead of re-scanning the leading atoms.

:func:`naive_evaluate` exists as an oracle for differential testing and as
the baseline for the E10 bench; :class:`SemiNaiveEngine` is what the CyLog
processor uses, including incremental continuation for monotone programs
when new (human-produced) facts arrive.  Both report work counters through
:class:`EngineStats`, which plugs into :class:`repro.metrics.Collector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.cylog.ast import (
    AggregateTerm,
    Assignment,
    Atom,
    Comparison,
    Const,
    Negation,
    Program,
    Var,
)
from repro.cylog.builtins import apply_comparison, eval_expr
from repro.cylog.errors import CyLogTypeError
from repro.cylog.indexes import TupleIndexSet
from repro.cylog.pretty import explain_rule
from repro.cylog.safety import (
    PLANNERS,
    CompiledProgram,
    CompiledRule,
    JoinPlan,
    compile_program,
)

Tuple_ = tuple[Any, ...]
Bindings = dict[str, Any]


@dataclass
class EngineStats:
    """Work counters for one engine instance (or one naive evaluation).

    ``index_hits`` counts indexed lookups, ``full_scans`` unindexed relation
    scans, and ``tuples_joined`` the candidate rows those probes produced —
    the ratio is the direct measure of how much the planner's index choices
    help.  Feed the counters into a metrics collector with
    :meth:`to_collector` (once per collector — the values are cumulative).
    """

    full_runs: int = 0
    incremental_runs: int = 0
    rounds: int = 0
    rules_fired: int = 0
    tuples_derived: int = 0
    tuples_joined: int = 0
    index_hits: int = 0
    full_scans: int = 0
    plans: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        return {
            "full_runs": self.full_runs,
            "incremental_runs": self.incremental_runs,
            "rounds": self.rounds,
            "rules_fired": self.rules_fired,
            "tuples_derived": self.tuples_derived,
            "tuples_joined": self.tuples_joined,
            "index_hits": self.index_hits,
            "full_scans": self.full_scans,
        }

    def to_collector(self, collector, prefix: str = "cylog_engine") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)


class Relation:
    """A set of same-arity tuples with incrementally maintained indexes.

    Index keys (tuples of term positions) are registered up front from the
    compiled join plans via :meth:`ensure_index`; every :meth:`add` then
    updates all registered indexes, so lookups never rebuild.  Unregistered
    keys still work — they are built lazily on first probe and maintained
    from then on.
    """

    __slots__ = ("arity", "_tuples", "_indexes")

    def __init__(self, arity: int, index_specs: Iterable[tuple[int, ...]] = ()) -> None:
        self.arity = arity
        self._tuples: set[Tuple_] = set()
        self._indexes = TupleIndexSet()
        for positions in index_specs:
            self._indexes.ensure(positions, ())

    def add(self, row: Tuple_) -> bool:
        """Insert ``row``; returns True when it was new."""
        if row in self._tuples:
            return False
        self._tuples.add(row)
        self._indexes.insert(row)
        return True

    def add_many(self, rows: Iterable[Tuple_]) -> set[Tuple_]:
        """Insert many rows, returning the subset that was new."""
        added = set()
        for row in rows:
            if self.add(row):
                added.add(row)
        return added

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Register (and backfill) an index on ``positions``."""
        self._indexes.ensure(positions, self._tuples)

    def lookup(self, positions: tuple[int, ...], key: Tuple_):
        """Rows whose ``positions`` project onto ``key`` (live set; do not
        mutate).  ``positions == ()`` returns every row."""
        if not positions:
            return self._tuples
        if not self._indexes.has(positions):
            self._indexes.ensure(positions, self._tuples)
        return self._indexes.rows(positions, key)

    def match(self, pattern: Sequence[Any]) -> Iterable[Tuple_]:
        """Rows matching ``pattern`` (``None`` entries are wildcards)."""
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        return self.lookup(positions, tuple(pattern[p] for p in positions))

    def __contains__(self, row: Tuple_) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def snapshot(self) -> frozenset:
        return frozenset(self._tuples)


class RelationStore:
    """Predicate name -> :class:`Relation`, creating on first use.

    ``index_specs`` (predicate -> set of index-key positions, from
    :meth:`CompiledProgram.index_specs`) are applied to every relation as it
    is created, so plan-chosen indexes exist before the first probe.
    """

    def __init__(
        self, index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None
    ) -> None:
        self._relations: dict[str, Relation] = {}
        self._index_specs = dict(index_specs or {})

    def get(self, predicate: str, arity: int) -> Relation:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(arity, self._index_specs.get(predicate, ()))
            self._relations[predicate] = relation
        elif relation.arity != arity:
            raise CyLogTypeError(
                f"predicate {predicate!r} used with arity {arity}, "
                f"stored with arity {relation.arity}"
            )
        return relation

    def maybe(self, predicate: str) -> Relation | None:
        return self._relations.get(predicate)

    def predicates(self) -> list[str]:
        return sorted(self._relations)

    def snapshot(self) -> dict[str, frozenset]:
        return {name: rel.snapshot() for name, rel in self._relations.items()}


@dataclass(frozen=True)
class EvaluationResult:
    """Immutable snapshot of every relation after evaluation."""

    relations: Mapping[str, frozenset]

    def facts(self, predicate: str) -> frozenset:
        """All tuples of ``predicate`` (empty when unknown)."""
        return self.relations.get(predicate, frozenset())

    def sorted_facts(self, predicate: str) -> list[Tuple_]:
        return sorted(self.facts(predicate), key=repr)

    def count(self, predicate: str) -> int:
        return len(self.facts(predicate))


# ---------------------------------------------------------------------------
# Joining one rule body
# ---------------------------------------------------------------------------


def _bind_atom(atom: Atom, row: Tuple_, bindings: Bindings) -> Bindings | None:
    """Extend ``bindings`` with the atom's fresh variables from ``row``.

    Returns ``None`` when a repeated variable disagrees; constants and bound
    variables were already enforced by the index key.
    """
    extended: Bindings | None = None
    for position, term in enumerate(atom.terms):
        if not isinstance(term, Var) or term.is_anonymous:
            continue
        value = row[position]
        current = bindings if extended is None else extended
        if term.name in current:
            if current[term.name] != value or (
                isinstance(current[term.name], bool) != isinstance(value, bool)
            ):
                return None
            continue
        if extended is None:
            extended = dict(bindings)
        extended[term.name] = value
    return extended if extended is not None else dict(bindings)


def _index_key(atom: Atom, positions: tuple[int, ...], bindings: Bindings) -> Tuple_:
    """The concrete lookup key for the plan-chosen index positions."""
    key: list[Any] = []
    for position in positions:
        term = atom.terms[position]
        if isinstance(term, Const):
            key.append(term.value)
        else:
            key.append(bindings[term.name])
    return tuple(key)


def solutions(
    plan: JoinPlan | Sequence,
    store: RelationStore,
    initial: Bindings | None = None,
    delta_position: int | None = None,
    delta_relation: Relation | None = None,
    stats: EngineStats | None = None,
) -> Iterator[Bindings]:
    """Yield every binding satisfying ``plan``.

    ``plan`` is a compiled :class:`JoinPlan` (or a plain ordered literal
    sequence, wrapped on the fly).  ``delta_position``/``delta_relation``
    implement the semi-naive rewrite: the positive atom at that plan
    position reads from the delta relation instead of the full store.
    """
    if not isinstance(plan, JoinPlan):
        plan = JoinPlan.from_ordered(plan)
    steps = plan.steps

    def recurse(position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(steps):
            yield bindings
            return
        step = steps[position]
        literal = step.literal
        if isinstance(literal, Atom):
            if position == delta_position and delta_relation is not None:
                relation: Relation | None = delta_relation
            else:
                relation = store.maybe(literal.predicate)
            if relation is None or relation.arity != literal.arity:
                return  # no facts yet for this predicate
            rows = relation.lookup(
                step.index_positions,
                _index_key(literal, step.index_positions, bindings),
            )
            if stats is not None:
                if step.index_positions:
                    stats.index_hits += 1
                else:
                    stats.full_scans += 1
                stats.tuples_joined += len(rows)
            for row in rows:
                extended = _bind_atom(literal, row, bindings)
                if extended is not None:
                    yield from recurse(position + 1, extended)
            return
        if isinstance(literal, Negation):
            relation = store.maybe(literal.atom.predicate)
            if relation is not None and relation.arity == literal.atom.arity:
                rows = relation.lookup(
                    step.index_positions,
                    _index_key(literal.atom, step.index_positions, bindings),
                )
                if stats is not None:
                    if step.index_positions:
                        stats.index_hits += 1
                    else:
                        stats.full_scans += 1
                if rows:
                    return  # a match defeats the negation
            yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Comparison):
            left = eval_expr(literal.left, bindings)
            right = eval_expr(literal.right, bindings)
            if apply_comparison(literal.op, left, right):
                yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Assignment):
            value = eval_expr(literal.expr, bindings)
            name = literal.var.name
            if literal.var.is_anonymous:
                yield from recurse(position + 1, bindings)
                return
            if name in bindings:
                if apply_comparison("==", bindings[name], value):
                    yield from recurse(position + 1, bindings)
                return
            extended = dict(bindings)
            extended[name] = value
            yield from recurse(position + 1, extended)
            return
        raise CyLogTypeError(f"unknown literal in plan: {literal!r}")

    yield from recurse(0, dict(initial or {}))


def _head_tuple(rule: CompiledRule, bindings: Bindings) -> Tuple_:
    values: list[Any] = []
    for term in rule.rule.head.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif isinstance(term, Var):
            values.append(bindings[term.name])
        else:  # pragma: no cover - aggregates handled separately
            raise CyLogTypeError("aggregate rule evaluated as plain rule")
    return tuple(values)


_AGG_FUNCS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "avg": lambda values: sum(values) / len(values),
}


def _evaluate_aggregate_rule(
    rule: CompiledRule, store: RelationStore, stats: EngineStats | None = None
) -> set[Tuple_]:
    """Group body solutions and fold aggregates (set semantics: the
    aggregated variable is collected as a *set* per group)."""
    head = rule.rule.head
    groups: dict[Tuple_, dict[str, set]] = {}
    aggregates = head.aggregate_terms()
    group_vars = head.group_by_vars()
    for bindings in solutions(rule.join_plan, store, stats=stats):
        key = tuple(bindings[v.name] for v in group_vars)
        per_agg = groups.setdefault(key, {a.var.name: set() for a in aggregates})
        for aggregate in aggregates:
            per_agg[aggregate.var.name].add(bindings[aggregate.var.name])
    derived: set[Tuple_] = set()
    for key, per_agg in groups.items():
        key_iter = iter(key)
        values: list[Any] = []
        for term in head.terms:
            if isinstance(term, AggregateTerm):
                collected = sorted(per_agg[term.var.name], key=repr)
                if term.func != "count" and any(
                    isinstance(v, bool) or not isinstance(v, (int, float))
                    for v in collected
                ):
                    raise CyLogTypeError(
                        f"aggregate {term.func}<{term.var.name}> over "
                        "non-numeric values"
                    )
                values.append(_AGG_FUNCS[term.func](collected))
            elif isinstance(term, Const):
                values.append(term.value)
            else:
                values.append(next(key_iter))
        derived.add(tuple(values))
    return derived


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def _load_base_facts(
    compiled: CompiledProgram,
    store: RelationStore,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None,
) -> None:
    for fact in compiled.program.facts:
        store.get(fact.atom.predicate, fact.atom.arity).add(
            tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
        )
    if extra_facts:
        for predicate, rows in extra_facts.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                continue
            arity = len(rows[0])
            relation = store.get(predicate, arity)
            for row in rows:
                if len(row) != arity:
                    raise CyLogTypeError(
                        f"mixed arity facts supplied for {predicate!r}"
                    )
                relation.add(row)


def naive_evaluate(
    program: Program | CompiledProgram,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None = None,
    stats: EngineStats | None = None,
) -> EvaluationResult:
    """Reference naive evaluation: recompute every rule until fixpoint.

    Exponentially slower than semi-naive on recursive programs but obviously
    correct; used as the differential-testing oracle.
    """
    compiled = (
        program if isinstance(program, CompiledProgram) else compile_program(program)
    )
    store = RelationStore(compiled.index_specs())
    _load_base_facts(compiled, store, extra_facts)
    for stratum in range(compiled.strata_count):
        stratum_rules = [r for r in compiled.rules if r.stratum == stratum]
        aggregate_rules = [r for r in stratum_rules if r.rule.head.has_aggregates]
        plain_rules = [r for r in stratum_rules if not r.rule.head.has_aggregates]
        for rule in aggregate_rules:
            relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
            for row in _evaluate_aggregate_rule(rule, store, stats):
                relation.add(row)
        changed = True
        while changed:
            changed = False
            for rule in plain_rules:
                relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
                if stats is not None:
                    stats.rules_fired += 1
                derived = [
                    _head_tuple(rule, bindings)
                    for bindings in solutions(rule.join_plan, store, stats=stats)
                ]
                for row in derived:
                    if relation.add(row):
                        if stats is not None:
                            stats.tuples_derived += 1
                        changed = True
    return EvaluationResult(store.snapshot())


class SemiNaiveEngine:
    """Stratified semi-naive engine with incremental fact arrival.

    For monotone programs (no negation, no aggregates) newly added facts are
    propagated by continuing the semi-naive iteration from the new deltas;
    otherwise the engine re-runs from base facts, which is always sound.
    Before each full run the program is re-planned against the live base
    fact counts (``planner="cost"``); ``planner="legacy"`` keeps the seed
    bound-count ordering with in-place delta substitution as a baseline.
    """

    def __init__(
        self, program: Program | CompiledProgram, planner: str | None = None
    ) -> None:
        if isinstance(program, CompiledProgram):
            self.planner = planner or program.planner
            if self.planner not in PLANNERS:
                raise ValueError(
                    f"unknown planner {self.planner!r}; expected one of {PLANNERS}"
                )
            if self.planner == program.planner:
                self.compiled = program
            else:  # recompile so the requested planner actually takes effect
                self.compiled = compile_program(program.program, planner=self.planner)
        else:
            self.planner = planner or "cost"
            self.compiled = compile_program(program, planner=self.planner)
        self._active = self.compiled
        self._planned_cardinalities: dict[str, float] | None = None
        self._base_facts: dict[str, set[Tuple_]] = {}
        for fact in self.compiled.program.facts:
            row = tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
            self._base_facts.setdefault(fact.atom.predicate, set()).add(row)
        self._store: RelationStore | None = None
        self._pending: dict[str, set[Tuple_]] = {}
        self.stats = EngineStats()
        self.runs = 0  # full evaluations performed (observability for benches)

    # -- fact management ---------------------------------------------------
    def add_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Queue base facts for ``predicate``; returns how many were new.

        Rule-head (IDB) predicates cannot receive base facts.
        """
        if predicate in self.compiled.program.idb_predicates():
            raise CyLogTypeError(
                f"cannot add base facts to derived predicate {predicate!r}"
            )
        target = self._base_facts.setdefault(predicate, set())
        pending = self._pending.setdefault(predicate, set())
        added = 0
        for row in rows:
            row = tuple(row)
            if row not in target:
                target.add(row)
                pending.add(row)
                added += 1
        return added

    # -- evaluation -----------------------------------------------------------
    def run(self) -> EvaluationResult:
        """Evaluate to fixpoint, incrementally when possible.

        With no pending facts the previous fixpoint is returned as-is;
        pending facts continue the semi-naive iteration for monotone
        programs and trigger a full re-run otherwise (always sound).
        """
        if self._store is not None:
            if not self._pending:
                return EvaluationResult(self._store.snapshot())
            if self.compiled.is_monotone:
                self._continue_monotone()
                return EvaluationResult(self._store.snapshot())
        self._full_run()
        return EvaluationResult(self._store.snapshot())  # type: ignore[union-attr]

    def facts(self, predicate: str) -> frozenset:
        """Current tuples of ``predicate`` (after the last :meth:`run`)."""
        if self._store is None:
            self.run()
        relation = self._store.maybe(predicate)  # type: ignore[union-attr]
        return relation.snapshot() if relation is not None else frozenset()

    @property
    def store(self) -> RelationStore:
        if self._store is None:
            self.run()
        return self._store  # type: ignore[return-value]

    def _replan(self) -> None:
        """Recompile join plans against the live base-fact cardinalities.

        Skipped when the cardinalities are unchanged since the last full
        run (recompilation and plan pretty-printing are then pure waste).
        """
        if self.planner != "cost":
            if not self.stats.plans:
                self._record_plans()
            return
        cardinalities = {
            predicate: float(len(rows))
            for predicate, rows in self._base_facts.items()
        }
        if cardinalities == self._planned_cardinalities:
            return
        self._planned_cardinalities = cardinalities
        self._active = compile_program(
            self.compiled.program, cardinalities=cardinalities, planner=self.planner
        )
        self._record_plans()

    def _record_plans(self) -> None:
        self.stats.plans = {
            f"{rule.rule.head.predicate}#{index}": explain_rule(rule)
            for index, rule in enumerate(self._active.rules)
        }

    def _full_run(self) -> None:
        self.runs += 1
        self.stats.full_runs += 1
        self._pending.clear()
        self._replan()
        store = RelationStore(self._active.index_specs())
        _load_base_facts(
            self._active,
            store,
            {pred: rows for pred, rows in self._base_facts.items()},
        )
        for stratum in range(self._active.strata_count):
            self._run_stratum(store, stratum)
        self._store = store

    def _run_stratum(self, store: RelationStore, stratum: int) -> None:
        stratum_rules = [r for r in self._active.rules if r.stratum == stratum]
        if not stratum_rules:
            return
        for rule in stratum_rules:
            if rule.rule.head.has_aggregates:
                relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
                self.stats.rules_fired += 1
                for row in _evaluate_aggregate_rule(rule, store, self.stats):
                    if relation.add(row):
                        self.stats.tuples_derived += 1
        plain_rules = [r for r in stratum_rules if not r.rule.head.has_aggregates]
        recursive_preds = {r.rule.head.predicate for r in plain_rules}
        # Round 0: full evaluation of each rule.  Solutions are materialised
        # before insertion because recursive rules scan the very relation
        # they derive into.
        delta: dict[str, set[Tuple_]] = {}
        for rule in plain_rules:
            relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
            self.stats.rules_fired += 1
            rows = [
                _head_tuple(rule, bindings)
                for bindings in solutions(rule.join_plan, store, stats=self.stats)
            ]
            for row in rows:
                if relation.add(row):
                    self.stats.tuples_derived += 1
                    delta.setdefault(rule.rule.head.predicate, set()).add(row)
        # Semi-naive rounds.
        self._semi_naive_rounds(store, plain_rules, recursive_preds, delta)

    def _semi_naive_rounds(
        self,
        store: RelationStore,
        plain_rules: list[CompiledRule],
        recursive_preds: set[str],
        delta: dict[str, set[Tuple_]],
    ) -> None:
        while delta:
            self.stats.rounds += 1
            delta_relations = {
                predicate: _relation_from(rows, store.maybe(predicate))
                for predicate, rows in delta.items()
            }
            next_delta: dict[str, set[Tuple_]] = {}
            for rule in plain_rules:
                head_pred = rule.rule.head.predicate
                relation = store.get(head_pred, rule.rule.head.arity)
                for position, step in enumerate(rule.join_plan.steps):
                    literal = step.literal
                    if not isinstance(literal, Atom):
                        continue
                    if literal.predicate not in delta_relations:
                        continue
                    if literal.predicate not in recursive_preds:
                        continue
                    delta_rel = delta_relations[literal.predicate]
                    delta_plan = rule.delta_plans.get(position)
                    self.stats.rules_fired += 1
                    if delta_plan is not None:
                        # Delta-first rewrite: the delta atom leads the join.
                        bindings_iter = solutions(
                            delta_plan,
                            store,
                            delta_position=0,
                            delta_relation=delta_rel,
                            stats=self.stats,
                        )
                    else:
                        bindings_iter = solutions(
                            rule.join_plan,
                            store,
                            delta_position=position,
                            delta_relation=delta_rel,
                            stats=self.stats,
                        )
                    rows = [_head_tuple(rule, b) for b in bindings_iter]
                    for row in rows:
                        if relation.add(row):
                            self.stats.tuples_derived += 1
                            next_delta.setdefault(head_pred, set()).add(row)
            delta = next_delta

    def _continue_monotone(self) -> None:
        """Propagate pending base facts without recomputing from scratch.

        All pending facts (a whole burst of completed tasks) enter the store
        first, then a single semi-naive continuation runs from the combined
        delta — one incremental evaluation per batch, not one per fact.
        """
        store = self._store
        assert store is not None
        self.stats.incremental_runs += 1
        delta: dict[str, set[Tuple_]] = {}
        for predicate, rows in self._pending.items():
            if not rows:
                continue
            arity = len(next(iter(rows)))
            relation = store.get(predicate, arity)
            new_rows = relation.add_many(rows)
            if new_rows:
                delta[predicate] = new_rows
        self._pending.clear()
        if not delta:
            return
        rules = self._active.rules
        plain_rules = [r for r in rules if not r.rule.head.has_aggregates]
        # In the monotone continuation every predicate behaves as recursive:
        # any rule touching a delta predicate must refire.
        all_preds = set(delta)
        for rule in plain_rules:
            all_preds.add(rule.rule.head.predicate)
            for atom in rule.rule.body_atoms():
                all_preds.add(atom.predicate)
        self._semi_naive_rounds(store, plain_rules, all_preds, delta)


def _relation_from(rows: set[Tuple_], template: Relation | None) -> Relation:
    arity = template.arity if template is not None else len(next(iter(rows)))
    relation = Relation(arity)
    for row in rows:
        relation.add(row)
    return relation
