"""Bottom-up evaluation: naive reference engine and semi-naive engine.

Both engines implement the same semantics — stratified Datalog with
negation, aggregation, comparisons and assignments — over tuple stores with
lazily built hash indexes.  :func:`naive_evaluate` exists as an oracle for
differential testing and as the baseline for the E10 bench;
:class:`SemiNaiveEngine` is what the CyLog processor uses, including
incremental continuation for monotone programs when new (human-produced)
facts arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.cylog.ast import (
    AggregateTerm,
    Assignment,
    Atom,
    Comparison,
    Const,
    Negation,
    Program,
    Var,
)
from repro.cylog.builtins import apply_comparison, eval_expr
from repro.cylog.errors import CyLogTypeError
from repro.cylog.safety import CompiledProgram, CompiledRule, compile_program

Tuple_ = tuple[Any, ...]
Bindings = dict[str, Any]


class Relation:
    """A set of same-arity tuples with lazily maintained hash indexes."""

    __slots__ = ("arity", "_tuples", "_indexes")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self._tuples: set[Tuple_] = set()
        self._indexes: dict[tuple[int, ...], dict[Tuple_, list[Tuple_]]] = {}

    def add(self, row: Tuple_) -> bool:
        """Insert ``row``; returns True when it was new."""
        if row in self._tuples:
            return False
        self._tuples.add(row)
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return True

    def add_many(self, rows: Iterable[Tuple_]) -> set[Tuple_]:
        """Insert many rows, returning the subset that was new."""
        added = set()
        for row in rows:
            if self.add(row):
                added.add(row)
        return added

    def match(self, pattern: Sequence[Any]) -> Iterable[Tuple_]:
        """Rows matching ``pattern`` (``None`` entries are wildcards)."""
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not positions:
            return self._tuples
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._tuples:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self._indexes[positions] = index
        return index.get(tuple(pattern[p] for p in positions), ())

    def __contains__(self, row: Tuple_) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def snapshot(self) -> frozenset:
        return frozenset(self._tuples)


class RelationStore:
    """Predicate name -> :class:`Relation`, creating on first use."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def get(self, predicate: str, arity: int) -> Relation:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation(arity)
            self._relations[predicate] = relation
        elif relation.arity != arity:
            raise CyLogTypeError(
                f"predicate {predicate!r} used with arity {arity}, "
                f"stored with arity {relation.arity}"
            )
        return relation

    def maybe(self, predicate: str) -> Relation | None:
        return self._relations.get(predicate)

    def predicates(self) -> list[str]:
        return sorted(self._relations)

    def snapshot(self) -> dict[str, frozenset]:
        return {name: rel.snapshot() for name, rel in self._relations.items()}


@dataclass(frozen=True)
class EvaluationResult:
    """Immutable snapshot of every relation after evaluation."""

    relations: Mapping[str, frozenset]

    def facts(self, predicate: str) -> frozenset:
        """All tuples of ``predicate`` (empty when unknown)."""
        return self.relations.get(predicate, frozenset())

    def sorted_facts(self, predicate: str) -> list[Tuple_]:
        return sorted(self.facts(predicate), key=repr)

    def count(self, predicate: str) -> int:
        return len(self.facts(predicate))


# ---------------------------------------------------------------------------
# Joining one rule body
# ---------------------------------------------------------------------------


def _atom_pattern(atom: Atom, bindings: Bindings) -> list[Any]:
    pattern: list[Any] = []
    for term in atom.terms:
        if isinstance(term, Const):
            pattern.append(term.value)
        elif term.is_anonymous or term.name not in bindings:
            pattern.append(None)
        else:
            pattern.append(bindings[term.name])
    return pattern


def _bind_atom(atom: Atom, row: Tuple_, bindings: Bindings) -> Bindings | None:
    """Extend ``bindings`` with the atom's fresh variables from ``row``.

    Returns ``None`` when a repeated variable disagrees; constants and bound
    variables were already enforced by the index pattern.
    """
    extended: Bindings | None = None
    for position, term in enumerate(atom.terms):
        if not isinstance(term, Var) or term.is_anonymous:
            continue
        value = row[position]
        current = bindings if extended is None else extended
        if term.name in current:
            if current[term.name] != value or (
                isinstance(current[term.name], bool) != isinstance(value, bool)
            ):
                return None
            continue
        if extended is None:
            extended = dict(bindings)
        extended[term.name] = value
    return extended if extended is not None else dict(bindings)


def solutions(
    plan: Sequence,
    store: RelationStore,
    initial: Bindings | None = None,
    delta_position: int | None = None,
    delta_relation: Relation | None = None,
) -> Iterator[Bindings]:
    """Yield every binding satisfying ``plan`` (ordered body literals).

    ``delta_position``/``delta_relation`` implement the semi-naive rewrite:
    the positive atom at that plan position reads from the delta relation
    instead of the full store.
    """

    def recurse(position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(plan):
            yield bindings
            return
        literal = plan[position]
        if isinstance(literal, Atom):
            if position == delta_position and delta_relation is not None:
                relation: Relation | None = delta_relation
            else:
                relation = store.maybe(literal.predicate)
            if relation is None or relation.arity != literal.arity:
                return  # no facts yet for this predicate
            pattern = _atom_pattern(literal, bindings)
            for row in relation.match(pattern):
                extended = _bind_atom(literal, row, bindings)
                if extended is not None:
                    yield from recurse(position + 1, extended)
            return
        if isinstance(literal, Negation):
            relation = store.maybe(literal.atom.predicate)
            if relation is not None and relation.arity == literal.atom.arity:
                pattern = _atom_pattern(literal.atom, bindings)
                for _ in relation.match(pattern):
                    return  # a match defeats the negation
            yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Comparison):
            left = eval_expr(literal.left, bindings)
            right = eval_expr(literal.right, bindings)
            if apply_comparison(literal.op, left, right):
                yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Assignment):
            value = eval_expr(literal.expr, bindings)
            name = literal.var.name
            if literal.var.is_anonymous:
                yield from recurse(position + 1, bindings)
                return
            if name in bindings:
                if apply_comparison("==", bindings[name], value):
                    yield from recurse(position + 1, bindings)
                return
            extended = dict(bindings)
            extended[name] = value
            yield from recurse(position + 1, extended)
            return
        raise CyLogTypeError(f"unknown literal in plan: {literal!r}")

    yield from recurse(0, dict(initial or {}))


def _head_tuple(rule: CompiledRule, bindings: Bindings) -> Tuple_:
    values: list[Any] = []
    for term in rule.rule.head.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif isinstance(term, Var):
            values.append(bindings[term.name])
        else:  # pragma: no cover - aggregates handled separately
            raise CyLogTypeError("aggregate rule evaluated as plain rule")
    return tuple(values)


_AGG_FUNCS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "avg": lambda values: sum(values) / len(values),
}


def _evaluate_aggregate_rule(rule: CompiledRule, store: RelationStore) -> set[Tuple_]:
    """Group body solutions and fold aggregates (set semantics: the
    aggregated variable is collected as a *set* per group)."""
    head = rule.rule.head
    groups: dict[Tuple_, dict[str, set]] = {}
    aggregates = head.aggregate_terms()
    group_vars = head.group_by_vars()
    for bindings in solutions(rule.plan, store):
        key = tuple(bindings[v.name] for v in group_vars)
        per_agg = groups.setdefault(key, {a.var.name: set() for a in aggregates})
        for aggregate in aggregates:
            per_agg[aggregate.var.name].add(bindings[aggregate.var.name])
    derived: set[Tuple_] = set()
    for key, per_agg in groups.items():
        key_iter = iter(key)
        values: list[Any] = []
        for term in head.terms:
            if isinstance(term, AggregateTerm):
                collected = sorted(per_agg[term.var.name], key=repr)
                if term.func != "count" and any(
                    isinstance(v, bool) or not isinstance(v, (int, float))
                    for v in collected
                ):
                    raise CyLogTypeError(
                        f"aggregate {term.func}<{term.var.name}> over "
                        "non-numeric values"
                    )
                values.append(_AGG_FUNCS[term.func](collected))
            elif isinstance(term, Const):
                values.append(term.value)
            else:
                values.append(next(key_iter))
        derived.add(tuple(values))
    return derived


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def _load_base_facts(
    compiled: CompiledProgram,
    store: RelationStore,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None,
) -> None:
    for fact in compiled.program.facts:
        store.get(fact.atom.predicate, fact.atom.arity).add(
            tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
        )
    if extra_facts:
        for predicate, rows in extra_facts.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                continue
            arity = len(rows[0])
            relation = store.get(predicate, arity)
            for row in rows:
                if len(row) != arity:
                    raise CyLogTypeError(
                        f"mixed arity facts supplied for {predicate!r}"
                    )
                relation.add(row)


def naive_evaluate(
    program: Program | CompiledProgram,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None = None,
) -> EvaluationResult:
    """Reference naive evaluation: recompute every rule until fixpoint.

    Exponentially slower than semi-naive on recursive programs but obviously
    correct; used as the differential-testing oracle.
    """
    compiled = (
        program if isinstance(program, CompiledProgram) else compile_program(program)
    )
    store = RelationStore()
    _load_base_facts(compiled, store, extra_facts)
    for stratum in range(compiled.strata_count):
        stratum_rules = [r for r in compiled.rules if r.stratum == stratum]
        aggregate_rules = [r for r in stratum_rules if r.rule.head.has_aggregates]
        plain_rules = [r for r in stratum_rules if not r.rule.head.has_aggregates]
        for rule in aggregate_rules:
            relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
            for row in _evaluate_aggregate_rule(rule, store):
                relation.add(row)
        changed = True
        while changed:
            changed = False
            for rule in plain_rules:
                relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
                derived = [
                    _head_tuple(rule, bindings)
                    for bindings in solutions(rule.plan, store)
                ]
                for row in derived:
                    if relation.add(row):
                        changed = True
    return EvaluationResult(store.snapshot())


class SemiNaiveEngine:
    """Stratified semi-naive engine with incremental fact arrival.

    For monotone programs (no negation, no aggregates) newly added facts are
    propagated by continuing the semi-naive iteration from the new deltas;
    otherwise the engine re-runs from base facts, which is always sound.
    """

    def __init__(self, program: Program | CompiledProgram) -> None:
        self.compiled = (
            program
            if isinstance(program, CompiledProgram)
            else compile_program(program)
        )
        self._base_facts: dict[str, set[Tuple_]] = {}
        for fact in self.compiled.program.facts:
            row = tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
            self._base_facts.setdefault(fact.atom.predicate, set()).add(row)
        self._store: RelationStore | None = None
        self._pending: dict[str, set[Tuple_]] = {}
        self.runs = 0  # full evaluations performed (observability for benches)

    # -- fact management ---------------------------------------------------
    def add_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Queue base facts for ``predicate``; returns how many were new.

        Rule-head (IDB) predicates cannot receive base facts.
        """
        if predicate in self.compiled.program.idb_predicates():
            raise CyLogTypeError(
                f"cannot add base facts to derived predicate {predicate!r}"
            )
        target = self._base_facts.setdefault(predicate, set())
        pending = self._pending.setdefault(predicate, set())
        added = 0
        for row in rows:
            row = tuple(row)
            if row not in target:
                target.add(row)
                pending.add(row)
                added += 1
        return added

    # -- evaluation -----------------------------------------------------------
    def run(self) -> EvaluationResult:
        """Evaluate to fixpoint, incrementally when possible."""
        if (
            self._store is not None
            and self.compiled.is_monotone
        ):
            if self._pending:
                self._continue_monotone()
            return EvaluationResult(self._store.snapshot())
        self._full_run()
        return EvaluationResult(self._store.snapshot())  # type: ignore[union-attr]

    def facts(self, predicate: str) -> frozenset:
        """Current tuples of ``predicate`` (after the last :meth:`run`)."""
        if self._store is None:
            self.run()
        relation = self._store.maybe(predicate)  # type: ignore[union-attr]
        return relation.snapshot() if relation is not None else frozenset()

    @property
    def store(self) -> RelationStore:
        if self._store is None:
            self.run()
        return self._store  # type: ignore[return-value]

    def _full_run(self) -> None:
        self.runs += 1
        self._pending.clear()
        store = RelationStore()
        _load_base_facts(
            self.compiled,
            store,
            {pred: rows for pred, rows in self._base_facts.items()},
        )
        for stratum in range(self.compiled.strata_count):
            self._run_stratum(store, stratum)
        self._store = store

    def _run_stratum(self, store: RelationStore, stratum: int) -> None:
        stratum_rules = [r for r in self.compiled.rules if r.stratum == stratum]
        if not stratum_rules:
            return
        for rule in stratum_rules:
            if rule.rule.head.has_aggregates:
                relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
                for row in _evaluate_aggregate_rule(rule, store):
                    relation.add(row)
        plain_rules = [r for r in stratum_rules if not r.rule.head.has_aggregates]
        recursive_preds = {
            r.rule.head.predicate
            for r in plain_rules
        }
        # Round 0: full evaluation of each rule.  Solutions are materialised
        # before insertion because recursive rules scan the very relation
        # they derive into.
        delta: dict[str, set[Tuple_]] = {}
        for rule in plain_rules:
            relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
            rows = [
                _head_tuple(rule, bindings)
                for bindings in solutions(rule.plan, store)
            ]
            for row in rows:
                if relation.add(row):
                    delta.setdefault(rule.rule.head.predicate, set()).add(row)
        # Semi-naive rounds.
        self._semi_naive_rounds(store, plain_rules, recursive_preds, delta)

    def _semi_naive_rounds(
        self,
        store: RelationStore,
        plain_rules: list[CompiledRule],
        recursive_preds: set[str],
        delta: dict[str, set[Tuple_]],
    ) -> None:
        while delta:
            delta_relations = {
                predicate: _relation_from(rows, store.maybe(predicate))
                for predicate, rows in delta.items()
            }
            next_delta: dict[str, set[Tuple_]] = {}
            for rule in plain_rules:
                head_pred = rule.rule.head.predicate
                relation = store.get(head_pred, rule.rule.head.arity)
                for position, literal in enumerate(rule.plan):
                    if not isinstance(literal, Atom):
                        continue
                    if literal.predicate not in delta_relations:
                        continue
                    if literal.predicate not in recursive_preds:
                        continue
                    delta_rel = delta_relations[literal.predicate]
                    rows = [
                        _head_tuple(rule, bindings)
                        for bindings in solutions(
                            rule.plan,
                            store,
                            delta_position=position,
                            delta_relation=delta_rel,
                        )
                    ]
                    for row in rows:
                        if relation.add(row):
                            next_delta.setdefault(head_pred, set()).add(row)
            delta = next_delta

    def _continue_monotone(self) -> None:
        """Propagate pending base facts without recomputing from scratch."""
        store = self._store
        assert store is not None
        delta: dict[str, set[Tuple_]] = {}
        for predicate, rows in self._pending.items():
            if not rows:
                continue
            arity = len(next(iter(rows)))
            relation = store.get(predicate, arity)
            new_rows = relation.add_many(rows)
            if new_rows:
                delta[predicate] = new_rows
        self._pending.clear()
        if not delta:
            return
        plain_rules = [
            r for r in self.compiled.rules if not r.rule.head.has_aggregates
        ]
        # In the monotone continuation every predicate behaves as recursive:
        # any rule touching a delta predicate must refire.
        all_preds = set(delta)
        for rule in plain_rules:
            all_preds.add(rule.rule.head.predicate)
            for atom in rule.rule.body_atoms():
                all_preds.add(atom.predicate)
        self._semi_naive_rounds(store, plain_rules, all_preds, delta)


def _relation_from(rows: set[Tuple_], template: Relation | None) -> Relation:
    arity = template.arity if template is not None else len(next(iter(rows)))
    relation = Relation(arity)
    for row in rows:
        relation.add(row)
    return relation
